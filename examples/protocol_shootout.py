#!/usr/bin/env python
"""Protocol shoot-out: FSR against the five classes of Section 2.

Runs every protocol in the registry through the same two workloads on
the same simulated cluster and prints the aggregate throughput, showing
the paper's argument in one table: FSR is the only protocol that stays
at the host-limited maximum in *both* traffic patterns.

Run:  python examples/protocol_shootout.py        (takes ~a minute)
"""

from repro import ClusterConfig, build_cluster
from repro.metrics import collect_metrics, format_table
from repro.protocols import PROTOCOLS
from repro.workloads import KToNPattern, run_workload

N = 5
MESSAGES_TOTAL = 60


def measure(protocol: str, k: int) -> float:
    cluster = build_cluster(ClusterConfig(n=N, protocol=protocol))
    pattern = KToNPattern.k_to_n(
        k, N, MESSAGES_TOTAL // k, message_bytes=100_000
    )
    outcome = run_workload(cluster, pattern, max_time_s=600.0)
    return collect_metrics(outcome).completion_throughput_mbps


def main() -> None:
    protocols = [
        "fsr", "fixed_sequencer", "moving_sequencer",
        "privilege", "communication_history", "destination_agreement",
    ]
    rows = []
    for protocol in protocols:
        one_to_n = measure(protocol, k=1)
        n_to_n = measure(protocol, k=N)
        rows.append([protocol, f"{one_to_n:.1f}", f"{n_to_n:.1f}"])
        print(f"  measured {protocol}")
    print()
    print(format_table(
        ["protocol", f"1-to-{N} (Mb/s)", f"{N}-to-{N} (Mb/s)"],
        rows,
        title=f"Aggregate TO-broadcast throughput, 100 KB messages, n={N}",
    ))
    print(
        "\nReading: the raw network ceiling is ~94 Mb/s and the per-host"
        "\nmiddleware budget caps useful goodput near 79 Mb/s.  FSR hits"
        "\nthat budget in both patterns; every other class falls behind in"
        "\nat least one (the paper's §2 argument, measured)."
    )


if __name__ == "__main__":
    main()
