#!/usr/bin/env python
"""Quickstart: five processes, a few TO-broadcasts, one total order.

Builds a simulated 5-machine cluster running FSR on 100 Mb/s switched
Ethernet, has three of the processes broadcast concurrently, and shows
that every process delivers the exact same sequence.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, FSRConfig, build_cluster


def main() -> None:
    config = ClusterConfig(
        n=5,                       # five processes, ring positions 0..4
        protocol="fsr",
        protocol_config=FSRConfig(t=1),  # tolerate one crash
    )
    cluster = build_cluster(config)
    cluster.start()
    cluster.run(until=0.05)        # let the initial view install

    # Three processes broadcast concurrently.
    for sender in (1, 3, 4):
        for i in range(3):
            payload = f"msg-{i} from p{sender}".encode()
            cluster.broadcast(sender, payload=payload)

    # Run the simulation until everyone delivered all nine messages.
    cluster.run_until(lambda: cluster.all_correct_delivered(9))
    result = cluster.results()

    print("Delivery order at each process:")
    for pid in range(5):
        order = [str(d.message_id) for d in result.delivery_logs[pid].deliveries]
        print(f"  p{pid}: {order}")

    reference = [str(d.message_id) for d in result.delivery_logs[0].deliveries]
    assert all(
        [str(d.message_id) for d in log.deliveries] == reference
        for log in result.delivery_logs.values()
    )
    print("\nAll five processes delivered the same total order. ✓")


if __name__ == "__main__":
    main()
