#!/usr/bin/env python
"""Failover walk-through: what happens when the FSR leader crashes.

Narrates a leader crash under load: the failure detector fires, the
membership layer runs its flush, the first backup becomes the new
leader/sequencer (ring order is stable across views), undelivered
stable messages are recovered from the merged flush state, and origins
re-broadcast what was still unsequenced.  The checkers then verify
uniform total order across the crash.

Run:  python examples/failover_demo.py
"""

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.checker import check_integrity, check_total_order, check_uniformity

N = 5
CRASH_AT = 0.4


def main() -> None:
    cluster = build_cluster(
        ClusterConfig(
            n=N, protocol="fsr", protocol_config=FSRConfig(t=1),
            detection_delay_s=20e-3, trace=True,
        )
    )
    cluster.start()
    cluster.run(until=0.05)

    print(f"Initial ring: {cluster.nodes[1].protocol.ring.members} "
          f"(leader = {cluster.nodes[1].protocol.ring.leader}, t = 1)")

    for pid in range(N):
        for _ in range(20):
            cluster.broadcast(pid, size_bytes=100_000)
    print(f"{N * 20} broadcasts of 100 KB submitted; "
          f"leader p0 will crash at t = {CRASH_AT}s")
    cluster.schedule_crash(0, time=CRASH_AT)

    survivors = range(1, N)
    cluster.run_until(
        lambda: all(
            sum(1 for d in cluster.nodes[p].app_deliveries if d.origin != 0) >= 80
            for p in survivors
        ),
        max_time_s=300.0,
    )
    cluster.run(until=cluster.sim.now + 0.05)
    result = cluster.results()

    # Narrate the membership events from the trace.
    print("\nMembership timeline:")
    for record in result.trace.records(source="vsc"):
        if record.kind in ("flush_start", "view_installed") and (
            record.detail.get("me") == 1
        ):
            print(f"  t={record.time * 1e3:7.1f} ms  {record.kind}  "
                  + " ".join(f"{k}={v}" for k, v in record.detail.items()
                             if k != "me"))

    new_ring = cluster.nodes[1].protocol.ring
    print(f"\nNew ring: {new_ring.members} (leader = {new_ring.leader})")
    assert new_ring.leader == 1, "the first backup takes over as sequencer"

    check_integrity(result)
    check_total_order(result)
    check_uniformity(result)

    crashed_log = [str(d.message_id) for d in result.delivery_logs[0].deliveries]
    survivor_log = [str(d.message_id) for d in result.delivery_logs[1].deliveries]
    assert crashed_log == survivor_log[: len(crashed_log)]
    print(f"\nThe crashed leader delivered {len(crashed_log)} messages — "
          f"a strict prefix of the survivors' {len(survivor_log)}.")
    print("Uniform total order held across the crash. ✓")


if __name__ == "__main__":
    main()
