#!/usr/bin/env python
"""Replicated key-value store — the paper's motivating use case.

The paper's introduction: replication works when "all processes
perform the same operations on their copies in the same order", and
TO-broadcast is the primitive providing that order.  This example runs
a bank-style key-value store replicated over FSR: four replicas accept
concurrent, conflicting commands (transfers, compare-and-swap), one
replica crashes mid-run, and the survivors end up with bit-identical
state.

Run:  python examples/replicated_kv.py
"""

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.smr import Command, KVStore, ReplicatedStateMachine


def main() -> None:
    cluster = build_cluster(
        ClusterConfig(n=4, protocol="fsr", protocol_config=FSRConfig(t=1))
    )
    replicas = {
        pid: ReplicatedStateMachine(node.protocol, KVStore())
        for pid, node in cluster.nodes.items()
    }
    cluster.start()
    cluster.run(until=0.05)

    # Seed two accounts via replica 0.
    replicas[0].submit(Command("put", ("alice", 100)))
    replicas[0].submit(Command("put", ("bob", 100)))

    # Conflicting concurrent traffic from different replicas: transfers
    # between the same two accounts, plus CAS attempts racing each other.
    for round_index in range(10):
        replicas[1].submit(Command("incr", ("alice", -5)))
        replicas[1].submit(Command("incr", ("bob", +5)))
        replicas[2].submit(Command("incr", ("bob", -3)))
        replicas[2].submit(Command("incr", ("alice", +3)))
        replicas[3].submit(Command("cas", ("winner", None, f"p3@{round_index}")))
        replicas[1].submit(Command("cas", ("winner", None, f"p1@{round_index}")))

    # Replica 3 crashes while traffic is still flowing.
    cluster.schedule_crash(3, time=0.12)

    survivors = (0, 1, 2)
    total_submitted = 2 + 10 * 6
    cluster.run_until(
        lambda: all(
            replicas[pid].applied_count >= total_submitted - 10  # p3's tail may be lost
            for pid in survivors
        ),
        max_time_s=60.0,
    )
    cluster.run(until=cluster.sim.now + 0.05)

    snapshots = {pid: replicas[pid].snapshot() for pid in survivors}
    print("Final replica states:")
    for pid, snap in snapshots.items():
        print(f"  replica {pid}: alice={snap['alice']} bob={snap['bob']} "
              f"winner={snap.get('winner')} ({len(snap)} keys)")

    reference = snapshots[survivors[0]]
    assert all(snap == reference for snap in snapshots.values()), (
        "replicas diverged!"
    )
    # Money is conserved whatever the interleaving.
    assert reference["alice"] + reference["bob"] == 200
    # Exactly one CAS winner, the same at every replica.
    assert reference.get("winner") is not None
    print("\nAll surviving replicas are bit-identical; invariants hold. ✓")
    print(f"(exactly one CAS winner: {reference['winner']})")


if __name__ == "__main__":
    main()
