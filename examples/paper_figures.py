#!/usr/bin/env python
"""Regenerate the paper's evaluation tables in one go (light version).

Prints the series behind Table 1 and Figures 6-9 with reduced message
counts so the whole script runs in well under a minute; the pytest
benchmarks under ``benchmarks/`` are the full-fidelity versions whose
numbers EXPERIMENTS.md records.

Run:  python examples/paper_figures.py
"""

import sys
from pathlib import Path

# The benchmark helpers live next to the benchmarks.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from _common import (  # noqa: E402
    contention_free_latency_ms,
    max_throughput_mbps,
    throttled_point,
)
from repro.metrics import format_table  # noqa: E402
from repro.net import FramingModel, NetworkParams  # noqa: E402
from repro.net.network import Network  # noqa: E402
from repro.sim import Simulator  # noqa: E402


def table1() -> None:
    rows = []
    for name, framing in (("TCP", FramingModel.tcp_like()),
                          ("UDP", FramingModel.udp_like())):
        params = NetworkParams(
            cpu_per_message_s=0.0, cpu_per_byte_s=0.0, framing=framing
        )
        sim = Simulator()
        net = Network(sim, params)
        sender, receiver = net.attach(0), net.attach(1)
        seen = []
        receiver.on_receive(lambda src, msg: seen.append(sim.now))
        for _ in range(50):
            sender.send(1, b"", size_bytes=100_000)
        sim.run()
        mbps = 50 * 100_000 * 8 / seen[-1] / 1e6
        rows.append([name, f"{mbps:.1f}", {"TCP": 94, "UDP": 93}[name]])
    print(format_table(["protocol", "measured Mb/s", "paper Mb/s"], rows,
                       title="Table 1 — raw network performance"))


def figure6() -> None:
    rows = []
    for n in (2, 4, 6, 8, 10):
        rows.append([n, f"{contention_free_latency_ms(n):.1f}"])
    print(format_table(["n", "latency (ms)"], rows,
                       title="Figure 6 — latency vs number of processes"))


def figure7() -> None:
    rows = []
    for offered in (20, 50, 70, 90):
        achieved, latency = throttled_point(offered, messages_per_sender=12)
        rows.append([offered, f"{achieved:.1f}", f"{latency:.1f}"])
    print(format_table(
        ["offered Mb/s", "achieved Mb/s", "latency (ms)"], rows,
        title="Figure 7 — latency vs throughput (n = 5)",
    ))


def figure8() -> None:
    rows = []
    for n in (2, 4, 6, 8, 10):
        metrics = max_throughput_mbps(n, messages_total=60)
        rows.append([n, f"{metrics.completion_throughput_mbps:.1f}", 79])
    print(format_table(["n", "measured Mb/s", "paper Mb/s"], rows,
                       title="Figure 8 — max throughput vs processes"))


def figure9() -> None:
    rows = []
    for k in (1, 2, 3, 4, 5):
        metrics = max_throughput_mbps(5, k=k, messages_total=60)
        rows.append([k, f"{metrics.completion_throughput_mbps:.1f}"])
    print(format_table(["senders k", "measured Mb/s"], rows,
                       title="Figure 9 — max throughput vs senders (k-to-5)"))


def main() -> None:
    for section in (table1, figure6, figure7, figure8, figure9):
        section()
        print()


if __name__ == "__main__":
    main()
