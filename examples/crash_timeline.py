#!/usr/bin/env python
"""Visual crash walk-through: timelines and utilisation in ASCII.

Runs a loaded 5-process FSR cluster, crashes the leader mid-stream,
and renders:

* the per-process delivery timeline (crash marked with ``x``),
* the membership events on the same axis,
* per-node TX/RX/CPU utilisation bars — the visual form of the paper's
  bottleneck argument (all FSR nodes look alike; compare with a
  sequencer's skewed bars by editing ``PROTOCOL`` below).

Run:  python examples/crash_timeline.py
"""

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.checker import attach_wire_monitor, check_integrity, check_total_order
from repro.metrics import delivery_timeline, event_strip, utilisation_bars

PROTOCOL = "fsr"
N = 5
CRASH_AT = 0.6


def main() -> None:
    cluster = build_cluster(
        ClusterConfig(
            n=N, protocol=PROTOCOL,
            protocol_config=FSRConfig(t=1) if PROTOCOL == "fsr" else None,
            trace=True,
        )
    )
    monitor = attach_wire_monitor(cluster) if PROTOCOL == "fsr" else None
    cluster.start()
    cluster.run(until=0.05)
    for pid in range(N):
        for _ in range(25):
            cluster.broadcast(pid, size_bytes=100_000)
    cluster.schedule_crash(0, time=CRASH_AT)
    survivors = range(1, N)
    cluster.run_until(
        lambda: all(
            sum(1 for d in cluster.nodes[p].app_deliveries if d.origin != 0) >= 100
            for p in survivors
        ),
        max_time_s=300,
    )
    cluster.run(until=cluster.sim.now + 0.05)
    result = cluster.results()
    check_integrity(result)
    check_total_order(result)

    print(delivery_timeline(result, width=72))
    print()

    events = [(CRASH_AT, "leader p0 crashes")]
    for record in result.trace.records(source="vsc", kind="view_installed"):
        if record.detail.get("me") == 1:
            events.append(
                (record.time, f"view {record.detail['view_id']} installed")
            )
    all_times = [
        d.time for log in result.delivery_logs.values() for d in log.deliveries
    ]
    print(event_strip(events, start=min(all_times), end=max(all_times), width=72))
    print()
    print(utilisation_bars(result, width=40))
    if monitor is not None:
        print(
            f"\nwire monitor: {monitor.stats.violations_checked} sends checked, "
            f"0 invariant violations ✓"
        )


if __name__ == "__main__":
    main()
