"""Group membership with a coordinator-driven flush protocol.

One :class:`GroupMembership` instance runs at every process.  The
protocol layered above it (FSR) implements :class:`VSCClient`; the
membership layer calls it back to block traffic, to collect recovery
state, and to announce installed views.

Design properties (relied upon by FSR's recovery, tested in
``tests/vsc``):

* **Same views everywhere** — all members that install view ``v``
  install it with the same member ranking, because only the (unique,
  by perfect-FD accuracy) coordinator of the winning epoch sends
  installs for it.
* **State exchange before install** — the states passed to
  :meth:`VSCClient.on_view` were collected *after* every member blocked,
  so they jointly describe everything unstable in the previous view.
  Installs from flush epochs older than the highest epoch a member has
  acked are rejected: the member's contributed state no longer matches
  what applying the stale install would make it.
* **Two-phase install** — after applying an install, each member acks
  it back to the flush coordinator; once *every* member of the new view
  has acked, the coordinator sends a commit, delivered to the client
  via ``on_view_commit``.  A client whose recovery state carries
  deliveries (FSR) defers TO-delivering recovered messages until the
  commit: at that point the merged records are stored at all members of
  the new view, so the deliveries are uniform even if up to ``t``
  further crashes strike immediately.  If the coordinator crashes
  before committing, nobody has delivered, every member still retains
  the records, and the next flush recovers them.
* **Ring-order stability** — surviving members keep their relative
  order across views; joiners are appended.  After a leader crash the
  new leader is therefore the old first backup, which holds every
  sequencing decision — exactly the property FSR's recovery needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Set, Tuple

from repro.errors import MembershipError
from repro.failure.detector import FailureDetector
from repro.net.dispatch import Port
from repro.sim.trace import TraceLog
from repro.types import ProcessId, Scheduler, View, ViewId

#: Base wire size of membership control messages.
_CONTROL_BYTES = 24


@dataclass
class FlushState:
    """Opaque recovery state contributed by one member during a flush.

    ``payload`` is whatever the protocol's ``collect_flush_state``
    returned; ``size_bytes`` is its estimated wire size so the simulated
    network charges a realistic cost for state exchange.
    """

    payload: Any
    size_bytes: int = 0


class VSCClient(Protocol):
    """What the protocol above the membership layer must provide.

    A client may additionally implement::

        def merge_states(self, states, receivers):
            -> Dict[ProcessId, FlushState]

    to reduce the collected states at the *coordinator* into one
    (possibly receiver-specific) install payload.  Without it, every
    install carries the full concatenation of all collected states —
    correct, but for protocols whose recovery state contains payload
    data the coordinator-side merge is what keeps view-change time
    proportional to what each receiver actually misses.
    """

    def on_block(self) -> None:
        """Stop initiating application traffic until the next view."""
        ...  # pragma: no cover - protocol definition

    def collect_flush_state(self) -> FlushState:
        """Return everything the next view needs to recover."""
        ...  # pragma: no cover - protocol definition

    def on_view(self, view: View, state: Optional[FlushState]) -> None:
        """A new view was installed.  ``state`` is this member's install
        payload (the coordinator-merged recovery state), or ``None`` for
        the bootstrap view."""
        ...  # pragma: no cover - protocol definition

    # Optional: ``def on_view_commit(self, view: View) -> None`` — every
    # member of ``view`` has applied (and therefore stored) its install.
    # Clients that defer recovery deliveries release them here.


# ---------------------------------------------------------------------------
# Wire messages
# ---------------------------------------------------------------------------
@dataclass
class _FlushReq:
    epoch: int
    coordinator: ProcessId
    proposed: Tuple[ProcessId, ...]

    def wire_size_bytes(self) -> int:
        return _CONTROL_BYTES + 4 * len(self.proposed)


@dataclass
class _FlushAck:
    epoch: int
    sender: ProcessId
    state: FlushState

    def wire_size_bytes(self) -> int:
        return _CONTROL_BYTES + self.state.size_bytes


@dataclass
class _ViewInstall:
    epoch: int
    coordinator: ProcessId
    members: Tuple[ProcessId, ...]
    #: This receiver's install payload (coordinator-merged).
    state: Optional[FlushState]

    def wire_size_bytes(self) -> int:
        state_bytes = self.state.size_bytes if self.state is not None else 0
        return _CONTROL_BYTES + 4 * len(self.members) + state_bytes


@dataclass
class _InstallAck:
    """A member applied (stored) its install for ``epoch``."""

    epoch: int
    sender: ProcessId

    def wire_size_bytes(self) -> int:
        return _CONTROL_BYTES


@dataclass
class _ViewCommit:
    """Every member of the ``epoch`` view acked its install."""

    epoch: int

    def wire_size_bytes(self) -> int:
        return _CONTROL_BYTES


@dataclass
class _JoinReq:
    joiner: ProcessId

    def wire_size_bytes(self) -> int:
        return _CONTROL_BYTES


@dataclass
class _LeaveReq:
    leaver: ProcessId

    def wire_size_bytes(self) -> int:
        return _CONTROL_BYTES


@dataclass
class _RotateReq:
    """Ask the coordinator to rotate the ring order by one position.

    The paper (§4.3.1) suggests rotating the leader to even out the
    position-dependent latency; it can be done with a leave+join, or —
    as here — by installing a view with the same members in rotated
    order, which avoids tearing the old leader down.
    """

    requester: ProcessId

    def wire_size_bytes(self) -> int:
        return _CONTROL_BYTES


# ---------------------------------------------------------------------------
# The membership automaton
# ---------------------------------------------------------------------------
class GroupMembership:
    """Membership + flush automaton for one process.

    Example wiring (done by :mod:`repro.cluster.harness`)::

        membership = GroupMembership(sim, port, fd, me, initial_members)
        membership.set_client(fsr_process)
        membership.start()
    """

    def __init__(
        self,
        sim: Scheduler,
        port: Port,
        detector: FailureDetector,
        me: ProcessId,
        initial_members: Tuple[ProcessId, ...],
        trace: Optional[TraceLog] = None,
        telemetry: Optional[Any] = None,
        require_quorum: bool = False,
    ) -> None:
        if me not in initial_members:
            raise MembershipError(f"process {me} is not in the initial membership")
        self.sim = sim
        self.port = port
        self.detector = detector
        self.me = me
        #: Primary-partition guard (opt-in).  With a perfect failure
        #: detector every suspicion is a real crash and any survivor set
        #: may install the next view — including a singleton.  On a real
        #: network a partition makes suspicion symmetric: both sides
        #: think the other died.  Requiring the proposed view to keep a
        #: strict majority of the current members (voluntary leavers
        #: excluded from the base) means at most one side — the primary
        #: component — can ever install, so a minority island stalls
        #: instead of splitting the sequence.  Off by default: sim
        #: configurations with ``t >= n/2`` legitimately install
        #: minority views.
        self._require_quorum = require_quorum
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        #: Optional :class:`repro.obs.Telemetry` registry (duck-typed to
        #: keep this layer import-light): records how long this member
        #: was blocked per view change (``view_install_s``) and how many
        #: flushes/views it saw.  ``None`` costs one check per install.
        self._telemetry = telemetry
        self._blocked_since: Optional[float] = None

        self._client: Optional[VSCClient] = None
        self.view: View = View(view_id=0, members=tuple(initial_members))
        self._crashed_self = False
        self._started = False
        #: Set by the first locally installed view (bootstrap or join).
        self._installed_any = False
        self._join_contact: Optional[ProcessId] = None

        #: Highest flush epoch seen anywhere (ack or req or install).
        self._highest_epoch = 0
        #: Epoch of the attempt this process is currently coordinating.
        self._my_attempt: Optional[int] = None
        self._attempt_members: Tuple[ProcessId, ...] = ()
        self._acks: Dict[ProcessId, FlushState] = {}
        self._blocked = False
        #: Install-ack collection for a view this process installed as
        #: coordinator: (epoch, members still owing an ack).  Abandoned
        #: when a higher flush epoch supersedes the view.
        self._commit_epoch: Optional[int] = None
        self._commit_waiting: Set[ProcessId] = set()
        #: Processes asking to join / leave at the next view change.
        self._pending_joins: List[ProcessId] = []
        self._pending_leaves: Set[ProcessId] = set()
        #: Ring positions to rotate by at the next view change.
        self._pending_rotation = 0

        port.on_receive(self._on_message)
        detector.on_suspect(self._on_suspect)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def set_client(self, client: VSCClient) -> None:
        self._client = client

    def start(self, join_contact: Optional[ProcessId] = None) -> None:
        """Start this member (idempotent).

        Without ``join_contact``, installs the configured initial view
        locally (group bootstrap).  With it, the process starts in
        *joining* mode: no local view is installed — the first view it
        ever sees is the one the group's coordinator sends, so its
        (empty) history is correctly treated as *fresh* by recovery —
        and join requests are retried until membership is granted.
        """
        if self._started:
            return
        self._started = True
        if join_contact is None:
            self.detector.monitor(self.view.members)
            self._install_locally(self.view, None)
        else:
            self._join_contact = join_contact
            self._retry_join()

    def _retry_join(self) -> None:
        if self._crashed_self or self._installed_any:
            return
        assert self._join_contact is not None
        self._send(self._join_contact, _JoinReq(joiner=self.me))
        self.sim.schedule(50e-3, self._retry_join)

    def stop(self) -> None:
        """This process crashed or left: ignore all further events."""
        self._crashed_self = True

    # ------------------------------------------------------------------
    # Voluntary membership changes
    # ------------------------------------------------------------------
    def request_join(self, contact: ProcessId) -> None:
        """Ask ``contact`` (a current member) to add this process."""
        self._send(contact, _JoinReq(joiner=self.me))

    def request_leave(self) -> None:
        """Gracefully leave the group at the next view change."""
        coordinator = self._live_coordinator()
        self._send(coordinator, _LeaveReq(leaver=self.me))

    def request_leader_rotation(self) -> None:
        """Rotate the ring by one position (paper §4.3.1).

        The current leader moves to the tail of the ring; the first
        backup becomes the new leader/sequencer.  Installed through the
        ordinary flush, so in-flight traffic is recovered exactly as on
        a crash — minus the crash.
        """
        coordinator = self._live_coordinator()
        self._send(coordinator, _RotateReq(requester=self.me))

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_suspect(self, pid: ProcessId) -> None:
        if self._crashed_self:
            return
        if pid not in self.view and pid != self._coordinator_of_attempt():
            # Not relevant to the current view or a running flush.
            return
        self.trace.emit(self.sim.now, "vsc", "suspect", me=self.me, peer=pid)
        self._maybe_start_flush()

    def _maybe_start_flush(self) -> None:
        """Start (or restart) a flush if this process should coordinate."""
        if self._crashed_self:
            return
        if self._live_coordinator() != self.me:
            return
        proposed = self._propose_members()
        if self._require_quorum and not self._has_quorum(proposed):
            self.trace.emit(
                self.sim.now, "vsc", "quorum_lost",
                me=self.me, proposed=proposed, view=self.view.members,
            )
            return
        if self._my_attempt is not None and proposed == self._attempt_members:
            return  # the running attempt is still valid
        epoch = self._highest_epoch + 1
        self._highest_epoch = epoch
        self._my_attempt = epoch
        self._attempt_members = proposed
        self._acks = {}
        self.trace.emit(
            self.sim.now, "vsc", "flush_start",
            me=self.me, epoch=epoch, proposed=proposed,
        )
        req = _FlushReq(epoch=epoch, coordinator=self.me, proposed=proposed)
        for member in proposed:
            self._send(member, req)

    def _has_quorum(self, proposed: Tuple[ProcessId, ...]) -> bool:
        """Strict majority of the current view's involuntary members."""
        base = [
            m for m in self.view.members if m not in self._pending_leaves
        ]
        if not base:
            return True
        kept = sum(1 for m in proposed if m in base)
        return 2 * kept > len(base)

    def _propose_members(self) -> Tuple[ProcessId, ...]:
        suspected = self.detector.suspected()
        survivors = [
            m
            for m in self.view.members
            if m not in suspected and m not in self._pending_leaves
        ]
        if survivors and self._pending_rotation:
            shift = self._pending_rotation % len(survivors)
            survivors = survivors[shift:] + survivors[:shift]
        joiners = [
            j
            for j in self._pending_joins
            if j not in suspected and j not in survivors
        ]
        return tuple(survivors + joiners)

    def _live_coordinator(self) -> ProcessId:
        """Lowest-ranked live member of the current view."""
        suspected = self.detector.suspected()
        for member in self.view.members:
            if member not in suspected:
                return member
        raise MembershipError(f"process {self.me}: all members suspected")

    def _coordinator_of_attempt(self) -> Optional[ProcessId]:
        return self.me if self._my_attempt is not None else None

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _on_message(self, src: ProcessId, message: Any) -> None:
        if self._crashed_self:
            return
        if isinstance(message, _FlushReq):
            self._on_flush_req(src, message)
        elif isinstance(message, _FlushAck):
            self._on_flush_ack(src, message)
        elif isinstance(message, _ViewInstall):
            self._on_view_install(src, message)
        elif isinstance(message, _InstallAck):
            self._on_install_ack(message)
        elif isinstance(message, _ViewCommit):
            self._on_view_commit(message)
        elif isinstance(message, _JoinReq):
            self._on_join_req(message)
        elif isinstance(message, _LeaveReq):
            self._on_leave_req(message)
        elif isinstance(message, _RotateReq):
            self._on_rotate_req(message)
        else:
            raise MembershipError(f"unexpected membership message: {message!r}")

    def _on_flush_req(self, src: ProcessId, req: _FlushReq) -> None:
        if req.epoch < self._highest_epoch:
            return  # stale attempt
        self._highest_epoch = max(self._highest_epoch, req.epoch)
        if not self._blocked:
            self._blocked = True
            if self._telemetry is not None:
                self._blocked_since = self.sim.now
                self._telemetry.counter("membership_flushes").inc()
            if self._client is not None:
                self._client.on_block()
        state = (
            self._client.collect_flush_state()
            if self._client is not None
            else FlushState(payload=None)
        )
        self._send(req.coordinator, _FlushAck(epoch=req.epoch, sender=self.me, state=state))

    def _on_flush_ack(self, src: ProcessId, ack: _FlushAck) -> None:
        if self._my_attempt is None or ack.epoch != self._my_attempt:
            return
        self._acks[ack.sender] = ack.state
        missing = set(self._attempt_members) - set(self._acks)
        if missing:
            return
        members = self._attempt_members
        payloads = self._prepare_install_payloads(members, dict(self._acks))
        self.trace.emit(
            self.sim.now, "vsc", "view_install_send",
            me=self.me, epoch=self._my_attempt, members=members,
        )
        epoch = self._my_attempt
        self._my_attempt = None
        self._attempt_members = ()
        self._commit_epoch = epoch
        self._commit_waiting = set(members)
        for member in members:
            install = _ViewInstall(
                epoch=epoch, coordinator=self.me, members=members,
                state=payloads.get(member),
            )
            self._send(member, install)

    def _prepare_install_payloads(
        self,
        members: Tuple[ProcessId, ...],
        states: Dict[ProcessId, FlushState],
    ) -> Dict[ProcessId, FlushState]:
        """Let the client merge states at the coordinator, if it can."""
        merge = getattr(self._client, "merge_states", None)
        if merge is not None:
            return merge(states, members)
        # Generic fallback: every receiver gets all collected states.
        aggregate = FlushState(
            payload=states,
            size_bytes=sum(s.size_bytes for s in states.values()),
        )
        return {member: aggregate for member in members}

    def _on_view_install(self, src: ProcessId, install: _ViewInstall) -> None:
        if install.epoch <= self.view.view_id:
            return  # stale (a restarted attempt superseded it)
        if install.epoch < self._highest_epoch:
            # Stale install racing a newer flush: this member has already
            # contributed its state to a higher epoch, so applying the
            # old install would silently invalidate that contribution
            # (the newer install, computed from it, could even order the
            # delivery cursor *backwards*).  The newer epoch's install
            # supersedes this one — drop it and keep waiting.
            self.trace.emit(
                self.sim.now, "vsc", "install_stale",
                me=self.me, epoch=install.epoch, highest=self._highest_epoch,
            )
            return
        view = View(view_id=install.epoch, members=install.members)
        if self.me not in view:
            # We were excluded (e.g. falsely... impossible under perfect
            # FD; happens only on voluntary leave).  Stop participating.
            self._crashed_self = True
            return
        self._pending_joins = [j for j in self._pending_joins if j not in view]
        self._pending_leaves -= set(self.view.members) - set(view.members)
        self._pending_rotation = 0  # the installed order reflects it
        self._install_locally(view, install.state)
        # Two-phase install: confirm to the coordinator that the install
        # (and its recovery records) is applied and stored here.
        self._send(
            install.coordinator, _InstallAck(epoch=install.epoch, sender=self.me)
        )

    def _on_install_ack(self, ack: _InstallAck) -> None:
        if self._commit_epoch is None or ack.epoch != self._commit_epoch:
            return
        if self._highest_epoch > self._commit_epoch:
            # A newer flush is already superseding this view; committing
            # it now would let members deliver behind the new flush's
            # collected states.  The next install covers the recovery.
            self._commit_epoch = None
            self._commit_waiting = set()
            return
        self._commit_waiting.discard(ack.sender)
        if self._commit_waiting:
            return
        epoch = self._commit_epoch
        self._commit_epoch = None
        self.trace.emit(self.sim.now, "vsc", "view_commit_send", me=self.me, epoch=epoch)
        for member in self.view.members:
            self._send(member, _ViewCommit(epoch=epoch))

    def _on_view_commit(self, commit: _ViewCommit) -> None:
        if commit.epoch != self.view.view_id or self._blocked:
            # Stale, or a newer flush is underway (this member's state is
            # already pledged to it): the next install supersedes the
            # commit's deliveries.
            return
        self.trace.emit(
            self.sim.now, "vsc", "view_committed", me=self.me, view_id=commit.epoch
        )
        on_commit = getattr(self._client, "on_view_commit", None)
        if on_commit is not None:
            on_commit(self.view)

    def _install_locally(
        self, view: View, state: Optional[FlushState]
    ) -> None:
        self.view = view
        self._highest_epoch = max(self._highest_epoch, view.view_id)
        self._installed_any = True
        self._blocked = False
        if self._telemetry is not None:
            self._telemetry.counter("views_installed").inc()
            if self._blocked_since is not None:
                self._telemetry.histogram("view_install_s").observe(
                    self.sim.now - self._blocked_since
                )
                self._blocked_since = None
        self.detector.monitor(view.members)
        self.trace.emit(
            self.sim.now, "vsc", "view_installed",
            me=self.me, view_id=view.view_id, members=view.members,
        )
        if self._client is not None:
            self._client.on_view(view, state)
        # A suspicion, join, or leave may have raced the install;
        # re-check whether another flush is immediately due.
        if (
            any(self.detector.is_suspected(m) for m in view.members)
            or self._pending_joins
            or self._pending_leaves
        ):
            self._maybe_start_flush()

    def _on_join_req(self, req: _JoinReq) -> None:
        if req.joiner in self.view or req.joiner in self._pending_joins:
            return
        coordinator = self._live_coordinator()
        if coordinator != self.me:
            self._send(coordinator, req)
            return
        self._pending_joins.append(req.joiner)
        self._maybe_start_flush()

    def _on_leave_req(self, req: _LeaveReq) -> None:
        coordinator = self._live_coordinator()
        if coordinator != self.me:
            self._send(coordinator, req)
            return
        if req.leaver not in self.view:
            return
        self._pending_leaves.add(req.leaver)
        self._maybe_start_flush()

    def _on_rotate_req(self, req: _RotateReq) -> None:
        coordinator = self._live_coordinator()
        if coordinator != self.me:
            self._send(coordinator, req)
            return
        self._pending_rotation += 1
        self._maybe_start_flush()

    # ------------------------------------------------------------------
    def _send(self, dst: ProcessId, message: Any) -> None:
        if dst == self.me:
            # Local "send": deliver asynchronously, preserving the
            # no-reentrancy discipline of real message handling.
            self.sim.schedule(0.0, self._on_message, self.me, message)
        else:
            self.port.send(dst, message)
