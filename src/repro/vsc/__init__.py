"""Virtually synchronous communication (VSC) layer.

FSR (Section 4.2 of the paper) is built on a group communication
substrate providing *virtual synchrony* [Birman & Joseph, SOSP'87]:
processes are organised in a group, faulty processes are excluded after
crashing, and membership changes are delivered as totally ordered
*view* events that are consistent across all surviving members.

This package implements a coordinator-driven flush protocol on top of
the perfect failure detector:

1. on a membership change (crash, join, leave) the lowest-ranked live
   member of the current view becomes flush coordinator;
2. the coordinator proposes the next view; members block application
   traffic and reply with their protocol recovery state;
3. once every proposed member has answered, the coordinator installs
   the view, distributing the merged recovery states.

If the coordinator crashes mid-flush, the next live member restarts the
flush with a higher epoch; the perfect failure detector guarantees
termination with finitely many crashes.
"""

from repro.vsc.membership import FlushState, GroupMembership, VSCClient

__all__ = ["FlushState", "GroupMembership", "VSCClient"]
