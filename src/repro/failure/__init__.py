"""Failure detection and fault injection.

The paper's model (Section 3) assumes a Perfect failure detector ``P``:
*strong completeness* (every crashed process is eventually suspected by
every correct process) and *strong accuracy* (no process is suspected
before it crashes).

Two implementations are provided:

* :class:`OracleFailureDetector` — fed directly by the crash injector
  after a configurable detection delay.  Perfect by construction; the
  default for benchmarks, where heavy load would otherwise force very
  conservative heartbeat timeouts.
* :class:`HeartbeatFailureDetector` — real heartbeat traffic with
  timeouts.  Because simulated message delays are bounded when queues
  are bounded, a sufficiently large timeout makes this detector
  genuinely perfect; integration tests run it to show the protocol
  stack works without the oracle.
"""

from repro.failure.detector import (
    AdaptiveFailureDetector,
    FailureDetector,
    HeartbeatFailureDetector,
    OracleFailureDetector,
    adaptive_floor_s,
)
from repro.failure.injector import CrashInjector

__all__ = [
    "AdaptiveFailureDetector",
    "FailureDetector",
    "HeartbeatFailureDetector",
    "OracleFailureDetector",
    "CrashInjector",
    "adaptive_floor_s",
]
