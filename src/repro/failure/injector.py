"""Crash injection.

The injector is the single authority on process crashes: it silences
the crashed node's network stack, tells the node itself to stop its
protocol automata, and feeds oracle failure detectors.  Keeping all of
that in one place guarantees the three effects happen atomically at the
same simulated instant — a node never "half crashes".
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.failure.detector import OracleFailureDetector
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog
from repro.types import CrashEvent, ProcessId, SimTime

#: Upcall to the node owning a crashed process.
CrashCallback = Callable[[ProcessId], None]


class CrashInjector:
    """Schedules and executes process crashes.

    Example::

        injector = CrashInjector(sim, net)
        injector.register_detector(fd_of_p1)
        injector.schedule_crash(process=0, time=2.5)
    """

    def __init__(
        self, sim: Simulator, network: Network, trace: Optional[TraceLog] = None
    ) -> None:
        self.sim = sim
        self.network = network
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self._detectors: List[OracleFailureDetector] = []
        self._crash_callbacks: List[CrashCallback] = []
        self._crashed: Set[ProcessId] = set()
        self._scheduled: List[CrashEvent] = []
        #: Scheduled-but-not-yet-fired crash per process (one slot each:
        #: a crash is terminal, so a second schedule is a duplicate).
        self._pending: Dict[ProcessId, CrashEvent] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_detector(self, detector: OracleFailureDetector) -> None:
        """Feed crash notifications to an oracle failure detector."""
        self._detectors.append(detector)

    def on_crash(self, callback: CrashCallback) -> None:
        """Register an upcall invoked at the instant a process crashes."""
        self._crash_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def schedule_crash(
        self, process: ProcessId, time: SimTime, reason: str = "injected"
    ) -> CrashEvent:
        """Arrange for ``process`` to crash at simulated ``time``.

        Idempotent: scheduling a crash for a process that has already
        crashed, or that already has a pending scheduled crash, is a
        no-op that emits a ``schedule_ignored`` trace warning and
        returns the event that stands (the already-pending one for a
        duplicate).  Campaign schedules audit the outcome through
        :meth:`scheduled`.
        """
        if time < self.sim.now:
            raise ConfigurationError(
                f"cannot schedule crash at {time}; simulation is at {self.sim.now}"
            )
        if process in self._crashed:
            self.trace.emit(
                self.sim.now, "injector", "schedule_ignored",
                process=process, at=time, why="already_crashed",
            )
            return CrashEvent(process=process, time=time, reason="ignored")
        existing = self._pending.get(process)
        if existing is not None:
            self.trace.emit(
                self.sim.now, "injector", "schedule_ignored",
                process=process, at=time, why="already_scheduled",
                pending_time=existing.time,
            )
            return existing
        event = CrashEvent(process=process, time=time, reason=reason)
        self._scheduled.append(event)
        self._pending[process] = event
        self.sim.schedule_at(time, self.crash_now, process, reason)
        return event

    def schedule(self, events: Iterable[CrashEvent]) -> None:
        """Schedule a batch of crash events."""
        for event in events:
            self.schedule_crash(event.process, event.time, event.reason)

    def crash_now(self, process: ProcessId, reason: str = "immediate") -> None:
        """Crash ``process`` at the current instant (idempotent)."""
        if process in self._crashed:
            return
        self._crashed.add(process)
        self._pending.pop(process, None)
        self.trace.emit(self.sim.now, "injector", "crash", process=process, reason=reason)
        self.network.crash(process)
        for callback in list(self._crash_callbacks):
            callback(process)
        for detector in self._detectors:
            detector.notify_crash(process)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def crashed(self) -> Set[ProcessId]:
        """Processes that have crashed so far."""
        return set(self._crashed)

    def scheduled(self) -> Tuple[CrashEvent, ...]:
        """Crashes scheduled but not yet executed, in firing order.

        Lets a campaign audit exactly which of its requested crashes
        stand (duplicates and post-crash schedules were dropped)."""
        return tuple(
            sorted(self._pending.values(), key=lambda e: (e.time, e.process))
        )

    def is_crashed(self, process: ProcessId) -> bool:
        return process in self._crashed
