"""Perfect failure detector implementations.

See the package docstring for the choice between the oracle and
heartbeat variants.  Both expose the same small interface so the
membership layer does not care which one it is wired to.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.net.dispatch import Port
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog
from repro.types import ProcessId, TimerHandle

#: Upcall signature: invoked once per newly suspected process.
SuspectCallback = Callable[[ProcessId], None]


class FailureDetector(ABC):
    """Common interface of the perfect failure detector module."""

    def __init__(self) -> None:
        self._suspected: Set[ProcessId] = set()
        self._callbacks: List[SuspectCallback] = []

    def suspected(self) -> Set[ProcessId]:
        """The set of processes currently suspected (i.e. crashed)."""
        return set(self._suspected)

    def is_suspected(self, pid: ProcessId) -> bool:
        return pid in self._suspected

    def on_suspect(self, callback: SuspectCallback) -> None:
        """Register an upcall fired once per newly suspected process."""
        self._callbacks.append(callback)

    @abstractmethod
    def monitor(self, peers: Iterable[ProcessId]) -> None:
        """Replace the set of peers being monitored."""

    def _suspect(self, pid: ProcessId) -> None:
        if pid in self._suspected:
            return
        self._suspected.add(pid)
        for callback in list(self._callbacks):
            callback(pid)


class OracleFailureDetector(FailureDetector):
    """Perfect detector fed by the crash injector.

    The injector calls :meth:`notify_crash`; the detector reports the
    suspicion ``detection_delay_s`` later, modelling the time a real
    detector would need.  Accuracy is perfect by construction.
    """

    def __init__(
        self, sim: Simulator, owner: ProcessId, detection_delay_s: float = 20e-3
    ) -> None:
        super().__init__()
        self.sim = sim
        self.owner = owner
        self.detection_delay_s = detection_delay_s
        self._monitored: Set[ProcessId] = set()
        self._pending_crashes: Set[ProcessId] = set()

    def monitor(self, peers: Iterable[ProcessId]) -> None:
        self._monitored = {p for p in peers if p != self.owner}
        # A peer that crashed before we started monitoring it must still
        # be reported (strong completeness).
        for pid in self._monitored & self._pending_crashes:
            self.sim.schedule(self.detection_delay_s, self._suspect, pid)

    def notify_crash(self, pid: ProcessId) -> None:
        """Called by the injector the instant ``pid`` crashes."""
        if pid == self.owner:
            return
        self._pending_crashes.add(pid)
        if pid in self._monitored:
            self.sim.schedule(self.detection_delay_s, self._suspect, pid)


@dataclass
class _Heartbeat:
    """Tiny liveness probe.

    ``echo`` / ``sent_at`` support RTT telemetry on the live control
    plane: a detector with an ``rtt_observer`` echoes every probe back
    with the original send timestamp, and the prober observes the round
    trip.  Without an observer (the simulator) no echoes are ever sent,
    so simulated message counts are unchanged.
    """

    sender: ProcessId
    echo: bool = False
    sent_at: float = 0.0

    def wire_size_bytes(self) -> int:
        return 8


class HeartbeatFailureDetector(FailureDetector):
    """Timeout-based detector exchanging real heartbeat messages.

    Every ``interval_s`` the detector sends a heartbeat to each
    monitored peer; a peer not heard from for ``timeout_s`` is
    suspected.  With bounded simulated delays, choosing
    ``timeout_s`` above the worst-case heartbeat round delay makes the
    detector satisfy Perfect's strong accuracy, not merely eventual
    accuracy.
    """

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        interval_s: float = 10e-3,
        timeout_s: float = 100e-3,
        trace: Optional[TraceLog] = None,
        rtt_observer: Optional[Callable[[ProcessId, float], None]] = None,
    ) -> None:
        super().__init__()
        self.sim = sim
        self.port = port
        self.interval_s = interval_s
        self.timeout_s = timeout_s
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        #: Telemetry hook: ``rtt_observer(peer, rtt_s)`` per echoed
        #: probe.  Setting it also makes this detector echo peers'
        #: probes; ``None`` (the default, and always in simulation)
        #: keeps the wire protocol exactly one heartbeat per interval.
        self._rtt_observer = rtt_observer
        self._monitored: Set[ProcessId] = set()
        self._last_heard: Dict[ProcessId, float] = {}
        self._stopped = False
        port.on_receive(self._on_heartbeat)
        self._tick_timer: Optional[TimerHandle] = sim.schedule(0.0, self._tick)

    def monitor(self, peers: Iterable[ProcessId]) -> None:
        now = self.sim.now
        new_monitored = {p for p in peers if p != self.port.node_id}
        for pid in new_monitored - self._monitored:
            # Grace period: a freshly monitored peer gets a full timeout.
            self._last_heard[pid] = now
        self._monitored = new_monitored

    def stop(self) -> None:
        """Stop sending heartbeats (the owner crashed or left)."""
        self._stopped = True
        if self._tick_timer is not None:
            self._tick_timer.cancel()
            self._tick_timer = None

    # ------------------------------------------------------------------
    def _on_heartbeat(self, src: ProcessId, message: _Heartbeat) -> None:
        self._last_heard[src] = self.sim.now
        if self._rtt_observer is None:
            return
        if message.echo:
            self._rtt_observer(src, self.sim.now - message.sent_at)
        else:
            self.port.send(
                src,
                _Heartbeat(
                    sender=self.port.node_id, echo=True, sent_at=message.sent_at
                ),
            )

    def _tick(self) -> None:
        if self._stopped:
            return
        me = self.port.node_id
        for pid in self._monitored:
            if pid not in self._suspected:
                self.port.send(pid, _Heartbeat(sender=me, sent_at=self.sim.now))
        deadline = self.sim.now - self.timeout_s
        for pid in sorted(self._monitored):
            if pid in self._suspected:
                continue
            if self._last_heard.get(pid, 0.0) < deadline:
                self.trace.emit(
                    self.sim.now, "fd", "suspect", owner=me, peer=pid,
                    last_heard=self._last_heard.get(pid),
                )
                self._suspect(pid)
        self._tick_timer = self.sim.schedule(self.interval_s, self._tick)
