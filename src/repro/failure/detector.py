"""Perfect failure detector implementations.

See the package docstring for the choice between the oracle and
heartbeat variants.  Both expose the same small interface so the
membership layer does not care which one it is wired to.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.net.dispatch import Port
from repro.obs.telemetry import Telemetry
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog
from repro.types import ProcessId, TimerHandle


def adaptive_floor_s(interval_s: float, ceiling_s: float) -> float:
    """Default lower clamp of the adaptive suspicion timeout.

    Never below four heartbeat intervals (one delayed probe plus
    scheduling noise must not look like a crash) and never below 35% of
    the configured ceiling (the bound chaos generators keep
    "sub-threshold" jitter under — see
    ``repro.chaos.schedules.hostile_network``).
    """
    return max(4.0 * interval_s, 0.35 * ceiling_s)

#: Upcall signature: invoked once per newly suspected process.
SuspectCallback = Callable[[ProcessId], None]


class FailureDetector(ABC):
    """Common interface of the perfect failure detector module."""

    def __init__(self) -> None:
        self._suspected: Set[ProcessId] = set()
        self._callbacks: List[SuspectCallback] = []

    def suspected(self) -> Set[ProcessId]:
        """The set of processes currently suspected (i.e. crashed)."""
        return set(self._suspected)

    def is_suspected(self, pid: ProcessId) -> bool:
        return pid in self._suspected

    def on_suspect(self, callback: SuspectCallback) -> None:
        """Register an upcall fired once per newly suspected process."""
        self._callbacks.append(callback)

    @abstractmethod
    def monitor(self, peers: Iterable[ProcessId]) -> None:
        """Replace the set of peers being monitored."""

    def _suspect(self, pid: ProcessId) -> None:
        if pid in self._suspected:
            return
        self._suspected.add(pid)
        for callback in list(self._callbacks):
            callback(pid)


class OracleFailureDetector(FailureDetector):
    """Perfect detector fed by the crash injector.

    The injector calls :meth:`notify_crash`; the detector reports the
    suspicion ``detection_delay_s`` later, modelling the time a real
    detector would need.  Accuracy is perfect by construction.
    """

    def __init__(
        self, sim: Simulator, owner: ProcessId, detection_delay_s: float = 20e-3
    ) -> None:
        super().__init__()
        self.sim = sim
        self.owner = owner
        self.detection_delay_s = detection_delay_s
        self._monitored: Set[ProcessId] = set()
        self._pending_crashes: Set[ProcessId] = set()

    def monitor(self, peers: Iterable[ProcessId]) -> None:
        self._monitored = {p for p in peers if p != self.owner}
        # A peer that crashed before we started monitoring it must still
        # be reported (strong completeness).
        for pid in self._monitored & self._pending_crashes:
            self.sim.schedule(self.detection_delay_s, self._suspect, pid)

    def notify_crash(self, pid: ProcessId) -> None:
        """Called by the injector the instant ``pid`` crashes."""
        if pid == self.owner:
            return
        self._pending_crashes.add(pid)
        if pid in self._monitored:
            self.sim.schedule(self.detection_delay_s, self._suspect, pid)


@dataclass
class _Heartbeat:
    """Tiny liveness probe.

    ``echo`` / ``sent_at`` support RTT telemetry on the live control
    plane: a detector with an ``rtt_observer`` echoes every probe back
    with the original send timestamp, and the prober observes the round
    trip.  Without an observer (the simulator) no echoes are ever sent,
    so simulated message counts are unchanged.
    """

    sender: ProcessId
    echo: bool = False
    sent_at: float = 0.0

    def wire_size_bytes(self) -> int:
        return 8


class HeartbeatFailureDetector(FailureDetector):
    """Timeout-based detector exchanging real heartbeat messages.

    Every ``interval_s`` the detector sends a heartbeat to each
    monitored peer; a peer not heard from for ``timeout_s`` is
    suspected.  With bounded simulated delays, choosing
    ``timeout_s`` above the worst-case heartbeat round delay makes the
    detector satisfy Perfect's strong accuracy, not merely eventual
    accuracy.
    """

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        interval_s: float = 10e-3,
        timeout_s: float = 100e-3,
        trace: Optional[TraceLog] = None,
        rtt_observer: Optional[Callable[[ProcessId, float], None]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        super().__init__()
        self.sim = sim
        self.port = port
        self.interval_s = interval_s
        self.timeout_s = timeout_s
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.telemetry = telemetry
        #: Telemetry hook: ``rtt_observer(peer, rtt_s)`` per echoed
        #: probe.  Setting it also makes this detector echo peers'
        #: probes; ``None`` (the default, and always in simulation)
        #: keeps the wire protocol exactly one heartbeat per interval.
        self._rtt_observer = rtt_observer
        self._monitored: Set[ProcessId] = set()
        self._last_heard: Dict[ProcessId, float] = {}
        self._stopped = False
        port.on_receive(self._on_heartbeat)
        self._tick_timer: Optional[TimerHandle] = sim.schedule(0.0, self._tick)

    def monitor(self, peers: Iterable[ProcessId]) -> None:
        now = self.sim.now
        new_monitored = {p for p in peers if p != self.port.node_id}
        for pid in new_monitored - self._monitored:
            # Grace period: a freshly monitored peer gets a full timeout.
            self._last_heard[pid] = now
        self._monitored = new_monitored

    def stop(self) -> None:
        """Stop sending heartbeats (the owner crashed or left)."""
        self._stopped = True
        if self._tick_timer is not None:
            self._tick_timer.cancel()
            self._tick_timer = None

    # ------------------------------------------------------------------
    def _timeout_for(self, pid: ProcessId) -> float:
        """Suspicion bound for ``pid``; subclasses adapt it per peer."""
        return self.timeout_s

    def _note_heartbeat(self, src: ProcessId, now: float) -> None:
        """Hook: called on every arrival from ``src`` (probe or echo)."""

    def _on_heartbeat(self, src: ProcessId, message: _Heartbeat) -> None:
        self._last_heard[src] = self.sim.now
        self._note_heartbeat(src, self.sim.now)
        if self._rtt_observer is None:
            return
        if message.echo:
            self._rtt_observer(src, self.sim.now - message.sent_at)
        else:
            self.port.send(
                src,
                _Heartbeat(
                    sender=self.port.node_id, echo=True, sent_at=message.sent_at
                ),
            )

    def _tick(self) -> None:
        if self._stopped:
            return
        me = self.port.node_id
        now = self.sim.now
        for pid in self._monitored:
            if pid not in self._suspected:
                self.port.send(pid, _Heartbeat(sender=me, sent_at=now))
        worst_level = 0.0
        worst_timeout = 0.0
        for pid in sorted(self._monitored):
            if pid in self._suspected:
                continue
            timeout = self._timeout_for(pid)
            silence = now - self._last_heard.get(pid, 0.0)
            worst_level = max(worst_level, silence / max(timeout, 1e-9))
            worst_timeout = max(worst_timeout, timeout)
            if silence > timeout:
                self.trace.emit(
                    now, "fd", "suspect", owner=me, peer=pid,
                    last_heard=self._last_heard.get(pid),
                    timeout_s=timeout,
                )
                if self.telemetry is not None:
                    self.telemetry.counter("fd_suspicions").inc()
                self._suspect(pid)
        if self.telemetry is not None and self._monitored:
            self.telemetry.gauge("fd_suspicion_level").set(round(worst_level, 4))
            self.telemetry.gauge("fd_timeout_s").set(round(worst_timeout, 6))
        self._tick_timer = self.sim.schedule(self.interval_s, self._tick)


class AdaptiveFailureDetector(HeartbeatFailureDetector):
    """Heartbeat detector with a per-peer adaptive suspicion timeout.

    A fixed bound cannot win the accuracy/completeness trade-off on a
    real network: set it for the healthy case and background jitter
    triggers false-suspicion view-change storms; set it for the hostile
    case and every genuine crash costs the full pessimistic timeout.
    Following the φ-accrual idea (Hayashibara et al.), this detector
    keeps an EWMA estimate of each peer's heartbeat inter-arrival mean
    and variance and suspects only when the current silence exceeds

        ``clamp(mean + k·std, floor, ceiling)``

    - ``mean + k·std`` tracks what *this* link actually delivers, so
      sub-threshold jitter widens the bound before it can misfire;
    - ``floor`` (default :func:`adaptive_floor_s`) keeps one delayed
      probe from ever looking like a crash;
    - ``ceiling`` (the configured ``timeout_s``) preserves the
      completeness guarantee: a genuine crash is still suspected within
      the same worst-case bound as the fixed detector, because silence
      past the ceiling is suspect regardless of learned state.

    Until ``warmup_samples`` gaps have been observed for a peer, the
    ceiling applies (a freshly monitored peer gets the full grace the
    fixed detector gives).
    """

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        interval_s: float = 10e-3,
        timeout_s: float = 100e-3,
        trace: Optional[TraceLog] = None,
        rtt_observer: Optional[Callable[[ProcessId, float], None]] = None,
        telemetry: Optional[Telemetry] = None,
        floor_s: Optional[float] = None,
        safety_factor: float = 4.0,
        alpha: float = 0.2,
        warmup_samples: int = 5,
    ) -> None:
        self.floor_s = (
            floor_s if floor_s is not None
            else adaptive_floor_s(interval_s, timeout_s)
        )
        self.ceiling_s = timeout_s
        self.safety_factor = safety_factor
        self.alpha = alpha
        self.warmup_samples = warmup_samples
        self._gap_mean: Dict[ProcessId, float] = {}
        self._gap_var: Dict[ProcessId, float] = {}
        self._prev_arrival: Dict[ProcessId, float] = {}
        self._gap_samples: Dict[ProcessId, int] = {}
        super().__init__(
            sim, port,
            interval_s=interval_s, timeout_s=timeout_s, trace=trace,
            rtt_observer=rtt_observer, telemetry=telemetry,
        )

    def _note_heartbeat(self, src: ProcessId, now: float) -> None:
        prev = self._prev_arrival.get(src)
        self._prev_arrival[src] = now
        if prev is None:
            return
        gap = now - prev
        if gap <= 0.0:
            return
        mean = self._gap_mean.get(src, gap)
        var = self._gap_var.get(src, 0.0)
        delta = gap - mean
        mean += self.alpha * delta
        var = (1.0 - self.alpha) * (var + self.alpha * delta * delta)
        self._gap_mean[src] = mean
        self._gap_var[src] = var
        self._gap_samples[src] = self._gap_samples.get(src, 0) + 1

    def _timeout_for(self, pid: ProcessId) -> float:
        if self._gap_samples.get(pid, 0) < self.warmup_samples:
            return self.ceiling_s
        estimate = self._gap_mean[pid] + self.safety_factor * math.sqrt(
            self._gap_var[pid]
        )
        return min(self.ceiling_s, max(self.floor_s, estimate))
