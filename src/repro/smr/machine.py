"""Generic state machine replication over TO-broadcast.

A :class:`ReplicatedStateMachine` wraps one replica's protocol endpoint
(any :class:`~repro.core.api.TotalOrderBroadcast`): commands submitted
at any replica are TO-broadcast, and every replica applies the total
order of commands to its local :class:`StateMachine`.  Uniform total
order is exactly the property that keeps replicas bit-identical even
across crashes — the checkers in :mod:`repro.smr` tests assert state
equality, not just delivery equality.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.api import BroadcastListener, TotalOrderBroadcast
from repro.errors import ProtocolError
from repro.types import MessageId, ProcessId


@dataclass(frozen=True)
class Command:
    """One application command: an operation name plus arguments."""

    op: str
    args: Tuple[Any, ...] = ()

    def encode(self) -> bytes:
        """Serialise to bytes (the TO-broadcast payload)."""
        return json.dumps([self.op, list(self.args)]).encode("utf-8")

    @classmethod
    def decode(cls, payload: bytes) -> "Command":
        try:
            op, args = json.loads(payload.decode("utf-8"))
            return cls(op=op, args=tuple(args))
        except (ValueError, TypeError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"undecodable command payload: {exc}") from exc


class StateMachine(ABC):
    """A deterministic state machine: same commands, same state."""

    @abstractmethod
    def apply(self, command: Command) -> Any:
        """Apply ``command`` and return its (deterministic) result."""

    @abstractmethod
    def snapshot(self) -> Any:
        """Return a comparable snapshot of the full state."""


#: Upcall on every applied command: (index, origin, command, result).
ApplyCallback = Callable[[int, ProcessId, Command, Any], None]


class ReplicatedStateMachine:
    """One replica: a state machine driven by a TO-broadcast endpoint.

    Example::

        rsm = ReplicatedStateMachine(protocol, KVStore())
        rsm.submit(Command("put", ("key", "value")))
        # ... after the run, every replica's snapshot() is identical.
    """

    def __init__(
        self,
        broadcast: TotalOrderBroadcast,
        machine: StateMachine,
    ) -> None:
        self.broadcast = broadcast
        self.machine = machine
        self.applied_count = 0
        #: Optional :class:`repro.obs.profile.CpuAccountant`: when set,
        #: the delivery path charges payload decode and state-machine
        #: apply to separate CPU stages.  ``None`` costs one attribute
        #: check per delivery.
        self.profile: Optional[Any] = None
        self._apply_callbacks: List[ApplyCallback] = []
        #: Results of locally submitted commands, by message id.
        self._local_results: Dict[MessageId, Any] = {}
        broadcast.set_listener(BroadcastListener(self._on_deliver))

    def submit(self, command: Command) -> MessageId:
        """TO-broadcast ``command``; it will be applied at every replica."""
        return self.broadcast.broadcast(command.encode())

    def on_apply(self, callback: ApplyCallback) -> None:
        """Observe every applied command (testing, metrics)."""
        self._apply_callbacks.append(callback)

    def result_of(self, message_id: MessageId) -> Any:
        """Result of a locally observed command, if applied already."""
        return self._local_results.get(message_id)

    def deliver(
        self, origin: ProcessId, message_id: MessageId, payload: Any, size: int
    ) -> None:
        """Public delivery entry point for multiplexed listeners.

        The constructor claims the broadcast endpoint's single listener
        slot.  Runtimes that must observe deliveries themselves (the
        live node journals every delivery) install their own combined
        listener instead and forward each delivery here.
        """
        self._on_deliver(origin, message_id, payload, size)

    def _on_deliver(
        self, origin: ProcessId, message_id: MessageId, payload: Any, size: int
    ) -> None:
        profile = self.profile
        if profile is None:
            command = Command.decode(payload)
            result = self.machine.apply(command)
        else:
            with profile.stage("decode"):
                command = Command.decode(payload)
            with profile.stage("apply"):
                result = self.machine.apply(command)
        self.applied_count += 1
        self._local_results[message_id] = result
        for callback in list(self._apply_callbacks):
            callback(self.applied_count, origin, command, result)

    def snapshot(self) -> Any:
        """The replica's current deterministic state."""
        return self.machine.snapshot()

    def local_read(self, command: Command) -> Any:
        """Run a read-only command against the local replica directly.

        The paper's footnote 1: invocations that do not change the
        replicated state need not be broadcast and can run in parallel.
        Only commands the state machine declares read-only (its
        ``READ_ONLY_OPS`` attribute) are accepted; the result reflects
        this replica's *applied prefix* of the total order —
        sequentially consistent, not linearisable.  Use :meth:`submit`
        for reads that must be totally ordered.
        """
        read_only_ops = getattr(self.machine, "READ_ONLY_OPS", frozenset())
        if command.op not in read_only_ops:
            raise ProtocolError(
                f"{command.op!r} is not declared read-only by "
                f"{type(self.machine).__name__}; submit() it instead"
            )
        return self.machine.apply(command)
