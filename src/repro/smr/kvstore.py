"""A replicated key-value store state machine.

Supports the handful of operations the examples exercise — enough to
demonstrate that replicas stay identical under concurrent writers and
crashes, without pretending to be a database.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.errors import ProtocolError
from repro.smr.machine import Command, StateMachine


class KVStore(StateMachine):
    """Deterministic key-value store with counters and CAS.

    Operations:

    * ``put(key, value)`` — set; returns the previous value.
    * ``get(key)`` — read (goes through the total order, so it is a
      linearisable read); returns the value or ``None``.
    * ``delete(key)`` — remove; returns whether the key existed.
    * ``incr(key, amount)`` — add to a numeric value (default 0).
    * ``cas(key, expected, new)`` — compare-and-swap; returns success.
    """

    #: Operations safe for the paper's footnote-1 local-read fast path.
    READ_ONLY_OPS = frozenset({"get"})

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}

    def apply(self, command: Command) -> Any:
        handler = getattr(self, f"_op_{command.op}", None)
        if handler is None:
            raise ProtocolError(f"unknown KV operation {command.op!r}")
        try:
            return handler(*command.args)
        except TypeError as exc:
            # Wrong arity / argument types are a deterministic rejection
            # of the command, not a replica crash.
            raise ProtocolError(
                f"bad arguments for {command.op!r}: {exc}"
            ) from exc

    def snapshot(self) -> Dict[str, Any]:
        return dict(self._data)

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Replace the store's contents with ``snapshot``."""
        self._data = dict(snapshot)

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    def _op_put(self, key: str, value: Any) -> Any:
        previous = self._data.get(key)
        self._data[key] = value
        return previous

    def _op_get(self, key: str) -> Any:
        return self._data.get(key)

    def _op_delete(self, key: str) -> bool:
        return self._data.pop(key, _MISSING) is not _MISSING

    def _op_incr(self, key: str, amount: int = 1) -> int:
        value = self._data.get(key, 0)
        if not isinstance(value, (int, float)):
            raise ProtocolError(f"incr on non-numeric key {key!r}")
        value += amount
        self._data[key] = value
        return value

    def _op_cas(self, key: str, expected: Any, new: Any) -> bool:
        if self._data.get(key) != expected:
            return False
        self._data[key] = new
        return True


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
