"""State machine replication on top of total order broadcast.

The paper's introduction motivates TO-broadcast as the ordering core of
software-based replication: every replica applies the same commands in
the same order, so their states never diverge.  This package provides
that thin layer — commands in, deterministic state out — plus a small
replicated key-value store used by the examples and tests.
"""

from repro.smr.machine import Command, ReplicatedStateMachine, StateMachine
from repro.smr.kvstore import KVStore

__all__ = ["Command", "ReplicatedStateMachine", "StateMachine", "KVStore"]
