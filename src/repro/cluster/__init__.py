"""One-call experiment harness.

:func:`repro.cluster.harness.build_cluster` assembles the full stack —
simulator, switched network, channels, failure detection, membership,
and a total-order protocol at every node — from a single
:class:`~repro.cluster.config.ClusterConfig`.  Workload drivers and
benchmarks never touch the wiring.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.harness import Cluster, build_cluster
from repro.cluster.results import ExperimentResult

__all__ = ["ClusterConfig", "Cluster", "build_cluster", "ExperimentResult"]
