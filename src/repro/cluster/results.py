"""Experiment result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.api import DeliveryLog
from repro.net.network import NicStats
from repro.obs.span import SpanLog
from repro.sim.trace import TraceLog
from repro.types import BroadcastRecord, MessageId, ProcessId, SimTime


@dataclass
class AppDelivery:
    """One application-level (reassembled) delivery at one process."""

    process: ProcessId
    origin: ProcessId
    message_id: MessageId
    size_bytes: int
    time: SimTime


@dataclass
class ExperimentResult:
    """Everything a finished run leaves behind.

    The metrics collector (:mod:`repro.metrics`) and the correctness
    checkers (:mod:`repro.checker`) both consume this container; no
    subsystem reaches back into live cluster objects after a run.
    """

    #: Copy of the configuration that produced this result.
    config: Any
    #: Final simulated time.
    duration_s: SimTime
    #: Per-process protocol-level delivery logs (segments, sequences).
    delivery_logs: Dict[ProcessId, DeliveryLog]
    #: Per-process application-level deliveries (reassembled messages).
    app_deliveries: Dict[ProcessId, List[AppDelivery]]
    #: Every TO-broadcast submitted, in submission order.
    broadcasts: List[BroadcastRecord]
    #: Which process submitted each broadcast.
    broadcast_origin: Dict[MessageId, ProcessId]
    #: Processes crashed during the run and when.
    crashed: Dict[ProcessId, SimTime]
    #: Per-process NIC/CPU accounting.
    nic_stats: Dict[ProcessId, NicStats]
    #: Structured trace (empty unless the config enabled tracing).
    trace: TraceLog = field(default_factory=lambda: TraceLog(enabled=False))
    #: Lifecycle spans (empty unless the config enabled spans).
    spans: SpanLog = field(default_factory=lambda: SpanLog(enabled=False))
    #: Lazy completion-time index; see :meth:`completion_times`.
    _completion_cache: Optional[Dict[MessageId, SimTime]] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def correct_processes(self) -> Set[ProcessId]:
        """Processes that never crashed."""
        return set(self.delivery_logs) - set(self.crashed)

    def deliveries_of(self, process: ProcessId) -> DeliveryLog:
        return self.delivery_logs[process]

    def total_delivered_bytes(self) -> int:
        """Application bytes delivered, summed over processes."""
        return sum(
            delivery.size_bytes
            for deliveries in self.app_deliveries.values()
            for delivery in deliveries
        )

    def app_delivery_times(
        self, message_id: MessageId
    ) -> List[Tuple[ProcessId, SimTime]]:
        """Where and when one application message was delivered."""
        out: List[Tuple[ProcessId, SimTime]] = []
        for process, deliveries in self.app_deliveries.items():
            for delivery in deliveries:
                if delivery.message_id == message_id:
                    out.append((process, delivery.time))
        return out

    def completion_times(self) -> Dict[MessageId, SimTime]:
        """Completion time of every fully-delivered application message.

        A message completes when the *last* correct process delivers it
        (the paper's Section 5.1 measurement protocol); messages some
        correct process never delivered are absent.  Built in one pass
        over the delivery logs and cached — benchmark runs query tens
        of thousands of completions, and the per-call scan was
        quadratic in run length.
        """
        if self._completion_cache is None:
            per_process: List[Dict[MessageId, SimTime]] = []
            for process in self.correct_processes():
                first: Dict[MessageId, SimTime] = {}
                for delivery in self.app_deliveries[process]:
                    if delivery.message_id not in first:
                        first[delivery.message_id] = delivery.time
                per_process.append(first)
            cache: Dict[MessageId, SimTime] = {}
            if per_process:
                everywhere = set(per_process[0]).intersection(
                    *(set(first) for first in per_process[1:])
                )
                for message_id in everywhere:
                    cache[message_id] = max(
                        first[message_id] for first in per_process
                    )
            self._completion_cache = cache
        return self._completion_cache

    def completion_time(self, message_id: MessageId) -> Optional[SimTime]:
        """Time the *last* correct process delivered ``message_id``.

        Returns ``None`` if some correct process never delivered it.
        """
        return self.completion_times().get(message_id)
