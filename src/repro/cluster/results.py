"""Experiment result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.api import DeliveryLog
from repro.net.network import NicStats
from repro.sim.trace import TraceLog
from repro.types import BroadcastRecord, MessageId, ProcessId, SimTime


@dataclass
class AppDelivery:
    """One application-level (reassembled) delivery at one process."""

    process: ProcessId
    origin: ProcessId
    message_id: MessageId
    size_bytes: int
    time: SimTime


@dataclass
class ExperimentResult:
    """Everything a finished run leaves behind.

    The metrics collector (:mod:`repro.metrics`) and the correctness
    checkers (:mod:`repro.checker`) both consume this container; no
    subsystem reaches back into live cluster objects after a run.
    """

    #: Copy of the configuration that produced this result.
    config: Any
    #: Final simulated time.
    duration_s: SimTime
    #: Per-process protocol-level delivery logs (segments, sequences).
    delivery_logs: Dict[ProcessId, DeliveryLog]
    #: Per-process application-level deliveries (reassembled messages).
    app_deliveries: Dict[ProcessId, List[AppDelivery]]
    #: Every TO-broadcast submitted, in submission order.
    broadcasts: List[BroadcastRecord]
    #: Which process submitted each broadcast.
    broadcast_origin: Dict[MessageId, ProcessId]
    #: Processes crashed during the run and when.
    crashed: Dict[ProcessId, SimTime]
    #: Per-process NIC/CPU accounting.
    nic_stats: Dict[ProcessId, NicStats]
    #: Structured trace (empty unless the config enabled tracing).
    trace: TraceLog = field(default_factory=lambda: TraceLog(enabled=False))

    # ------------------------------------------------------------------
    def correct_processes(self) -> Set[ProcessId]:
        """Processes that never crashed."""
        return set(self.delivery_logs) - set(self.crashed)

    def deliveries_of(self, process: ProcessId) -> DeliveryLog:
        return self.delivery_logs[process]

    def total_delivered_bytes(self) -> int:
        """Application bytes delivered, summed over processes."""
        return sum(
            delivery.size_bytes
            for deliveries in self.app_deliveries.values()
            for delivery in deliveries
        )

    def app_delivery_times(
        self, message_id: MessageId
    ) -> List[Tuple[ProcessId, SimTime]]:
        """Where and when one application message was delivered."""
        out: List[Tuple[ProcessId, SimTime]] = []
        for process, deliveries in self.app_deliveries.items():
            for delivery in deliveries:
                if delivery.message_id == message_id:
                    out.append((process, delivery.time))
        return out

    def completion_time(self, message_id: MessageId) -> Optional[SimTime]:
        """Time the *last* correct process delivered ``message_id``.

        This matches the paper's measurement protocol (Section 5.1):
        a broadcast completes when all processes have delivered it.
        Returns ``None`` if some correct process never delivered it.
        """
        correct = self.correct_processes()
        times: List[SimTime] = []
        for process in correct:
            found = None
            for delivery in self.app_deliveries[process]:
                if delivery.message_id == message_id:
                    found = delivery.time
                    break
            if found is None:
                return None
            times.append(found)
        return max(times) if times else None
