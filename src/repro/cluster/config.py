"""Cluster experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.net.params import NetworkParams


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to stand up one simulated cluster.

    ``protocol`` names an entry of :data:`repro.protocols.PROTOCOLS`;
    ``protocol_config`` is that protocol's own config object (for FSR,
    an :class:`~repro.core.fsr.config.FSRConfig`) or ``None`` for the
    protocol's defaults.
    """

    #: Number of processes (ring positions 0..n-1 in the initial view).
    n: int = 5
    #: Protocol registry name ("fsr", "fixed_sequencer", ...).
    protocol: str = "fsr"
    #: Protocol-specific configuration object.
    protocol_config: Optional[Any] = None
    #: Physical network / host model.
    network: NetworkParams = field(default_factory=NetworkParams.fast_ethernet)
    #: Root seed for all randomised subsystems.
    seed: int = 0
    #: Failure detector flavour: "oracle", "heartbeat", or "adaptive"
    #: (heartbeat with an EWMA-adapted suspicion timeout).
    detector: str = "oracle"
    #: Crash-to-suspicion delay of the oracle detector (seconds).
    detection_delay_s: float = 20e-3
    #: Heartbeat period (heartbeat/adaptive detectors only).
    heartbeat_interval_s: float = 10e-3
    #: Suspicion timeout (heartbeat), or its ceiling (adaptive).
    heartbeat_timeout_s: float = 200e-3
    #: Primary-partition guard: membership refuses to install a view
    #: keeping less than a strict majority of the current one.  Needed
    #: whenever the run can partition (hostile-network chaos); off by
    #: default because configurations with ``t >= n/2`` legitimately
    #: install minority views after mass crashes.
    require_quorum: bool = False
    #: Record a structured trace of the run (slows large runs).
    trace: bool = False
    #: Record per-message lifecycle spans (``repro.obs``); off by
    #: default, free when disabled.
    spans: bool = False

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError("a cluster needs at least one process")
        if self.detector not in ("oracle", "heartbeat", "adaptive"):
            raise ConfigurationError(
                f"unknown detector {self.detector!r}; "
                "use 'oracle', 'heartbeat', or 'adaptive'"
            )
        if self.detection_delay_s < 0:
            raise ConfigurationError("detection_delay_s cannot be negative")
