"""Cluster assembly and experiment execution.

``build_cluster(config)`` stands up the full simulated stack; the
returned :class:`Cluster` exposes just enough surface for workload
drivers and tests: broadcast, run, crash, results.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.results import AppDelivery, ExperimentResult
from repro.core.api import BroadcastListener, DeliveryLog, TotalOrderBroadcast
from repro.errors import ConfigurationError, SimulationError
from repro.failure.detector import (
    AdaptiveFailureDetector,
    FailureDetector,
    HeartbeatFailureDetector,
    OracleFailureDetector,
)
from repro.failure.injector import CrashInjector
from repro.net.channel import ChannelStack
from repro.net.dispatch import LayerDemux
from repro.net.network import Network, NetworkEndpoint
from repro.obs.span import SpanLog
from repro.protocols.registry import ProtocolContext, build_protocol
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog
from repro.types import BroadcastRecord, MessageId, ProcessId, SimTime
from repro.vsc.membership import GroupMembership

#: Id offset between a node's per-ring synthetic NICs (multi-ring only).
#: Ring ``r`` of node ``p`` attaches to the network as ``p + r * STRIDE``;
#: real node ids stay far below the stride.
RING_STRIDE = 4096


class _RingPort:
    """Port adapter mapping one inner ring's traffic onto an alias NIC.

    Each extra ring of a multi-ring node gets its own simulated NIC (its
    own TX/RX/CPU queues — the multi-queue-NIC + one-protocol-core-per-
    ring resource model), attached under an alias id.  This adapter
    translates peer ids on the way through so the protocol automaton
    only ever sees real node ids.
    """

    def __init__(self, stack: ChannelStack, real_id: ProcessId, delta: int) -> None:
        self._stack = stack
        self._real_id = real_id
        self._delta = delta

    @property
    def node_id(self) -> ProcessId:
        return self._real_id

    def send(self, dst: ProcessId, message: Any,
             size_bytes: Optional[int] = None) -> None:
        self._stack.send(dst + self._delta, message, size_bytes)

    def on_receive(self, handler: Callable[[ProcessId, Any], None]) -> None:
        delta = self._delta
        self._stack.on_receive(lambda src, message: handler(src - delta, message))


class ClusterNode:
    """Everything living at one simulated machine."""

    def __init__(
        self,
        node_id: ProcessId,
        endpoint: NetworkEndpoint,
        stack: ChannelStack,
        demux: LayerDemux,
        detector: FailureDetector,
        membership: GroupMembership,
        protocol: TotalOrderBroadcast,
        ring_alias_ids: Optional[List[ProcessId]] = None,
    ) -> None:
        self.node_id = node_id
        self.endpoint = endpoint
        self.stack = stack
        self.demux = demux
        self.detector = detector
        self.membership = membership
        self.protocol = protocol
        #: Synthetic per-ring NIC ids (multi-ring; crashed with the node).
        self.ring_alias_ids = ring_alias_ids or []
        self.delivery_log = DeliveryLog(process=node_id)
        self.app_deliveries: List[AppDelivery] = []


class Cluster:
    """A running simulated cluster (see :func:`build_cluster`)."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.trace = TraceLog(enabled=config.trace)
        #: One shared span log: node ids disambiguate emitters, exactly
        #: like the per-node journals a live run merges.
        self.spans = SpanLog(enabled=config.spans)
        self.rngs = RngRegistry(seed=config.seed)
        self.network = Network(
            self.sim,
            config.network,
            trace=self.trace,
            loss_rng=self.rngs.stream("net.loss"),
            jitter_rng=self.rngs.stream("net.jitter"),
        )
        self.injector = CrashInjector(self.sim, self.network, trace=self.trace)
        self.members: Tuple[ProcessId, ...] = tuple(range(config.n))
        self.nodes: Dict[ProcessId, ClusterNode] = {}
        self._broadcasts: List[BroadcastRecord] = []
        self._broadcast_origin: Dict[MessageId, ProcessId] = {}
        self._crashed: Dict[ProcessId, SimTime] = {}
        self._started = False

        for node_id in self.members:
            self.nodes[node_id] = self._build_node(node_id)
        self.injector.on_crash(self._on_crash)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _build_node(self, node_id: ProcessId) -> ClusterNode:
        config = self.config
        endpoint = self.network.attach(node_id)
        stack = ChannelStack(self.sim, endpoint, config.network, trace=self.trace)
        demux = LayerDemux(stack)

        fd_port = demux.port("fd")
        if config.detector == "oracle":
            detector: FailureDetector = OracleFailureDetector(
                self.sim, owner=node_id, detection_delay_s=config.detection_delay_s
            )
            self.injector.register_detector(detector)
        elif config.detector == "adaptive":
            detector = AdaptiveFailureDetector(
                self.sim,
                fd_port,
                interval_s=config.heartbeat_interval_s,
                timeout_s=config.heartbeat_timeout_s,
                trace=self.trace,
            )
        else:
            detector = HeartbeatFailureDetector(
                self.sim,
                fd_port,
                interval_s=config.heartbeat_interval_s,
                timeout_s=config.heartbeat_timeout_s,
                trace=self.trace,
            )

        membership = GroupMembership(
            self.sim,
            demux.port("vsc"),
            detector,
            me=node_id,
            initial_members=self.members,
            trace=self.trace,
            require_quorum=config.require_quorum,
        )

        proto_port = demux.port("proto")
        ring_links, ring_alias_ids = self._build_ring_links(
            node_id, endpoint, proto_port
        )
        context = ProtocolContext(
            sim=self.sim,
            node_id=node_id,
            port=proto_port,
            membership=membership,
            members=self.members,
            config=config.protocol_config,
            trace=self.trace,
            tx_gate=lambda: endpoint.tx_idle,
            on_tx_idle=endpoint.on_tx_idle,
            cpu_submit=endpoint.cpu_submit,
            spans=self.spans,
            ring_links=ring_links,
        )
        protocol = build_protocol(config.protocol, context)

        node = ClusterNode(
            node_id, endpoint, stack, demux, detector, membership, protocol,
            ring_alias_ids=ring_alias_ids,
        )
        protocol.set_listener(
            BroadcastListener(
                lambda origin, mid, payload, size, _n=node: _n.app_deliveries.append(
                    AppDelivery(
                        process=_n.node_id,
                        origin=origin,
                        message_id=mid,
                        size_bytes=size,
                        time=self.sim.now,
                    )
                )
            )
        )
        deliver_hook = getattr(protocol, "on_protocol_deliver", None)
        if deliver_hook is not None:
            deliver_hook(node.delivery_log.deliveries.append)
        return node

    def _build_ring_links(
        self,
        node_id: ProcessId,
        endpoint: NetworkEndpoint,
        proto_port: Any,
    ) -> Tuple[Optional[List[Any]], List[ProcessId]]:
        """Provision per-ring NICs for the multi-ring protocol.

        Ring 0 rides the node's main endpoint (sharing it with the
        membership and failure-detector layers, like single-ring FSR);
        each further ring gets its own synthetic network attachment —
        its own TX/RX/CPU queues — under an alias id, wrapped in its own
        :class:`ChannelStack` so ARQ covers the alias links under loss.
        """
        config = self.config
        if config.protocol != "multiring":
            return None, []
        from repro.protocols.multiring.config import MultiRingConfig
        from repro.protocols.multiring.core import RingLink

        mr_config = config.protocol_config
        if not isinstance(mr_config, MultiRingConfig):
            mr_config = MultiRingConfig()
        if mr_config.shards <= 1:
            return None, []
        links: List[Any] = [
            RingLink(
                ring=0,
                port=proto_port,
                tx_gate=lambda: endpoint.tx_idle,
                on_tx_idle=endpoint.on_tx_idle,
                cpu_submit=endpoint.cpu_submit,
            )
        ]
        alias_ids: List[ProcessId] = []
        for ring in range(1, mr_config.shards):
            delta = ring * RING_STRIDE
            alias_id = node_id + delta
            alias_endpoint = self.network.attach(alias_id)
            alias_stack = ChannelStack(
                self.sim, alias_endpoint, config.network, trace=self.trace
            )
            links.append(
                RingLink(
                    ring=ring,
                    port=_RingPort(alias_stack, node_id, delta),
                    tx_gate=(
                        lambda _endpoint=alias_endpoint: _endpoint.tx_idle
                    ),
                    on_tx_idle=alias_endpoint.on_tx_idle,
                    cpu_submit=alias_endpoint.cpu_submit,
                )
            )
            alias_ids.append(alias_id)
        return links, alias_ids

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every node's protocol stack."""
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            node.protocol.start()

    def broadcast(
        self,
        node_id: ProcessId,
        payload: Any = None,
        size_bytes: Optional[int] = None,
    ) -> MessageId:
        """Submit one TO-broadcast at ``node_id`` (records it for checks)."""
        if not self._started:
            raise SimulationError("call Cluster.start() before broadcasting")
        node = self.nodes[node_id]
        message_id = node.protocol.broadcast(payload, size_bytes)
        size = size_bytes if size_bytes is not None else len(payload or b"")
        self._broadcasts.append(
            BroadcastRecord(
                message_id=message_id, size_bytes=size, submit_time=self.sim.now
            )
        )
        self._broadcast_origin[message_id] = node_id
        return message_id

    def schedule_crash(self, node_id: ProcessId, time: SimTime):
        """Crash ``node_id`` at simulated ``time``; returns the event."""
        return self.injector.schedule_crash(node_id, time)

    def scheduled_crashes(self):
        """Pending (not yet executed) crash events, in firing order."""
        return self.injector.scheduled()

    def _on_crash(self, node_id: ProcessId) -> None:
        self._crashed[node_id] = self.sim.now
        node = self.nodes[node_id]
        node.protocol.stop()
        # A crashed machine takes its per-ring NICs with it.
        for alias_id in node.ring_alias_ids:
            self.network.crash(alias_id)
        stop = getattr(node.detector, "stop", None)
        if stop is not None:
            stop()

    def run(self, until: Optional[SimTime] = None) -> SimTime:
        """Run the simulation (to quiescence, or up to ``until``)."""
        return self.sim.run(until=until)

    def run_until(
        self,
        predicate: Callable[[], bool],
        step_s: float = 50e-3,
        max_time_s: float = 600.0,
    ) -> SimTime:
        """Advance in ``step_s`` chunks until ``predicate()`` holds.

        Needed for protocols with perpetual timers (tokens, heartbeats)
        whose event heaps never drain.  Raises if ``max_time_s`` of
        simulated time passes without the predicate holding — a liveness
        failure worth surfacing loudly.
        """
        while not predicate():
            if self.sim.now >= max_time_s:
                raise SimulationError(
                    f"predicate still false after {self.sim.now:.3f}s simulated"
                )
            self.sim.run(until=self.sim.now + step_s)
        return self.sim.now

    def all_correct_delivered(self, expected: int) -> bool:
        """True when every non-crashed node has ``expected`` app deliveries."""
        return all(
            len(node.app_deliveries) >= expected
            for node_id, node in self.nodes.items()
            if node_id not in self._crashed
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self) -> ExperimentResult:
        """Freeze the run into an :class:`ExperimentResult`."""
        return ExperimentResult(
            config=self.config,
            duration_s=self.sim.now,
            delivery_logs={
                node_id: node.delivery_log for node_id, node in self.nodes.items()
            },
            app_deliveries={
                node_id: list(node.app_deliveries)
                for node_id, node in self.nodes.items()
            },
            broadcasts=list(self._broadcasts),
            broadcast_origin=dict(self._broadcast_origin),
            crashed=dict(self._crashed),
            nic_stats={
                node_id: self.network.stats_of(node_id) for node_id in self.members
            },
            trace=self.trace,
            spans=self.spans,
        )


def build_cluster(config: ClusterConfig) -> Cluster:
    """Build (but do not start) a cluster from ``config``."""
    return Cluster(config)
