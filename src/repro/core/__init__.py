"""Core total-order-broadcast abstractions and the FSR protocol.

``repro.core.api`` defines the interface every protocol in this
repository implements (FSR and the five baseline classes); the
``repro.core.fsr`` subpackage is the paper's contribution.
"""

from repro.core.api import BroadcastListener, DeliveryLog, TotalOrderBroadcast
from repro.core.batching import BatchingBroadcast, BatchingConfig
from repro.core.fsr import FSRConfig, FSRProcess

__all__ = [
    "BroadcastListener",
    "DeliveryLog",
    "TotalOrderBroadcast",
    "BatchingBroadcast",
    "BatchingConfig",
    "FSRConfig",
    "FSRProcess",
]
