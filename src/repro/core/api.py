"""The protocol-independent total order broadcast interface.

Every protocol in this repository — FSR and the five baseline classes —
implements :class:`TotalOrderBroadcast`.  The cluster harness, the
workload drivers, the metrics collector, and the correctness checkers
are written against this interface only, so every experiment can swap
protocols with one configuration change.

Uniform total order broadcast properties (paper Section 1):

* **Validity** — if a correct process TO-broadcasts ``m``, it eventually
  TO-delivers ``m``.
* **Uniform agreement** — if *any* process (correct or not) TO-delivers
  ``m``, all correct processes eventually TO-deliver ``m``.
* **Uniform integrity** — every process TO-delivers ``m`` at most once,
  and only if ``m`` was TO-broadcast.
* **Uniform total order** — if some process TO-delivers ``m`` before
  ``m'``, no process TO-delivers ``m'`` before ``m``.

:mod:`repro.checker` verifies all four over recorded delivery logs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.types import Delivery, MessageId, ProcessId, SequenceNumber, SimTime

#: Application upcall: (origin, message_id, payload, size_bytes).
DeliverCallback = Callable[[ProcessId, MessageId, Any, int], None]


class BroadcastListener:
    """Receiver of TO-deliver upcalls from one protocol instance.

    Subclass or pass callbacks; the default implementation just invokes
    the callable given at construction.
    """

    def __init__(self, on_deliver: Optional[DeliverCallback] = None) -> None:
        self._on_deliver = on_deliver

    def deliver(
        self, origin: ProcessId, message_id: MessageId, payload: Any, size_bytes: int
    ) -> None:
        """Called exactly once per TO-delivered message, in total order."""
        if self._on_deliver is not None:
            self._on_deliver(origin, message_id, payload, size_bytes)


class TotalOrderBroadcast(ABC):
    """Abstract uniform total order broadcast endpoint at one process."""

    @abstractmethod
    def broadcast(self, payload: Any, size_bytes: Optional[int] = None) -> MessageId:
        """TO-broadcast ``payload``; returns the message's stable identity.

        The call is asynchronous: delivery happens later via the
        listener, at this and every other correct process, in the same
        total order everywhere.
        """

    @abstractmethod
    def set_listener(self, listener: BroadcastListener) -> None:
        """Register the delivery upcall target (exactly one)."""

    @abstractmethod
    def start(self) -> None:
        """Activate the protocol instance (timers, initial view)."""

    @abstractmethod
    def stop(self) -> None:
        """Deactivate (process crashed or simulation tear-down)."""


@dataclass
class DeliveryLog:
    """Complete record of one process's TO-deliveries.

    The harness attaches one log per process; checkers and metrics read
    them after the run.
    """

    process: ProcessId
    deliveries: List[Delivery] = field(default_factory=list)

    def record(
        self,
        message_id: MessageId,
        sequence: SequenceNumber,
        time: SimTime,
        size_bytes: int = 0,
    ) -> None:
        self.deliveries.append(
            Delivery(
                process=self.process,
                message_id=message_id,
                sequence=sequence,
                time=time,
                size_bytes=size_bytes,
            )
        )

    def message_ids(self) -> List[MessageId]:
        """Delivered message ids, in delivery order."""
        return [d.message_id for d in self.deliveries]

    def __len__(self) -> int:
        return len(self.deliveries)
