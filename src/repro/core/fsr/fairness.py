"""The forward-list fairness scheduler (paper §4.2.3, Figure 5).

Every FSR process sends to a single successor, so all its outgoing ring
traffic funnels through one scheduler.  The scheduler holds:

* an **incoming buffer** of foreign data messages awaiting forwarding,
* an **own queue** of this process's messages awaiting injection, and
* the **forward list**: origins this process has forwarded for since it
  last injected one of its own messages.

Scheduling rule (straight from the paper): when the process wants to
inject its own message, it must first forward any buffered message from
an origin *not yet* in the forward list; only when every buffered
origin has been served since its last injection may it send its own
message, which resets the forward list.  When there is nothing of its
own to send, the scheduler is plain FIFO.

This is what makes FSR fair without throughput loss: a process never
burns a send slot on token-passing (as privilege protocols do), it just
interleaves its messages with the streams it relays.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Set, Union

from repro.core.fsr.messages import FwdData, SeqData, data_origin
from repro.types import ProcessId

DataMessage = Union[FwdData, SeqData]


class FairSendScheduler:
    """Decides which data message goes to the successor next.

    With ``fairness=False`` the scheduler reproduces the naive policy
    (own messages always first); the fairness ablation benchmark shows
    this starves senders far from the leader.
    """

    def __init__(self, fairness: bool = True) -> None:
        self.fairness = fairness
        self._incoming: Deque[DataMessage] = deque()
        self._own: Deque[DataMessage] = deque()
        self._forward_list: Set[ProcessId] = set()

    # ------------------------------------------------------------------
    # Enqueueing
    # ------------------------------------------------------------------
    def enqueue_forward(self, message: DataMessage) -> None:
        """Buffer a foreign data message for forwarding."""
        self._incoming.append(message)

    def enqueue_own(self, message: DataMessage) -> None:
        """Queue one of this process's own messages for injection."""
        self._own.append(message)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def pop_next(self) -> Optional[DataMessage]:
        """Return the next data message to transmit, or ``None``.

        Implements the paper's rule; see the module docstring.
        """
        if not self._own:
            if not self._incoming:
                return None
            message = self._incoming.popleft()
            origin = data_origin(message)
            if origin is not None:
                self._forward_list.add(origin)
            return message

        if not self.fairness:
            return self._pop_own()

        unserved_index = self._first_unserved_index()
        if unserved_index is None:
            return self._pop_own()
        message = self._incoming[unserved_index]
        del self._incoming[unserved_index]
        origin = data_origin(message)
        if origin is not None:
            self._forward_list.add(origin)
        return message

    def _pop_own(self) -> DataMessage:
        message = self._own.popleft()
        # Injecting an own message opens a new fairness window.
        self._forward_list.clear()
        return message

    def _first_unserved_index(self) -> Optional[int]:
        """Index of the first buffered message from an unserved origin."""
        for index, message in enumerate(self._incoming):
            origin = data_origin(message)
            if origin is not None and origin not in self._forward_list:
                return index
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Total data messages waiting (foreign + own)."""
        return len(self._incoming) + len(self._own)

    @property
    def pending_own(self) -> int:
        return len(self._own)

    @property
    def pending_forward(self) -> int:
        return len(self._incoming)

    def forward_list(self) -> Set[ProcessId]:
        """Origins served since the last own injection (copy)."""
        return set(self._forward_list)

    def drain(self) -> List[DataMessage]:
        """Remove and return everything queued (view change tear-down)."""
        drained = list(self._incoming) + list(self._own)
        self._incoming.clear()
        self._own.clear()
        self._forward_list.clear()
        return drained
