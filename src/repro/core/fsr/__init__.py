"""FSR — the paper's fixed-sequencer-on-a-ring protocol.

Module map (one mechanism per module, per DESIGN.md §5):

* :mod:`~repro.core.fsr.config` — protocol knobs (``t``, segmentation,
  piggy-backing, fairness).
* :mod:`~repro.core.fsr.messages` — FWD / SEQ / ACK wire formats and
  the piggy-back container.
* :mod:`~repro.core.fsr.ring` — ring arithmetic and process roles
  (leader, backups, standard) for a given view.
* :mod:`~repro.core.fsr.holdback` — contiguous-sequence delivery queue.
* :mod:`~repro.core.fsr.fairness` — the forward-list send scheduler
  (paper §4.2.3, Figure 5).
* :mod:`~repro.core.fsr.segmentation` — uniform-size segmenting and
  reassembly of large payloads (paper §4.1).
* :mod:`~repro.core.fsr.recovery` — flush-state collection and merge
  for view changes (paper §4.2.1).
* :mod:`~repro.core.fsr.process` — the protocol automaton tying it all
  together.
"""

from repro.core.fsr.config import FSRConfig
from repro.core.fsr.process import FSRProcess
from repro.core.fsr.ring import Ring, Role

__all__ = ["FSRConfig", "FSRProcess", "Ring", "Role"]
