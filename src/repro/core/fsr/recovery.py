"""View-change recovery: flush-state collection and merge (paper §4.2.1).

The paper prescribes, upon installing view ``v_{r+1}``:

* every process re-TO-broadcasts its messages not yet TO-delivered, and
* the new leader resends all ``(m, seq)`` pairs not yet delivered by
  everyone, plus an ack of the latest delivered message.

This implementation realises the same outcome through the membership
layer's state exchange: each member's flush state carries its retained
``(m, seq)`` records and its delivery progress; the merged states are
distributed with the view install, so every member can locally deliver
everything that *anyone* might already have delivered — which is
exactly the uniform-agreement obligation — before normal operation
resumes.  Re-broadcasting of unsequenced messages is then done by their
origins through the ordinary protocol path.

Safety argument (tested by crash-schedule property tests):

* any message TO-delivered by *any* process (even one that crashed) was
  *stable* — stored with its sequence number by the leader and all
  ``t`` backups — so with at most ``t`` crashes at least one survivor
  retains it and contributes it to the merge;
* retention is garbage-collected only below the stability watermark,
  which only advances once every process holds the record, so the merge
  always covers the gap between the slowest and fastest survivor;
* sequence numbers beyond the first gap in the merged record set were
  never deliverable anywhere (delivery is contiguous), so those
  messages are safely demoted to unsequenced and re-broadcast by their
  origins under fresh sequence numbers, keeping their original message
  identity (integrity: duplicates are filtered by identity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.types import MessageId, ProcessId, SequenceNumber

#: Wire accounting: bytes per retained record beyond its payload.
RECORD_OVERHEAD_BYTES = 32
#: Fixed flush-state framing.
STATE_HEADER_BYTES = 24


@dataclass
class RetainedMessage:
    """One sequenced message retained for recovery."""

    message_id: MessageId
    origin: ProcessId
    sequence: SequenceNumber
    payload: object
    payload_size: int
    segment: Optional[Tuple[MessageId, int, int]] = None


@dataclass
class FSRFlushState:
    """What one FSR process contributes to a view change."""

    #: Highest sequence number this process has TO-delivered.
    last_delivered: SequenceNumber
    #: This process's stability watermark at flush time.
    watermark: SequenceNumber
    #: Every sequenced record this process still retains, by sequence.
    records: Dict[SequenceNumber, RetainedMessage] = field(default_factory=dict)
    #: True for a process joining the group that never installed a view:
    #: its (empty) delivery progress must not drag the merge's
    #: ``min_last_delivered`` down to zero — a joiner has no history and
    #: starts delivering at the recovery point instead.
    fresh: bool = False

    def size_bytes(self) -> int:
        payload_bytes = sum(r.payload_size for r in self.records.values())
        return (
            STATE_HEADER_BYTES
            + payload_bytes
            + RECORD_OVERHEAD_BYTES * len(self.records)
        )


@dataclass
class MergedRecovery:
    """Outcome of merging all members' flush states."""

    #: Union of surviving sequenced records (consistent by construction).
    records: Dict[SequenceNumber, RetainedMessage]
    #: First sequence number of the new view: every member delivers the
    #: merged records up to (excluding) this, then normal operation
    #: resumes here.
    next_sequence: SequenceNumber
    #: Message ids whose old-view sequence numbers were beyond a gap and
    #: therefore voided; their origins re-broadcast them.
    orphaned: Set[MessageId]
    #: Lowest delivery progress among survivors (diagnostics).
    min_last_delivered: SequenceNumber
    #: Highest delivery progress among survivors.
    max_last_delivered: SequenceNumber


def merge_flush_states(
    states: Dict[ProcessId, FSRFlushState]
) -> MergedRecovery:
    """Merge the members' flush states into one recovery plan.

    Raises :class:`~repro.errors.ProtocolError` if the states are
    mutually inconsistent (two different messages under one sequence
    number) or violate the uniformity retention invariant (a sequence
    number some survivor has delivered is retained by nobody).
    """
    if not states:
        raise ProtocolError("cannot merge an empty set of flush states")

    merged: Dict[SequenceNumber, RetainedMessage] = {}
    for pid, state in states.items():
        for seq, record in state.records.items():
            if record.sequence != seq:
                raise ProtocolError(
                    f"process {pid} retained {record.message_id} under "
                    f"sequence {seq} but the record says {record.sequence}"
                )
            existing = merged.get(seq)
            if existing is None:
                merged[seq] = record
            elif existing.message_id != record.message_id:
                raise ProtocolError(
                    f"sequence {seq} maps to {existing.message_id} and "
                    f"{record.message_id} in different flush states"
                )

    seasoned = [state for state in states.values() if not state.fresh]
    if not seasoned:
        # All members are joiners (fresh group bootstrap): no history.
        return MergedRecovery(
            records={},
            next_sequence=1,
            orphaned=set(),
            min_last_delivered=0,
            max_last_delivered=0,
        )
    min_last = min(state.last_delivered for state in seasoned)
    max_last = max(state.last_delivered for state in seasoned)

    # Uniformity check: everything someone delivered but someone else
    # has not must be recoverable from the merge.
    for seq in range(min_last + 1, max_last + 1):
        if seq not in merged:
            raise ProtocolError(
                f"unrecoverable sequence {seq}: delivered by a survivor "
                f"(max_last={max_last}) but retained by nobody "
                f"(min_last={min_last})"
            )

    # Extend delivery past max_last while the merged records stay
    # contiguous; the first gap voids everything after it.
    next_sequence = max_last + 1
    while next_sequence in merged:
        next_sequence += 1
    orphaned = {
        record.message_id
        for seq, record in merged.items()
        if seq >= next_sequence
    }
    deliverable = {
        seq: record for seq, record in merged.items() if seq < next_sequence
    }
    return MergedRecovery(
        records=deliverable,
        next_sequence=next_sequence,
        orphaned=orphaned,
        min_last_delivered=min_last,
        max_last_delivered=max_last,
    )


def build_install_payloads(states, receivers):
    """Coordinator-side merge + per-receiver pruning.

    ``states`` maps member id to the :class:`~repro.vsc.membership.FlushState`
    wrapper whose payload is an :class:`FSRFlushState`; the result maps
    each receiver to a wrapper whose payload is a :class:`MergedRecovery`
    pruned to the sequence range above that receiver's own progress.
    Shared by FSR and by the fault-tolerant fixed sequencer — both
    protocols recover from the same (sequence -> record) state shape.
    """
    from repro.vsc.membership import FlushState  # local: avoid cycles

    raw = {pid: wrapper.payload for pid, wrapper in states.items()}
    merged = merge_flush_states(raw)
    payloads = {}
    for receiver in receivers:
        contributed = raw.get(receiver)
        if contributed is None or contributed.fresh:
            floor = merged.min_last_delivered
        else:
            floor = max(contributed.last_delivered, merged.min_last_delivered)
        records = {
            seq: record
            for seq, record in merged.records.items()
            if seq > floor
        }
        pruned = MergedRecovery(
            records=records,
            next_sequence=merged.next_sequence,
            orphaned=set(merged.orphaned),
            min_last_delivered=merged.min_last_delivered,
            max_last_delivered=merged.max_last_delivered,
        )
        size = (
            sum(record.payload_size for record in records.values())
            + RECORD_OVERHEAD_BYTES * len(records)
            + STATE_HEADER_BYTES
        )
        payloads[receiver] = FlushState(payload=pruned, size_bytes=size)
    return payloads
