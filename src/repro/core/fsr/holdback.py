"""Hold-back queue: force deliveries into contiguous sequence order.

On a quiet ring FIFO links already deliver sequenced messages in order,
but the fairness scheduler may reorder forwarded traffic across origins
(paper Figure 5) and view-change recovery re-injects older sequence
numbers; the hold-back queue makes delivery order independent of both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ProtocolError
from repro.types import MessageId, SequenceNumber


@dataclass
class HoldbackEntry:
    """One message ready for delivery, waiting for its turn."""

    sequence: SequenceNumber
    message_id: MessageId
    payload: object
    payload_size: int


class HoldbackQueue:
    """Buffers deliverable messages and releases a contiguous prefix.

    Example::

        queue = HoldbackQueue(on_deliver=callback)
        queue.mark_deliverable(entry_seq2)   # held
        queue.mark_deliverable(entry_seq1)   # delivers 1 then 2
    """

    def __init__(
        self,
        on_deliver: Callable[[HoldbackEntry], None],
        first_sequence: SequenceNumber = 1,
    ) -> None:
        self._on_deliver = on_deliver
        self._next_sequence = first_sequence
        self._held: Dict[SequenceNumber, HoldbackEntry] = {}
        self._delivered_count = 0

    @property
    def next_sequence(self) -> SequenceNumber:
        """The sequence number the queue will release next."""
        return self._next_sequence

    @property
    def last_delivered(self) -> SequenceNumber:
        """Highest sequence released so far (``next_sequence - 1``)."""
        return self._next_sequence - 1

    @property
    def delivered_count(self) -> int:
        return self._delivered_count

    @property
    def held_count(self) -> int:
        """Messages deliverable but blocked on a sequence gap."""
        return len(self._held)

    def held_sequences(self) -> List[SequenceNumber]:
        return sorted(self._held)

    def mark_deliverable(self, entry: HoldbackEntry) -> int:
        """Declare ``entry`` safe to deliver; flush the contiguous prefix.

        Returns how many messages were released by this call.  Entries
        below the watermark are duplicates and ignored; conflicting
        duplicates (same sequence, different message) indicate a
        protocol bug and raise :class:`~repro.errors.ProtocolError`.
        """
        seq = entry.sequence
        if seq < self._next_sequence:
            return 0  # already delivered: duplicate from recovery
        existing = self._held.get(seq)
        if existing is not None:
            if existing.message_id != entry.message_id:
                raise ProtocolError(
                    f"sequence {seq} assigned to both {existing.message_id} "
                    f"and {entry.message_id}"
                )
            return 0
        self._held[seq] = entry
        released = 0
        while self._next_sequence in self._held:
            ready = self._held.pop(self._next_sequence)
            self._next_sequence += 1
            self._delivered_count += 1
            released += 1
            self._on_deliver(ready)
        return released

    def clear_held(self) -> int:
        """Discard all blocked entries (view-change recovery).

        Old-view sequence assignments beyond the recovery point are
        void — the new leader will reassign those numbers — so keeping
        the entries would produce false sequence conflicts.  Returns
        how many entries were dropped.
        """
        dropped = len(self._held)
        self._held.clear()
        return dropped

    def fast_forward(self, next_sequence: SequenceNumber) -> None:
        """Jump the delivery cursor (view-change recovery only).

        Entries the cursor skips over are discarded — recovery has
        already delivered or re-issued them.
        """
        if next_sequence < self._next_sequence:
            raise ProtocolError(
                f"cannot rewind hold-back queue from {self._next_sequence} "
                f"to {next_sequence}"
            )
        self._next_sequence = next_sequence
        self._held = {s: e for s, e in self._held.items() if s >= next_sequence}
        while self._next_sequence in self._held:
            ready = self._held.pop(self._next_sequence)
            self._next_sequence += 1
            self._delivered_count += 1
            self._on_deliver(ready)
