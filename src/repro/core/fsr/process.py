"""The FSR protocol automaton (paper Section 4).

One :class:`FSRProcess` runs at each cluster node.  It consumes:

* data messages from its ring predecessor (via a network port),
* view events and flush callbacks from the membership layer,
* TO-broadcast requests from the application,

and produces sends to its single ring successor plus TO-deliver upcalls.

The message flow follows the paper's Figure 4; the unified rule used
here (derived case-by-case in DESIGN.md §5) is:

* an **un-sequenced payload** (``FwdData``) is forwarded clockwise until
  it reaches the leader, who assigns the next sequence number;
* a **sequenced payload** (``SeqData``) is forwarded clockwise and
  becomes *stable* when it transits the last backup ``p_t``; it stops at
  the origin's predecessor, which converts it into an ack;
* an **ack** carries the sequence number onward; an unstable ack becomes
  stable at ``p_t``; a stable ack stops at ``p_t``'s predecessor;
* a process marks a message deliverable the first time it observes it
  *stable* (stable ``SeqData``, stabilising at ``p_t``, or stable ack),
  and actual delivery is forced into contiguous sequence order by the
  hold-back queue.

Stability is what makes delivery *uniform*: a stable message is stored
by the leader and all ``t`` backups, so it survives any ``t`` crashes
and view-change recovery (:mod:`repro.core.fsr.recovery`) will finish
delivering it everywhere.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.core.api import BroadcastListener, TotalOrderBroadcast
from repro.core.fsr.config import FSRConfig
from repro.core.fsr.fairness import FairSendScheduler
from repro.core.fsr.holdback import HoldbackEntry, HoldbackQueue
from repro.core.fsr.messages import (
    AckBatch,
    AckMsg,
    FwdData,
    SeqData,
)
from repro.core.fsr.recovery import (
    FSRFlushState,
    MergedRecovery,
    RetainedMessage,
    build_install_payloads,
    merge_flush_states,
)
from repro.core.fsr.ring import Ring
from repro.core.fsr.segmentation import Reassembler, Segment, split_payload
from repro.errors import ProtocolError
from repro.net.dispatch import Port
from repro.obs.span import SpanLog
from repro.sim.trace import TraceLog
from repro.types import (
    Delivery,
    MessageId,
    ProcessId,
    Scheduler,
    SequenceNumber,
    View,
)
from repro.vsc.membership import FlushState, GroupMembership

#: Callback fired on every protocol-level (segment) delivery.
ProtocolDeliverCallback = Callable[[Delivery], None]


class FSRProcess(TotalOrderBroadcast):
    """FSR endpoint at one process.

    The cluster harness wires instances together; unit tests drive the
    automaton directly by feeding messages into ``on_message``.
    """

    def __init__(
        self,
        sim: Scheduler,
        port: Port,
        membership: GroupMembership,
        config: FSRConfig,
        trace: Optional[TraceLog] = None,
        tx_gate: Optional[Callable[[], bool]] = None,
        cpu_submit: Optional[Callable[[int, Callable[[], None]], Any]] = None,
        spans: Optional[SpanLog] = None,
        id_factory: Optional[Callable[[], MessageId]] = None,
    ) -> None:
        self.sim = sim
        self.port = port
        self.membership = membership
        self.config = config
        self.me: ProcessId = port.node_id
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        #: Per-message lifecycle spans (repro.obs); disabled by default,
        #: and every emission site guards on ``spans.enabled`` before
        #: building arguments so the disabled cost is one attribute
        #: check and zero allocations.
        self.spans = spans if spans is not None else SpanLog(enabled=False)
        #: Returns True when the NIC TX path can take another message;
        #: the harness wires this to the endpoint, unit tests leave the
        #: default (always ready).
        self._tx_gate = tx_gate if tx_gate is not None else (lambda: True)
        #: Charges origin-side marshalling CPU before a message enters
        #: the ring; ``None`` (unit tests) runs the callback inline.
        self._cpu_submit = cpu_submit
        #: Source of fresh message ids.  The multi-ring fan-out shares
        #: one per-node counter across its S inner rings so app-level
        #: ids stay unique per origin regardless of which ring carried
        #: the message; stand-alone instances use a private counter.
        self._id_factory = id_factory

        self._listener = BroadcastListener()
        self._protocol_deliver_cb: Optional[ProtocolDeliverCallback] = None

        self._view: Optional[View] = None
        self._ring: Optional[Ring] = None
        self._started = False
        self._stopped = False
        self._blocked = False
        #: True once this process has installed at least one view; a
        #: joiner installing its first view has no delivery history.
        self._installed_once = False

        # --- sequencing and delivery state -----------------------------
        self._next_seq: SequenceNumber = 1  # used only while leader
        self._holdback = HoldbackQueue(self._on_holdback_release, first_sequence=1)
        self._records: Dict[SequenceNumber, RetainedMessage] = {}
        self._seq_of: Dict[MessageId, SequenceNumber] = {}
        #: Payloads learned before their sequence number (FwdData arc).
        self._known_payloads: Dict[
            MessageId, Tuple[ProcessId, Any, int, Optional[Tuple[MessageId, int, int]]]
        ] = {}
        self._delivered_ids: Set[MessageId] = set()

        # --- stability watermark ---------------------------------------
        self._watermark: SequenceNumber = 0
        self._consumed_acks: Set[SequenceNumber] = set()
        self._consumed_prefix: SequenceNumber = 0
        self._gc_cursor: SequenceNumber = 0

        # --- outgoing traffic ------------------------------------------
        self._scheduler = FairSendScheduler(fairness=config.fairness)
        self._ack_queue: Deque[AckMsg] = deque()

        # --- application state -----------------------------------------
        self._local_counter = 0
        #: Own protocol-level messages not yet delivered, for
        #: re-broadcast after a view change (insertion ordered).
        self._pending_own: "OrderedDict[MessageId, Segment]" = OrderedDict()
        self._reassembler = Reassembler()

        #: Recovered-but-uncommitted deliveries: entries applied from a
        #: view install, released only at the membership layer's commit
        #: (all members stored the merge, so delivering is uniform even
        #: under ``t`` immediate further crashes).  The view id guards
        #: against a superseding install racing the commit.
        self._recovery_pending: List[HoldbackEntry] = []
        self._recovery_view: Optional[int] = None
        #: Highest recovered sequence not yet commit-confirmed; while
        #: any is outstanding this process ships its records in flush
        #: states even from a non-holder ring position, because it may
        #: be the only survivor retaining them.
        self._recovery_floor: SequenceNumber = 0

        #: Messages received for a view not yet installed locally.
        self._future_buffer: List[Tuple[int, ProcessId, Any]] = []
        #: Outstanding marshalling jobs (cancelled on view change so a
        #: queued send backlog does not outlive the view it targeted).
        self._marshal_jobs: Dict[MessageId, Any] = {}

        # --- statistics --------------------------------------------------
        self.stats_broadcasts = 0
        self.stats_deliveries = 0
        self.stats_acks_piggybacked = 0
        self.stats_acks_standalone = 0

        port.on_receive(self.on_message)
        membership.set_client(self)

    # ==================================================================
    # TotalOrderBroadcast API
    # ==================================================================
    def set_listener(self, listener: BroadcastListener) -> None:
        self._listener = listener

    def on_protocol_deliver(self, callback: ProtocolDeliverCallback) -> None:
        """Observe protocol-level (segment) deliveries; used by the
        harness to feed checkers and metrics."""
        self._protocol_deliver_cb = callback

    def start(self) -> None:
        """Join the initial view and begin operating."""
        if self._started:
            return
        self._started = True
        self.membership.start()

    def stop(self) -> None:
        """Halt the automaton (crash or tear-down)."""
        self._stopped = True
        self.membership.stop()

    def broadcast(self, payload: Any, size_bytes: Optional[int] = None) -> MessageId:
        """TO-broadcast ``payload``; see :class:`TotalOrderBroadcast`.

        Payloads larger than ``config.segment_size`` are segmented;
        the returned id identifies the application-level message (its
        first segment).
        """
        if self._stopped:
            raise ProtocolError(f"process {self.me} is stopped")
        if not self._started:
            raise ProtocolError(f"process {self.me} has not been started")
        if size_bytes is None:
            if isinstance(payload, (bytes, bytearray)):
                size_bytes = len(payload)
            else:
                raise ProtocolError(
                    "size_bytes is required for non-bytes payloads"
                )
        self.stats_broadcasts += 1
        app_id = self._next_message_id()
        if self.spans.enabled:
            self.spans.emit(
                self.sim.now, self.me, "broadcast", app_id.origin, app_id.local_seq
            )
        segments = split_payload(app_id, payload, size_bytes, self.config.segment_size)
        for segment in segments:
            seg_id = app_id if segment.count == 1 else self._next_message_id()
            seg_meta = (
                None
                if segment.count == 1
                else (app_id, segment.index, segment.count)
            )
            stored = Segment(
                app_message_id=app_id,
                index=segment.index,
                count=segment.count,
                payload=segment.payload,
                size_bytes=segment.size_bytes,
            )
            self._pending_own[seg_id] = stored
            self._submit_after_cpu(seg_id, stored, seg_meta)
        return app_id

    def _submit_after_cpu(
        self,
        seg_id: MessageId,
        stored: Segment,
        seg_meta: Optional[Tuple[MessageId, int, int]],
    ) -> None:
        """Charge origin-side marshalling CPU, then inject the segment.

        The charge is what every other node pays to process the message
        once (the receive path charges it at each hop); without it a
        2-process ring would exceed the per-node middleware capacity the
        paper's flat ~79 Mb/s reflects.
        """
        view_at_submit = self._view.view_id if self._view is not None else -1

        def inject() -> None:
            self._marshal_jobs.pop(seg_id, None)
            if self._stopped or self._blocked:
                return  # the view-change re-broadcast path covers it
            current = self._view.view_id if self._view is not None else -1
            if current != view_at_submit:
                return  # superseded; re-broadcast already handled it
            if seg_id in self._delivered_ids or seg_id not in self._pending_own:
                return
            self._inject_own(seg_id, stored, seg_meta)
            self._pump()

        if self._cpu_submit is None:
            inject()
        else:
            handle = self._cpu_submit(stored.size_bytes, inject)
            if handle is not None:
                self._marshal_jobs[seg_id] = handle

    def _next_message_id(self) -> MessageId:
        if self._id_factory is not None:
            return self._id_factory()
        self._local_counter += 1
        return MessageId(origin=self.me, local_seq=self._local_counter)

    # ==================================================================
    # VSCClient API (called by the membership layer)
    # ==================================================================
    def on_block(self) -> None:
        """Flush started: stop sending and drop queued outgoing work.

        Cancelled marshalling jobs are re-issued through the pending-own
        re-broadcast after the view installs.
        """
        self._blocked = True
        for handle in self._marshal_jobs.values():
            handle.cancel()
        self._marshal_jobs.clear()

    def collect_flush_state(self) -> FlushState:
        """Contribute recovery state to a flush.

        Only the (old view's) leader and backups ship their retained
        records: stability guarantees they jointly hold every message
        any process could have delivered, and with at most ``t``
        failures at least one of them survives — standard members'
        copies are redundant and would multiply the state-exchange
        cost by ``n``.
        """
        was_holder = (
            self._ring is not None
            and self._ring.position_of(self.me) <= self._ring.t
        )
        # Uncommitted recovery records must ship regardless of ring
        # position: after a coordinator crash mid-install this process
        # may be the only survivor retaining them, and the next merge's
        # uniformity check depends on seeing them.
        recovery_outstanding = self._recovery_floor > self._gc_cursor
        state = FSRFlushState(
            last_delivered=self._holdback.last_delivered,
            watermark=self._watermark,
            records=(
                dict(self._records)
                if was_holder or recovery_outstanding
                else {}
            ),
            fresh=not self._installed_once,
        )
        return FlushState(payload=state, size_bytes=state.size_bytes())

    def merge_states(
        self,
        states: Dict[ProcessId, FlushState],
        receivers: Tuple[ProcessId, ...],
    ) -> Dict[ProcessId, FlushState]:
        """Coordinator-side merge: one pruned install per receiver.

        Receiver ``r`` only needs the merged records above its own
        delivery progress, so the install traffic is proportional to
        how far each member lags, not to the total retained state.
        """
        return build_install_payloads(states, receivers)

    def on_view(self, view: View, state: Optional[FlushState]) -> None:
        """Install a view; reconcile and resume (paper §4.2.1)."""
        self._view = view
        self._ring = Ring.from_view(view, self.config.t)
        self.trace.emit(
            self.sim.now, "fsr", "view",
            me=self.me, view_id=view.view_id, members=view.members,
            position=self._ring.position_of(self.me),
        )

        if state is not None:
            self._apply_recovery(state.payload)

        self._blocked = False
        self._installed_once = True
        self._rebroadcast_pending()
        self._drain_future_buffer()
        self._pump()

    def _apply_recovery(self, merged: MergedRecovery) -> None:
        # Old-view deliverability evidence beyond the merge is void;
        # without this, stale held entries would collide with the new
        # leader's reuse of those sequence numbers.
        self._holdback.clear_held()
        if not self._installed_once:
            # Joining process: no history to deliver; start at the
            # oldest point the merged records can serve.
            self._holdback.fast_forward(merged.min_last_delivered + 1)
        # Rebuild retention: own records up to the delivery cursor stay
        # (we delivered them, so they match the global assignment);
        # above it the merged records are authoritative — our copies
        # there may be void old-view assignments that a newer view
        # reassigned to different messages.
        records = {
            seq: record
            for seq, record in self._records.items()
            if seq <= self._holdback.last_delivered
        }
        # Stage everything any survivor may already have delivered.
        # Delivery is DEFERRED to the membership layer's view commit:
        # only once every member has stored the merge is delivering
        # uniform under ``t`` further crashes.  (The old eager delivery
        # here was a real uniformity bug: a coordinator that installed,
        # delivered, and crashed before any other member received its
        # install took the only copies of those messages with it.)
        pending: List[HoldbackEntry] = []
        for seq in range(self._holdback.last_delivered + 1, merged.next_sequence):
            record = merged.records.get(seq)
            if record is None:
                raise ProtocolError(
                    f"recovery gap at sequence {seq} (merge promised "
                    f"contiguity up to {merged.next_sequence})"
                )
            records[seq] = record
            pending.append(
                HoldbackEntry(
                    sequence=seq,
                    message_id=record.message_id,
                    payload=record.payload,
                    payload_size=record.payload_size,
                )
            )
        self._records = records
        self._seq_of = {r.message_id: s for s, r in records.items()}
        self._known_payloads.clear()
        self._recovery_pending = pending
        self._recovery_view = self._view.view_id if self._view is not None else None
        self._recovery_floor = merged.next_sequence - 1
        self._next_seq = merged.next_sequence
        # The stability watermark does NOT jump here: the merge is
        # stored only at members that installed so far.  It advances at
        # the view commit, or via the first full-circle stable ack of
        # the new view (a full circle implies every member installed and
        # therefore stored the merge).  Retention — and with it the next
        # flush's uniformity guarantee — survives a coordinator crash
        # mid-install.
        self._consumed_acks.clear()
        self._consumed_prefix = merged.next_sequence - 1
        self._scheduler.drain()
        self._ack_queue.clear()

    def on_view_commit(self, view: View) -> None:
        """Every member stored the view's install: release recovery.

        The deferred recovered deliveries are now backed by a copy at
        every member of the new view, so TO-delivering them is uniform;
        the stability watermark advances over the recovered range,
        re-enabling garbage collection.
        """
        if self._stopped or self._recovery_view != view.view_id:
            return
        pending, self._recovery_pending = self._recovery_pending, []
        self.trace.emit(
            self.sim.now, "fsr", "recovery_commit",
            me=self.me, view_id=view.view_id, released=len(pending),
        )
        for entry in pending:
            self._holdback.mark_deliverable(entry)
        if self._recovery_floor > self._watermark:
            self._watermark = self._recovery_floor
            self._maybe_gc()
        self._pump()

    def _rebroadcast_pending(self) -> None:
        """Re-inject own messages that did not survive the old view."""
        assert self._ring is not None
        for seg_id, segment in list(self._pending_own.items()):
            if seg_id in self._seq_of:
                # Sequenced and retained by the merge: it delivers at
                # the view commit; re-injecting would duplicate it.
                continue
            seg_meta = (
                None
                if segment.count == 1
                else (segment.app_message_id, segment.index, segment.count)
            )
            self.trace.emit(
                self.sim.now, "fsr", "rebroadcast", me=self.me, msg=str(seg_id)
            )
            self._inject_own(seg_id, segment, seg_meta)

    def _drain_future_buffer(self) -> None:
        assert self._view is not None
        ready = [
            (view_id, src, message)
            for view_id, src, message in self._future_buffer
            if view_id == self._view.view_id
        ]
        self._future_buffer = [
            (view_id, src, message)
            for view_id, src, message in self._future_buffer
            if view_id > self._view.view_id
        ]
        for _view_id, src, message in ready:
            self.on_message(src, message)

    # ==================================================================
    # Inbound message handling
    # ==================================================================
    def on_message(self, src: ProcessId, message: Any) -> None:
        """Entry point for all FSR ring traffic."""
        if self._stopped:
            return
        view_id = getattr(message, "view_id", None)
        current = self._view.view_id if self._view is not None else -1
        if view_id is None:
            raise ProtocolError(f"non-FSR message on FSR port: {message!r}")
        if view_id > current:
            self._future_buffer.append((view_id, src, message))
            return
        if view_id < current:
            return  # stale traffic from a superseded view
        if self._blocked:
            # A flush snapshot has been taken: evidence processed now
            # would create deliveries the view-change merge cannot see,
            # breaking uniform total order.  Treat the message as lost
            # in the membership change; recovery re-issues what matters.
            return

        self._observe_watermark(getattr(message, "watermark", -1))
        if isinstance(message, AckBatch):
            for ack in message.acks:
                self._handle_ack(ack)
        elif isinstance(message, FwdData):
            for ack in message.piggybacked:
                self._handle_ack(ack)
            self._handle_fwd(message)
        elif isinstance(message, SeqData):
            for ack in message.piggybacked:
                self._handle_ack(ack)
            self._handle_seq(message)
        else:
            raise ProtocolError(f"unexpected FSR message type: {message!r}")
        self._pump()

    # ------------------------------------------------------------------
    def _handle_fwd(self, msg: FwdData) -> None:
        ring = self._require_ring()
        self._known_payloads[msg.message_id] = (
            msg.origin, msg.payload, msg.payload_size, msg.segment
        )
        if self.me == ring.leader:
            if self._blocked:
                # Sequencing while blocked would create sequence numbers
                # invisible to the flush already under way; the origin
                # re-broadcasts after the view change instead.
                return
            self._sequence(
                msg.message_id, msg.origin, msg.payload, msg.payload_size, msg.segment
            )
        else:
            if self.spans.enabled:
                app = msg.segment[0] if msg.segment is not None else msg.message_id
                self.spans.emit(
                    self.sim.now, self.me, "fwd_hop", app.origin, app.local_seq,
                    hop=ring.position_of(self.me),
                )
            self._scheduler.enqueue_forward(
                FwdData(
                    message_id=msg.message_id,
                    origin=msg.origin,
                    payload=msg.payload,
                    payload_size=msg.payload_size,
                    view_id=msg.view_id,
                    segment=msg.segment,
                )
            )

    def _sequence(
        self,
        message_id: MessageId,
        origin: ProcessId,
        payload: Any,
        payload_size: int,
        segment: Optional[Tuple[MessageId, int, int]],
    ) -> None:
        """Leader only: assign the next sequence number and emit."""
        ring = self._require_ring()
        if message_id in self._seq_of:
            return  # duplicate (can only happen through recovery races)
        sequence = self._next_seq
        self._next_seq += 1
        record = RetainedMessage(
            message_id=message_id,
            origin=origin,
            sequence=sequence,
            payload=payload,
            payload_size=payload_size,
            segment=segment,
        )
        self._records[sequence] = record
        self._seq_of[message_id] = sequence
        stable_at_birth = ring.t == 0
        self.trace.emit(
            self.sim.now, "fsr", "sequence",
            me=self.me, msg=str(message_id), seq=sequence, stable=stable_at_birth,
        )
        if self.spans.enabled:
            app = segment[0] if segment is not None else message_id
            self.spans.emit(
                self.sim.now, self.me, "sequenced", app.origin, app.local_seq,
                sequence=sequence,
            )
            if stable_at_birth:
                # t = 0: the leader's copy alone is the stability set.
                self.spans.emit(
                    self.sim.now, self.me, "stable", app.origin, app.local_seq,
                    sequence=sequence,
                )
        if stable_at_birth:
            self._mark_deliverable(sequence)
        if ring.n == 1:
            self._advance_consumed(sequence)
            return
        successor = ring.successor(self.me)
        if successor == origin:
            # The origin is the leader's direct successor: the payload
            # has nowhere left to go, convert straight into an ack.
            self._queue_ack(
                AckMsg(
                    message_id=message_id,
                    sequence=sequence,
                    stable=stable_at_birth,
                    view_id=self._view_id(),
                )
            )
            return
        out = SeqData(
            message_id=message_id,
            origin=origin,
            payload=payload,
            payload_size=payload_size,
            sequence=sequence,
            stable=stable_at_birth,
            view_id=self._view_id(),
            segment=segment,
        )
        if origin == self.me:
            self._scheduler.enqueue_own(out)
        else:
            self._scheduler.enqueue_forward(out)

    def _handle_seq(self, msg: SeqData) -> None:
        ring = self._require_ring()
        self._learn_sequenced(
            msg.message_id, msg.origin, msg.payload, msg.payload_size,
            msg.sequence, msg.segment,
        )
        my_pos = ring.position_of(self.me)
        stabilising = (not msg.stable) and my_pos == ring.t
        if self.spans.enabled:
            app = msg.segment[0] if msg.segment is not None else msg.message_id
            if 0 < my_pos <= ring.t and not msg.stable:
                # A backup just retained its copy (via _learn_sequenced).
                self.spans.emit(
                    self.sim.now, self.me, "stored", app.origin, app.local_seq,
                    sequence=msg.sequence, hop=my_pos,
                )
            if stabilising:
                # Transited the last backup p_t: now survives any t crashes.
                self.spans.emit(
                    self.sim.now, self.me, "stable", app.origin, app.local_seq,
                    sequence=msg.sequence,
                )
        out_stable = msg.stable or stabilising
        if out_stable:
            self._mark_deliverable(msg.sequence)

        successor = ring.successor(self.me)
        if successor == msg.origin:
            # Payload has completed its circle: emit the ack phase.
            self._queue_ack(
                AckMsg(
                    message_id=msg.message_id,
                    sequence=msg.sequence,
                    stable=out_stable,
                    view_id=self._view_id(),
                )
            )
            return
        self._scheduler.enqueue_forward(
            SeqData(
                message_id=msg.message_id,
                origin=msg.origin,
                payload=msg.payload,
                payload_size=msg.payload_size,
                sequence=msg.sequence,
                stable=out_stable,
                view_id=msg.view_id,
                segment=msg.segment,
            )
        )

    def _handle_ack(self, ack: AckMsg) -> None:
        ring = self._require_ring()
        self._learn_from_ack(ack)
        my_pos = ring.position_of(self.me)
        stabilising = (not ack.stable) and my_pos == ring.t
        if self.spans.enabled and stabilising:
            record = self._records.get(ack.sequence)
            seg = record.segment if record is not None else None
            app = seg[0] if seg is not None else ack.message_id
            self.spans.emit(
                self.sim.now, self.me, "stable", app.origin, app.local_seq,
                sequence=ack.sequence,
            )
        out_stable = ack.stable or stabilising
        if out_stable:
            self._mark_deliverable(ack.sequence)

        self._queue_ack(
            AckMsg(
                message_id=ack.message_id,
                sequence=ack.sequence,
                stable=out_stable,
                view_id=ack.view_id,
            )
        )

    def _learn_sequenced(
        self,
        message_id: MessageId,
        origin: ProcessId,
        payload: Any,
        payload_size: int,
        sequence: SequenceNumber,
        segment: Optional[Tuple[MessageId, int, int]],
    ) -> None:
        known = self._seq_of.get(message_id)
        if known is not None and known != sequence:
            raise ProtocolError(
                f"{message_id} sequenced twice: {known} and {sequence}"
            )
        self._seq_of[message_id] = sequence
        if sequence not in self._records and sequence > self._gc_cursor:
            self._records[sequence] = RetainedMessage(
                message_id=message_id,
                origin=origin,
                sequence=sequence,
                payload=payload,
                payload_size=payload_size,
                segment=segment,
            )

    def _learn_from_ack(self, ack: AckMsg) -> None:
        if ack.sequence in self._records or ack.sequence <= self._gc_cursor:
            return
        if ack.message_id in self._delivered_ids:
            return
        known = self._known_payloads.get(ack.message_id)
        if known is None:
            if ack.message_id in self._pending_own:
                segment = self._pending_own[ack.message_id]
                seg_meta = (
                    None
                    if segment.count == 1
                    else (segment.app_message_id, segment.index, segment.count)
                )
                known = (self.me, segment.payload, segment.size_bytes, seg_meta)
            else:
                raise ProtocolError(
                    f"process {self.me} received ack for {ack.message_id} "
                    "without ever seeing its payload"
                )
        origin, payload, payload_size, segment = known
        self._learn_sequenced(
            ack.message_id, origin, payload, payload_size, ack.sequence, segment
        )

    # ==================================================================
    # Delivery
    # ==================================================================
    def _mark_deliverable(self, sequence: SequenceNumber) -> None:
        record = self._records.get(sequence)
        if record is None:
            # Below the GC cursor means it was already delivered by all.
            if sequence > self._gc_cursor:
                raise ProtocolError(
                    f"process {self.me}: sequence {sequence} deliverable "
                    "but no record retained"
                )
            return
        self._holdback.mark_deliverable(
            HoldbackEntry(
                sequence=sequence,
                message_id=record.message_id,
                payload=record.payload,
                payload_size=record.payload_size,
            )
        )

    def _on_holdback_release(self, entry: HoldbackEntry) -> None:
        record = self._records.get(entry.sequence)
        segment_meta = record.segment if record is not None else None
        origin = record.origin if record is not None else entry.message_id.origin
        if entry.message_id in self._delivered_ids:
            raise ProtocolError(f"{entry.message_id} delivered twice at {self.me}")
        self._delivered_ids.add(entry.message_id)
        self._pending_own.pop(entry.message_id, None)
        self.stats_deliveries += 1
        self.trace.emit(
            self.sim.now, "fsr", "deliver",
            me=self.me, msg=str(entry.message_id), seq=entry.sequence,
        )
        if self._protocol_deliver_cb is not None:
            self._protocol_deliver_cb(
                Delivery(
                    process=self.me,
                    message_id=entry.message_id,
                    sequence=entry.sequence,
                    time=self.sim.now,
                    size_bytes=entry.payload_size,
                )
            )
        # Application-level delivery via reassembly.
        if segment_meta is None:
            app_segment = Segment(
                app_message_id=entry.message_id,
                index=0,
                count=1,
                payload=entry.payload,
                size_bytes=entry.payload_size,
            )
        else:
            app_id, index, count = segment_meta
            app_segment = Segment(
                app_message_id=app_id,
                index=index,
                count=count,
                payload=entry.payload,
                size_bytes=entry.payload_size,
            )
        completed = self._reassembler.on_segment(app_segment)
        if completed is not None:
            if self.spans.enabled:
                app = app_segment.app_message_id
                self.spans.emit(
                    self.sim.now, self.me, "delivered", app.origin, app.local_seq,
                    sequence=entry.sequence,
                )
            payload, size = completed
            self._listener.deliver(origin, app_segment.app_message_id, payload, size)
        self._maybe_gc()

    # ==================================================================
    # Stability watermark + garbage collection
    # ==================================================================
    def _observe_watermark(self, watermark: SequenceNumber) -> None:
        if watermark > self._watermark:
            self._watermark = watermark
            self._maybe_gc()

    def _advance_consumed(self, sequence: SequenceNumber) -> None:
        self._consumed_acks.add(sequence)
        while self._consumed_prefix + 1 in self._consumed_acks:
            self._consumed_prefix += 1
            self._consumed_acks.discard(self._consumed_prefix)
        if self._consumed_prefix > self._watermark:
            self._watermark = self._consumed_prefix
            self._maybe_gc()

    def _maybe_gc(self) -> None:
        limit = min(self._watermark, self._holdback.last_delivered)
        while self._gc_cursor < limit:
            self._gc_cursor += 1
            record = self._records.pop(self._gc_cursor, None)
            if record is not None:
                self._seq_of.pop(record.message_id, None)
                self._known_payloads.pop(record.message_id, None)

    # ==================================================================
    # Outbound traffic
    # ==================================================================
    def _inject_own(
        self,
        seg_id: MessageId,
        segment: Segment,
        seg_meta: Optional[Tuple[MessageId, int, int]],
    ) -> None:
        ring = self._require_ring()
        if ring.n == 1:
            self._sequence(
                seg_id, self.me, segment.payload, segment.size_bytes, seg_meta
            )
            return
        if self.me == ring.leader:
            self._sequence(
                seg_id, self.me, segment.payload, segment.size_bytes, seg_meta
            )
            return
        self._scheduler.enqueue_own(
            FwdData(
                message_id=seg_id,
                origin=self.me,
                payload=segment.payload,
                payload_size=segment.size_bytes,
                view_id=self._view_id(),
                segment=seg_meta,
            )
        )

    def _queue_ack(self, ack: AckMsg) -> None:
        """Queue an ack for the successor — or consume it.

        A stable ack whose next hop would be ``p_t`` has covered the
        whole ring; this process (position ``t - 1``) is the stability
        consumer, whose contiguous consumed prefix drives the GC
        watermark.  Applying the rule here (rather than only on
        receipt) also covers acks *created* at the consumer position,
        e.g. the leader's own broadcasts with ``t = 0``.
        """
        ring = self._require_ring()
        if ack.stable and ring.position_of(ring.successor(self.me)) == ring.t:
            self._advance_consumed(ack.sequence)
            return
        self._ack_queue.append(ack)

    def _pump(self) -> None:
        """Push traffic to the successor while the TX path is ready."""
        if self._stopped or self._blocked or self._ring is None:
            return
        ring = self._ring
        if ring.n == 1:
            self._ack_queue.clear()
            return
        successor = ring.successor(self.me)
        while self._tx_gate():
            if not self.config.piggyback_acks and self._ack_queue:
                # Ablation mode (§4.2.2 disabled): the naive policy sends
                # every ack immediately as its own message, ahead of data.
                ack = self._ack_queue.popleft()
                self.stats_acks_standalone += 1
                self.port.send(
                    successor,
                    AckBatch(
                        acks=[ack], view_id=self._view_id(),
                        watermark=self._watermark,
                    ),
                )
                continue
            message = self._scheduler.pop_next()
            if message is not None:
                message.watermark = self._watermark
                if self.config.piggyback_acks and self._ack_queue:
                    count = min(len(self._ack_queue), self.config.max_piggybacked_acks)
                    message.piggybacked = [
                        self._ack_queue.popleft() for _ in range(count)
                    ]
                    self.stats_acks_piggybacked += len(message.piggybacked)
                self.port.send(successor, message)
                continue
            if self._ack_queue:
                # Idle ring: ship pending acks right away so a lone
                # broadcast is not delayed waiting for a carrier
                # (paper §4.2.2's low-load latency case).
                acks = list(self._ack_queue)
                self._ack_queue.clear()
                self.stats_acks_standalone += len(acks)
                self.port.send(
                    successor,
                    AckBatch(
                        acks=acks, view_id=self._view_id(), watermark=self._watermark
                    ),
                )
                continue
            break

    def on_tx_ready(self) -> None:
        """NIC TX idle notification from the harness."""
        self._pump()

    # ==================================================================
    # Helpers
    # ==================================================================
    def _require_ring(self) -> Ring:
        if self._ring is None:
            raise ProtocolError(f"process {self.me} has no installed view yet")
        return self._ring

    def _view_id(self) -> int:
        if self._view is None:
            raise ProtocolError(f"process {self.me} has no installed view yet")
        return self._view.view_id

    # -- introspection for tests ---------------------------------------
    @property
    def last_delivered_sequence(self) -> SequenceNumber:
        return self._holdback.last_delivered

    @property
    def watermark(self) -> SequenceNumber:
        return self._watermark

    @property
    def retained_count(self) -> int:
        return len(self._records)

    @property
    def ring(self) -> Optional[Ring]:
        return self._ring

    @property
    def view(self) -> Optional[View]:
        return self._view
