"""Ring arithmetic and process roles for one view.

The ring order *is* the view's member order (the membership layer keeps
relative order stable across views, see :mod:`repro.vsc.membership`).
Position 0 is the leader/sequencer; positions ``1..t`` are backups; the
rest are standard processes (paper Figure 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.types import ProcessId, View


class Role(enum.Enum):
    """Role of a process within the FSR ring."""

    LEADER = "leader"
    BACKUP = "backup"
    STANDARD = "standard"


@dataclass(frozen=True)
class Ring:
    """Immutable ring geometry derived from a view and ``t``.

    Example::

        ring = Ring.from_view(view, t=2)
        ring.role_of(ring.leader)       # Role.LEADER
        ring.successor(pid)             # next process clockwise
    """

    members: Tuple[ProcessId, ...]
    t: int

    def __post_init__(self) -> None:
        if not self.members:
            raise ConfigurationError("a ring needs at least one member")
        if not 0 <= self.t < len(self.members):
            raise ConfigurationError(
                f"t={self.t} invalid for ring of {len(self.members)} members"
            )
        if len(set(self.members)) != len(self.members):
            raise ConfigurationError(f"duplicate ring members: {self.members}")

    @classmethod
    def from_view(cls, view: View, t: int) -> "Ring":
        """Build the ring for ``view``, clamping ``t`` to ``n - 1``."""
        n = len(view.members)
        return cls(members=view.members, t=min(t, n - 1))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.members)

    @property
    def leader(self) -> ProcessId:
        return self.members[0]

    @property
    def last_backup(self) -> ProcessId:
        """Process ``p_t`` — the stability point of the protocol.

        With ``t = 0`` this is the leader itself: a sequenced message is
        stable the instant it is sequenced.
        """
        return self.members[self.t]

    def position_of(self, pid: ProcessId) -> int:
        try:
            return self.members.index(pid)
        except ValueError:
            raise ConfigurationError(f"process {pid} is not in the ring") from None

    def at(self, position: int) -> ProcessId:
        return self.members[position % self.n]

    def successor(self, pid: ProcessId) -> ProcessId:
        return self.at(self.position_of(pid) + 1)

    def predecessor(self, pid: ProcessId) -> ProcessId:
        return self.at(self.position_of(pid) - 1)

    def role_of(self, pid: ProcessId) -> Role:
        position = self.position_of(pid)
        if position == 0:
            return Role.LEADER
        if position <= self.t:
            return Role.BACKUP
        return Role.STANDARD

    def contains(self, pid: ProcessId) -> bool:
        return pid in self.members

    # ------------------------------------------------------------------
    # Analytical latency (paper §4.3.1)
    # ------------------------------------------------------------------
    def latency_rounds(self, broadcaster_position: int) -> int:
        """Paper latency formula ``L(i) = 2n + t - i - 1`` in rounds.

        Defined by the paper for a broadcaster at position ``i >= 1``.
        For the leader (``i = 0``) the formula specialises to
        ``n + t - 1``: the sequenced payload makes one circle
        (``n - 1`` hops) and the ack then needs ``t`` more hops to
        reach the last backup-side deliverer ``p_{t-1}``.
        """
        n, t = self.n, self.t
        i = broadcaster_position % n
        if n == 1:
            return 0
        if i == 0:
            return n + t - 1
        return 2 * n + t - i - 1
