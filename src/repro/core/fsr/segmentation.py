"""Segmentation and reassembly of large payloads (paper §4.1).

    "Because of the ring dissemination topology, uniform message size
    is necessary in order to avoid that large messages stall the
    smaller messages.  This can be achieved by segmenting large
    messages into several smaller ones."

A payload larger than the configured segment size is TO-broadcast as a
run of uniform segments, each an independent protocol-level message.
Reassembly is driven purely by the total delivery order: because every
process delivers the same segments in the same order, every process
completes each application message at the same point of the total
order, so application-level delivery order is itself total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.types import MessageId, ProcessId


@dataclass(frozen=True)
class Segment:
    """One uniform-size piece of an application payload."""

    app_message_id: MessageId
    index: int
    count: int
    payload: Any
    size_bytes: int


def split_payload(
    app_message_id: MessageId,
    payload: Any,
    size_bytes: int,
    segment_size: Optional[int],
) -> List[Segment]:
    """Split ``payload`` into uniform segments of at most ``segment_size``.

    ``bytes`` payloads are split for real; opaque payloads (benchmarks
    pass ``None`` and a size) ride on the first segment only.  With
    ``segment_size`` of ``None`` (or a payload that already fits) the
    result is a single segment covering the whole message.
    """
    if size_bytes < 0:
        raise ProtocolError("payload size cannot be negative")
    if segment_size is None or size_bytes <= segment_size:
        return [
            Segment(
                app_message_id=app_message_id,
                index=0,
                count=1,
                payload=payload,
                size_bytes=size_bytes,
            )
        ]
    count = -(-size_bytes // segment_size)  # ceil division
    segments: List[Segment] = []
    for index in range(count):
        start = index * segment_size
        end = min(start + segment_size, size_bytes)
        if isinstance(payload, (bytes, bytearray)):
            piece: Any = bytes(payload[start:end])
        else:
            piece = payload if index == 0 else None
        segments.append(
            Segment(
                app_message_id=app_message_id,
                index=index,
                count=count,
                payload=piece,
                size_bytes=end - start,
            )
        )
    return segments


@dataclass
class _PartialMessage:
    count: int
    received: Dict[int, Segment] = field(default_factory=dict)

    def complete(self) -> bool:
        return len(self.received) == self.count


class Reassembler:
    """Rebuilds application messages from TO-delivered segments.

    One instance per process.  :meth:`on_segment` returns the completed
    application message exactly when its last segment arrives, and
    ``None`` otherwise.
    """

    def __init__(self) -> None:
        self._partials: Dict[MessageId, _PartialMessage] = {}

    def on_segment(self, segment: Segment) -> Optional[Tuple[Any, int]]:
        """Feed one delivered segment; returns ``(payload, size)`` when
        the application message is complete."""
        if segment.count == 1:
            return segment.payload, segment.size_bytes

        partial = self._partials.get(segment.app_message_id)
        if partial is None:
            partial = _PartialMessage(count=segment.count)
            self._partials[segment.app_message_id] = partial
        if partial.count != segment.count:
            raise ProtocolError(
                f"segment count mismatch for {segment.app_message_id}: "
                f"{partial.count} vs {segment.count}"
            )
        if segment.index in partial.received:
            raise ProtocolError(
                f"duplicate segment {segment.index} of {segment.app_message_id}"
            )
        partial.received[segment.index] = segment
        if not partial.complete():
            return None

        del self._partials[segment.app_message_id]
        ordered = [partial.received[i] for i in range(partial.count)]
        total_size = sum(s.size_bytes for s in ordered)
        if all(isinstance(s.payload, (bytes, bytearray)) for s in ordered):
            payload: Any = b"".join(bytes(s.payload) for s in ordered)
        else:
            payload = ordered[0].payload
        return payload, total_size

    @property
    def incomplete_count(self) -> int:
        """Application messages still missing segments."""
        return len(self._partials)
