"""FSR protocol configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FSRConfig:
    """Knobs of one FSR deployment.

    The defaults match the paper's evaluation setup: one backup,
    piggy-backing and fairness enabled, no segmentation (the paper's
    benchmark messages are already uniform 100 KB).
    """

    #: Number of tolerated failures; the ``t`` processes after the
    #: leader act as backups.  Clamped to ``n - 1`` per view.
    t: int = 1
    #: Segment payloads larger than this into uniform segments
    #: (paper §4.1).  ``None`` disables segmentation.
    segment_size: Optional[int] = None
    #: Piggy-back acknowledgments on data messages when the TX path is
    #: busy (paper §4.2.2).  When disabled every ack is standalone.
    piggyback_acks: bool = True
    #: Enforce the forward-list fairness rule (paper §4.2.3).  When
    #: disabled a process always sends its own pending messages first,
    #: which lets senders close to the leader starve distant ones.
    fairness: bool = True
    #: Maximum acks piggy-backed on a single data message.
    max_piggybacked_acks: int = 32

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ConfigurationError("t (tolerated failures) cannot be negative")
        if self.segment_size is not None and self.segment_size <= 0:
            raise ConfigurationError("segment_size must be positive when set")
        if self.max_piggybacked_acks < 1:
            raise ConfigurationError("max_piggybacked_acks must be at least 1")

    def effective_t(self, n: int) -> int:
        """The backup count actually used in a view of ``n`` processes."""
        if n <= 0:
            raise ConfigurationError("view size must be positive")
        return min(self.t, n - 1)
