"""Message packing on top of any total order broadcast.

The paper's related work cites Friedman & van Renesse's result that
*packing* several application messages into one protocol message is a
powerful throughput boost for total ordering protocols [20].  This
module provides that as a composable wrapper: a
:class:`BatchingBroadcast` presents the ordinary
:class:`~repro.core.api.TotalOrderBroadcast` interface, coalesces
submissions into packs, and unpacks on delivery — preserving total
order and per-message identities.

Packing batches per-*origin*; the total order of packs induces a total
order of the contained messages (every receiver unpacks in pack order,
then in intra-pack order), so all broadcast properties carry over.

With the calibrated host model the per-message fixed CPU cost dominates
small messages; packing amortises it, which
``benchmarks/bench_batching_ablation.py`` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.core.api import BroadcastListener, TotalOrderBroadcast
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.engine import Simulator
from repro.types import MessageId, ProcessId, TimerHandle

#: Bytes of framing per packed entry (length + id).
ENTRY_OVERHEAD_BYTES = 16


@dataclass(frozen=True)
class BatchingConfig:
    """Packing policy.

    A pack is flushed when it reaches ``max_batch_bytes`` (or
    ``max_batch_messages``), or ``max_delay_s`` after its first message
    was submitted — the usual throughput/latency dial.
    """

    max_batch_bytes: int = 60_000
    max_batch_messages: int = 64
    max_delay_s: float = 2e-3

    def __post_init__(self) -> None:
        if self.max_batch_bytes <= 0:
            raise ConfigurationError("max_batch_bytes must be positive")
        if self.max_batch_messages <= 0:
            raise ConfigurationError("max_batch_messages must be positive")
        if self.max_delay_s < 0:
            raise ConfigurationError("max_delay_s cannot be negative")


def batching_config_from_flags(
    batch_bytes: Optional[int],
    batch_messages: Optional[int],
    batch_delay_s: Optional[float],
) -> Optional[BatchingConfig]:
    """Shared ``--batch-*`` flag handling for ``repro run`` and ``repro live``.

    All three ``None`` means batching is off (returns ``None``); any
    subset set fills the rest from the :class:`BatchingConfig` defaults.
    Nonpositive values raise :class:`ConfigurationError` via the
    config's own validation — the sim and live paths reject identically.
    """
    if batch_bytes is None and batch_messages is None and batch_delay_s is None:
        return None
    defaults = BatchingConfig()
    return BatchingConfig(
        max_batch_bytes=(
            batch_bytes if batch_bytes is not None else defaults.max_batch_bytes
        ),
        max_batch_messages=(
            batch_messages if batch_messages is not None
            else defaults.max_batch_messages
        ),
        max_delay_s=(
            batch_delay_s if batch_delay_s is not None
            else defaults.max_delay_s
        ),
    )


@dataclass
class _Pack:
    """One packed protocol payload: a list of (id, payload, size)."""

    entries: List[Tuple[MessageId, Any, int]]

    def wire_size(self) -> int:
        return sum(size + ENTRY_OVERHEAD_BYTES for _, _, size in self.entries)


class BatchingBroadcast(TotalOrderBroadcast):
    """Packs small messages over an inner total order broadcast.

    Example::

        inner = cluster.nodes[0].protocol
        batched = BatchingBroadcast(cluster.sim, inner, origin=0)
        batched.set_listener(my_listener)
        batched.broadcast(b"tiny")   # coalesced with its neighbours
    """

    def __init__(
        self,
        sim: Simulator,
        inner: TotalOrderBroadcast,
        origin: ProcessId,
        config: Optional[BatchingConfig] = None,
    ) -> None:
        self.sim = sim
        self.inner = inner
        self.origin = origin
        self.config = config if config is not None else BatchingConfig()
        self._listener = BroadcastListener()
        self._open: List[Tuple[MessageId, Any, int]] = []
        self._open_bytes = 0
        self._flush_timer: Optional[TimerHandle] = None
        self._local_counter = 0
        self._started = False
        self.stats_packs_sent = 0
        self.stats_messages_packed = 0
        inner.set_listener(BroadcastListener(self._on_inner_deliver))

    # ------------------------------------------------------------------
    # TotalOrderBroadcast surface
    # ------------------------------------------------------------------
    def set_listener(self, listener: BroadcastListener) -> None:
        self._listener = listener

    def start(self) -> None:
        self._started = True
        self.inner.start()

    def stop(self) -> None:
        self._started = False
        self.inner.stop()

    def broadcast(self, payload: Any, size_bytes: Optional[int] = None) -> MessageId:
        if size_bytes is None:
            if isinstance(payload, (bytes, bytearray)):
                size_bytes = len(payload)
            else:
                raise ProtocolError("size_bytes is required for non-bytes payloads")
        self._local_counter += 1
        message_id = MessageId(origin=self.origin, local_seq=self._local_counter)
        self._open.append((message_id, payload, size_bytes))
        self._open_bytes += size_bytes + ENTRY_OVERHEAD_BYTES
        if (
            self._open_bytes >= self.config.max_batch_bytes
            or len(self._open) >= self.config.max_batch_messages
        ):
            self._flush()
        elif self._flush_timer is None:
            self._flush_timer = self.sim.schedule(
                self.config.max_delay_s, self._flush
            )
        return message_id

    def flush(self) -> None:
        """Force the open pack out (end of a burst, shutdown)."""
        self._flush()

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        if not self._open:
            return
        pack = _Pack(entries=self._open)
        self._open = []
        self._open_bytes = 0
        self.stats_packs_sent += 1
        self.stats_messages_packed += len(pack.entries)
        self.inner.broadcast(pack, size_bytes=pack.wire_size())

    def _on_inner_deliver(
        self, origin: ProcessId, _pack_id: MessageId, payload: Any, size: int
    ) -> None:
        if isinstance(payload, _Pack):
            for message_id, entry_payload, entry_size in payload.entries:
                self._listener.deliver(origin, message_id, entry_payload, entry_size)
        else:
            # Interoperability: an unpacked peer's plain message.
            self._listener.deliver(origin, _pack_id, payload, size)
