"""Communication-history total order broadcast (paper §2.4).

Sender-ordered, Lamport-clock based (in the style of Lamport's state
machine / Newtop): every process broadcasts its messages stamped with a
logical clock; a message is delivered once a higher timestamp has been
observed from *every* other process, which — with FIFO channels —
guarantees nothing earlier can still arrive.  Idle processes emit tiny
null messages so the clock front keeps advancing.

The paper's criticism this baseline reproduces: every broadcast costs a
quadratic number of messages across the system (each of the ``n``
processes transmits each of its messages to ``n - 1`` peers, and null
traffic fills every idle lane), so NIC receive capacity saturates far
below FSR's throughput.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.protocols.base import BaselineProcess
from repro.protocols.registry import ProtocolContext, register_protocol
from repro.types import MessageId, ProcessId, SequenceNumber

_HEADER = 32
_NULL_SIZE = 16


@dataclass(frozen=True)
class CommunicationHistoryConfig:
    """Tuning knobs for the communication-history baseline."""

    #: Period of null (clock advancement) messages while idle.
    null_period_s: float = 1e-3


@dataclass
class _ChData:
    message_id: MessageId
    payload: Any
    payload_size: int
    timestamp: int

    def wire_size_bytes(self) -> int:
        return _HEADER + self.payload_size


@dataclass
class _ChNull:
    timestamp: int

    def wire_size_bytes(self) -> int:
        return _NULL_SIZE


class CommunicationHistoryProcess(BaselineProcess):
    """One endpoint of the communication-history protocol."""

    def __init__(self, context: ProtocolContext) -> None:
        super().__init__(
            context.sim,
            context.port,
            context.members,
            context.trace,
            cpu_submit=context.cpu_submit,
        )
        config = context.config or CommunicationHistoryConfig()
        if not isinstance(config, CommunicationHistoryConfig):
            raise ProtocolError(
                "communication_history expects CommunicationHistoryConfig, "
                f"got {type(config).__name__}"
            )
        self.config = config

        self._clock = 0
        #: Latest timestamp observed per peer (self included).
        self._latest: Dict[ProcessId, int] = {pid: 0 for pid in self.members}
        #: Min-heap of pending messages keyed by (timestamp, origin).
        self._pending: List[Tuple[int, ProcessId, MessageId]] = []
        self._payloads: Dict[MessageId, _ChData] = {}
        self._delivery_index = 0

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._schedule_null()

    def broadcast(self, payload: Any, size_bytes: Optional[int] = None) -> MessageId:
        size = self.require_payload_size(payload, size_bytes)
        self.stats_broadcasts += 1
        message_id = self.next_message_id()

        def emit() -> None:
            # The timestamp is taken when the message actually leaves,
            # preserving the Lamport-order/FIFO compatibility argument.
            self._clock += 1
            data = _ChData(
                message_id=message_id,
                payload=payload,
                payload_size=size,
                timestamp=self._clock,
            )
            self._latest[self.me] = self._clock
            self._enqueue(data)
            self.best_effort_broadcast(data)
            self._try_deliver()

        self.charge_cpu(size, emit)
        return message_id

    # ------------------------------------------------------------------
    def on_message(self, src: ProcessId, message: Any) -> None:
        if isinstance(message, _ChData):
            self._clock = max(self._clock, message.timestamp)
            self._latest[src] = max(self._latest[src], message.timestamp)
            self._enqueue(message)
        elif isinstance(message, _ChNull):
            self._clock = max(self._clock, message.timestamp)
            self._latest[src] = max(self._latest[src], message.timestamp)
        else:
            raise ProtocolError(f"unexpected message {message!r}")
        self._try_deliver()

    def _enqueue(self, data: _ChData) -> None:
        if data.message_id in self._payloads:
            return
        self._payloads[data.message_id] = data
        heapq.heappush(
            self._pending,
            (data.timestamp, data.message_id.origin, data.message_id),
        )

    # ------------------------------------------------------------------
    def _schedule_null(self) -> None:
        if self._stopped:
            return
        # Only send a null if the peers have not heard from us lately;
        # data traffic already advances our clock front.
        self._clock += 1
        self._latest[self.me] = self._clock
        self.best_effort_broadcast(_ChNull(timestamp=self._clock))
        self._try_deliver()
        self.sim.schedule(self.config.null_period_s, self._schedule_null)

    def _try_deliver(self) -> None:
        while self._pending:
            timestamp, origin, message_id = self._pending[0]
            # Deliverable once every process is known to be past it.
            front = min(
                self._latest[pid] for pid in self.members if pid != origin
            )
            if front <= timestamp:
                return
            heapq.heappop(self._pending)
            data = self._payloads.pop(message_id)
            self._delivery_index += 1
            self.deliver(
                origin=origin,
                message_id=message_id,
                payload=data.payload,
                size_bytes=data.payload_size,
                sequence=self._delivery_index,
            )


def _build(context: ProtocolContext):
    return CommunicationHistoryProcess(context)


register_protocol("communication_history", _build)
