"""Shared plumbing for the baseline protocols.

Every baseline extends :class:`BaselineProcess`, which provides the
:class:`~repro.core.api.TotalOrderBroadcast` surface, message identity
allocation, delivery bookkeeping (including the protocol-level delivery
hook the harness and checkers rely on), and a best-effort broadcast
helper (``n - 1`` unicasts — the simulated switched LAN has no native
multicast, matching the paper's point-to-point model).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.core.api import BroadcastListener, TotalOrderBroadcast
from repro.core.fsr.process import ProtocolDeliverCallback
from repro.errors import ProtocolError
from repro.net.dispatch import Port
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog
from repro.types import Delivery, MessageId, ProcessId, SequenceNumber


class BaselineProcess(TotalOrderBroadcast):
    """Common state machine scaffolding for baseline protocols."""

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        members: Tuple[ProcessId, ...],
        trace: Optional[TraceLog] = None,
        cpu_submit: Optional[Callable[[int, Callable[[], None]], Any]] = None,
    ) -> None:
        if port.node_id not in members:
            raise ProtocolError(
                f"process {port.node_id} is not a member of {members}"
            )
        self.sim = sim
        self.port = port
        self.members = members
        self.me: ProcessId = port.node_id
        self.n = len(members)
        self.trace = trace if trace is not None else TraceLog(enabled=False)

        self._listener = BroadcastListener()
        self._protocol_deliver_cb: Optional[ProtocolDeliverCallback] = None
        self._cpu_submit = cpu_submit
        self._local_counter = 0
        self._started = False
        self._stopped = False
        self.stats_broadcasts = 0
        self.stats_deliveries = 0

        port.on_receive(self._dispatch)

    # ------------------------------------------------------------------
    # TotalOrderBroadcast surface
    # ------------------------------------------------------------------
    def set_listener(self, listener: BroadcastListener) -> None:
        self._listener = listener

    def on_protocol_deliver(self, callback: ProtocolDeliverCallback) -> None:
        self._protocol_deliver_cb = callback

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.on_start()

    def stop(self) -> None:
        self._stopped = True

    # Subclass hooks -----------------------------------------------------
    def on_start(self) -> None:
        """Protocol-specific start-up (timers, token creation)."""

    def on_message(self, src: ProcessId, message: Any) -> None:
        """Protocol-specific message handling."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _dispatch(self, src: ProcessId, message: Any) -> None:
        if self._stopped:
            return
        self.on_message(src, message)

    def next_message_id(self) -> MessageId:
        self._local_counter += 1
        return MessageId(origin=self.me, local_seq=self._local_counter)

    def others(self) -> List[ProcessId]:
        """All members except this process."""
        return [pid for pid in self.members if pid != self.me]

    def send(self, dst: ProcessId, message: Any) -> None:
        """Unicast; a self-send is delivered as a local async event."""
        if dst == self.me:
            self.sim.schedule(0.0, self._dispatch, self.me, message)
        else:
            self.port.send(dst, message)

    def best_effort_broadcast(self, message: Any) -> None:
        """Send ``message`` to every other member (n-1 unicasts)."""
        for dst in self.others():
            self.port.send(dst, message)

    def charge_cpu(self, size_bytes: int, action: Callable[[], None]) -> None:
        """Charge origin-side marshalling CPU, then run ``action``.

        Every received message costs one CPU pass at its receiver; this
        makes a process's *own* broadcasts cost the same at the origin,
        so all protocols face an identical per-node software budget.
        """
        if self._cpu_submit is None:
            action()
            return

        def guarded() -> None:
            if not self._stopped:
                action()

        self._cpu_submit(size_bytes, guarded)

    def deliver(
        self,
        origin: ProcessId,
        message_id: MessageId,
        payload: Any,
        size_bytes: int,
        sequence: SequenceNumber,
    ) -> None:
        """Record and announce one TO-delivery."""
        self.stats_deliveries += 1
        if self._protocol_deliver_cb is not None:
            self._protocol_deliver_cb(
                Delivery(
                    process=self.me,
                    message_id=message_id,
                    sequence=sequence,
                    time=self.sim.now,
                    size_bytes=size_bytes,
                )
            )
        self._listener.deliver(origin, message_id, payload, size_bytes)

    def require_payload_size(
        self, payload: Any, size_bytes: Optional[int]
    ) -> int:
        if size_bytes is not None:
            return size_bytes
        if isinstance(payload, (bytes, bytearray)):
            return len(payload)
        raise ProtocolError("size_bytes is required for non-bytes payloads")
