"""Moving-sequencer total order broadcast (paper §2.2, Figure 2).

Chang–Maxemchuk-style: senders broadcast payloads to everyone; a token
carrying the sequencing right circulates; the current token holder
assigns sequence numbers to the unsequenced messages it has received
and broadcasts the (small) sequencing decisions.  Uniform delivery is
established through the token itself: it carries each member's
contiguously-received high-water mark, and a message is delivered once
*every* member's mark has passed it (i.e. the decision completed a
token rotation).

The paper's criticism this baseline reproduces: the token is one more
message competing for each NIC's single receive slot, so even under
ideal pipelining the protocol cannot complete more than one broadcast
per round — and with large payloads the token queues behind them,
adding latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.protocols.base import BaselineProcess
from repro.protocols.registry import ProtocolContext, register_protocol
from repro.types import MessageId, ProcessId, SequenceNumber

_HEADER = 32


@dataclass(frozen=True)
class MovingSequencerConfig:
    """Tuning knobs for the moving sequencer baseline."""

    #: How long an idle token holder waits before re-passing the token.
    idle_hold_s: float = 1e-3
    #: Maximum messages sequenced per token visit.
    max_per_token: int = 16


@dataclass
class _MsData:
    message_id: MessageId
    payload: Any
    payload_size: int

    def wire_size_bytes(self) -> int:
        return _HEADER + self.payload_size


@dataclass
class _MsAssign:
    """Batch of sequencing decisions made by one token holder."""

    assignments: List[Tuple[SequenceNumber, MessageId]]

    def wire_size_bytes(self) -> int:
        return _HEADER + 16 * len(self.assignments)


@dataclass
class _MsToken:
    next_seq: SequenceNumber
    #: member -> highest sequence it has contiguously received.
    aru: Dict[ProcessId, SequenceNumber]

    def wire_size_bytes(self) -> int:
        return _HEADER + 12 * len(self.aru)


class MovingSequencerProcess(BaselineProcess):
    """One endpoint of the moving-sequencer protocol."""

    def __init__(self, context: ProtocolContext) -> None:
        super().__init__(
            context.sim,
            context.port,
            context.members,
            context.trace,
            cpu_submit=context.cpu_submit,
        )
        config = context.config or MovingSequencerConfig()
        if not isinstance(config, MovingSequencerConfig):
            raise ProtocolError(
                "moving_sequencer expects MovingSequencerConfig, got "
                f"{type(config).__name__}"
            )
        self.config = config

        #: Payloads received (or sent), by id.
        self._payloads: Dict[MessageId, _MsData] = {}
        #: Arrival order of not-yet-sequenced message ids.
        self._unsequenced: List[MessageId] = []
        self._sequenced_ids: Set[MessageId] = set()
        #: sequence -> message id (global order decided so far).
        self._order: Dict[SequenceNumber, MessageId] = {}
        #: Everyone's contiguous-receipt marks, merged from tokens seen.
        self._stable: SequenceNumber = 0
        self._next_delivery: SequenceNumber = 1
        self._my_contiguous: SequenceNumber = 0
        self._holding_token: Optional[_MsToken] = None

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        if self.me == self.members[0]:
            token = _MsToken(next_seq=1, aru={pid: 0 for pid in self.members})
            self._accept_token(token)

    def broadcast(self, payload: Any, size_bytes: Optional[int] = None) -> MessageId:
        size = self.require_payload_size(payload, size_bytes)
        self.stats_broadcasts += 1
        message_id = self.next_message_id()
        data = _MsData(message_id=message_id, payload=payload, payload_size=size)

        def emit() -> None:
            self._note_data(data)
            self.best_effort_broadcast(data)
            self._work_token()

        self.charge_cpu(size, emit)
        return message_id

    # ------------------------------------------------------------------
    def on_message(self, src: ProcessId, message: Any) -> None:
        if isinstance(message, _MsData):
            self._note_data(message)
            self._work_token()
        elif isinstance(message, _MsAssign):
            for sequence, message_id in message.assignments:
                self._note_assignment(sequence, message_id)
            self._try_deliver()
        elif isinstance(message, _MsToken):
            self._accept_token(message)
        else:
            raise ProtocolError(f"unexpected message {message!r}")

    # ------------------------------------------------------------------
    def _note_data(self, data: _MsData) -> None:
        if data.message_id in self._payloads:
            return
        self._payloads[data.message_id] = data
        if data.message_id not in self._sequenced_ids:
            self._unsequenced.append(data.message_id)
        self._refresh_contiguous()
        self._try_deliver()

    def _note_assignment(self, sequence: SequenceNumber, message_id: MessageId) -> None:
        existing = self._order.get(sequence)
        if existing is not None and existing != message_id:
            raise ProtocolError(
                f"sequence {sequence} assigned to {existing} and {message_id}"
            )
        self._order[sequence] = message_id
        self._sequenced_ids.add(message_id)
        self._refresh_contiguous()

    def _refresh_contiguous(self) -> None:
        while (
            self._my_contiguous + 1 in self._order
            and self._order[self._my_contiguous + 1] in self._payloads
        ):
            self._my_contiguous += 1

    # ------------------------------------------------------------------
    # Token handling
    # ------------------------------------------------------------------
    def _accept_token(self, token: _MsToken) -> None:
        self._holding_token = token
        self._work_token()
        if self._holding_token is not None:
            # Nothing to sequence right now: hold briefly, then pass.
            self.sim.schedule(self.config.idle_hold_s, self._pass_token_if_idle, token)

    def _work_token(self) -> None:
        token = self._holding_token
        if token is None:
            return
        pending = [mid for mid in self._unsequenced if mid not in self._sequenced_ids]
        if not pending:
            return
        batch = pending[: self.config.max_per_token]
        assignments: List[Tuple[SequenceNumber, MessageId]] = []
        for message_id in batch:
            assignments.append((token.next_seq, message_id))
            self._note_assignment(token.next_seq, message_id)
            token.next_seq += 1
        self._unsequenced = [
            mid for mid in self._unsequenced if mid not in self._sequenced_ids
        ]
        self.best_effort_broadcast(_MsAssign(assignments=assignments))
        self._pass_token(token)
        self._try_deliver()

    def _pass_token_if_idle(self, token: _MsToken) -> None:
        if self._holding_token is not token or self._stopped:
            return
        self._pass_token(token)

    def _pass_token(self, token: _MsToken) -> None:
        self._refresh_contiguous()
        token.aru[self.me] = self._my_contiguous
        self._note_stability(min(token.aru.values()))
        self._holding_token = None
        my_index = self.members.index(self.me)
        successor = self.members[(my_index + 1) % self.n]
        if successor == self.me:
            self._accept_token_later(token)
        else:
            self.send(successor, token)

    def _accept_token_later(self, token: _MsToken) -> None:
        self.sim.schedule(self.config.idle_hold_s, self._accept_token, token)

    def _note_stability(self, stable: SequenceNumber) -> None:
        if stable > self._stable:
            self._stable = stable
        self._try_deliver()

    # ------------------------------------------------------------------
    def _try_deliver(self) -> None:
        while self._next_delivery <= self._stable:
            message_id = self._order.get(self._next_delivery)
            if message_id is None:
                return
            data = self._payloads.get(message_id)
            if data is None:
                return
            sequence = self._next_delivery
            self._next_delivery += 1
            self.deliver(
                origin=message_id.origin,
                message_id=message_id,
                payload=data.payload,
                size_bytes=data.payload_size,
                sequence=sequence,
            )


def _build(context: ProtocolContext):
    return MovingSequencerProcess(context)


register_protocol("moving_sequencer", _build)
