"""Fixed-sequencer uniform total order broadcast (paper §2.1, Figure 1).

The classic "UB" pattern:

1. a sender unicasts its message to the sequencer;
2. the sequencer assigns the next sequence number and broadcasts
   ``(m, seq)`` to everyone else;
3. every process acknowledges ``seq`` back to the sequencer (uniform
   variant — non-uniform delivery could skip this);
4. the sequencer advances a stability watermark once all members have
   acknowledged, and disseminates the watermark piggy-backed on the
   next sequenced broadcast (plus a timer-driven flush for idle
   periods);
5. processes deliver sequenced messages, in order, once they are below
   the watermark.

This is the paper's archetypal low-throughput baseline: the sequencer's
NIC must *receive* every payload once and *transmit* it ``n - 1``
times, so aggregate throughput collapses as ``1/(n-1)`` while FSR's
stays flat.

Unlike the other baselines, this implementation is also
**fault-tolerant**: the paper notes that "a new sequencer is elected
only in the case the previous sequencer fails", and this module
implements that election through the same membership/flush machinery
FSR uses.  Uniform delivery (wait for all acks) means every process
stores each sequenced message until delivery, so the flush-state merge
of :mod:`repro.core.fsr.recovery` applies verbatim — each member ships
its pending map, the coordinator merges and prunes per receiver, and
the next member in view order takes over sequencing.  This enables the
failover-cost comparison benchmark against FSR.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.fsr.recovery import FSRFlushState, MergedRecovery
from repro.errors import ProtocolError
from repro.protocols.base import BaselineProcess
from repro.protocols.registry import ProtocolContext, register_protocol
from repro.types import MessageId, ProcessId, SequenceNumber, View
from repro.vsc.membership import FlushState

_HEADER = 32
_ACK_SIZE = 16


@dataclass(frozen=True)
class FixedSequencerConfig:
    """Tuning knobs for the fixed sequencer baseline."""

    #: Ring position of the sequencer in the member list.
    sequencer_index: int = 0
    #: Idle flush period for the stability watermark.
    stability_flush_s: float = 2e-3


@dataclass
class _ToSequencer:
    message_id: MessageId
    payload: Any
    payload_size: int
    view_id: int

    def wire_size_bytes(self) -> int:
        return _HEADER + self.payload_size


@dataclass
class _Sequenced:
    message_id: MessageId
    origin: ProcessId
    payload: Any
    payload_size: int
    sequence: SequenceNumber
    #: Piggy-backed stability watermark.
    stable_up_to: SequenceNumber
    view_id: int

    def wire_size_bytes(self) -> int:
        return _HEADER + 12 + self.payload_size


@dataclass
class _SeqAck:
    sequence: SequenceNumber
    view_id: int

    def wire_size_bytes(self) -> int:
        return _ACK_SIZE


@dataclass
class _StableNotice:
    stable_up_to: SequenceNumber
    view_id: int

    def wire_size_bytes(self) -> int:
        return _ACK_SIZE


class FixedSequencerProcess(BaselineProcess):
    """One endpoint of the (fault-tolerant) fixed-sequencer protocol."""

    def __init__(self, context: ProtocolContext) -> None:
        super().__init__(
            context.sim,
            context.port,
            context.members,
            context.trace,
            cpu_submit=context.cpu_submit,
        )
        config = context.config or FixedSequencerConfig()
        if not isinstance(config, FixedSequencerConfig):
            raise ProtocolError(
                "fixed_sequencer expects FixedSequencerConfig, got "
                f"{type(config).__name__}"
            )
        self.config = config
        self.membership = context.membership
        self.sequencer: ProcessId = self.members[config.sequencer_index % self.n]

        self._view: Optional[View] = None
        self._blocked = False
        self._installed_once = False
        self._flush_timer_armed = False
        self._future: List[Tuple[int, ProcessId, Any]] = []

        # Sequencer-side state.
        self._next_seq: SequenceNumber = 1
        self._acks: Dict[SequenceNumber, Set[ProcessId]] = {}
        self._stable: SequenceNumber = 0
        self._announced_stable: SequenceNumber = 0

        # Receiver-side state.
        self._pending: Dict[SequenceNumber, _Sequenced] = {}
        self._known_stable: SequenceNumber = 0
        self._next_delivery: SequenceNumber = 1

        #: Own submissions not yet delivered locally (re-submitted on a
        #: view change, keeping their original identity).
        self._unacked_submissions: "OrderedDict[MessageId, Tuple[Any, int]]" = (
            OrderedDict()
        )

        self.membership.set_client(self)

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.membership.start()

    def stop(self) -> None:
        super().stop()
        self.membership.stop()

    def broadcast(self, payload: Any, size_bytes: Optional[int] = None) -> MessageId:
        size = self.require_payload_size(payload, size_bytes)
        self.stats_broadcasts += 1
        message_id = self.next_message_id()
        self._unacked_submissions[message_id] = (payload, size)
        self.charge_cpu(size, lambda: self._submit(message_id))
        return message_id

    def _submit(self, message_id: MessageId) -> None:
        if self._blocked or self._stopped:
            return  # re-submitted after the view change
        entry = self._unacked_submissions.get(message_id)
        if entry is None:
            return  # already delivered
        payload, size = entry
        submission = _ToSequencer(
            message_id=message_id, payload=payload, payload_size=size,
            view_id=self._view_id(),
        )
        if self.sequencer == self.me:
            self._sequence_submission(submission)
        else:
            self.send(self.sequencer, submission)

    # ------------------------------------------------------------------
    def on_message(self, src: ProcessId, message: Any) -> None:
        view_id = getattr(message, "view_id", None)
        current = self._view_id()
        if view_id is None:
            raise ProtocolError(f"unexpected message {message!r}")
        if view_id > current:
            self._future.append((view_id, src, message))
            return
        if view_id < current or self._blocked:
            return  # stale, or past the flush snapshot (consistent cut)
        if isinstance(message, _ToSequencer):
            self._sequence_submission(message)
        elif isinstance(message, _Sequenced):
            self._on_sequenced(message)
        elif isinstance(message, _SeqAck):
            self._on_ack(src, message)
        elif isinstance(message, _StableNotice):
            self._advance_known_stable(message.stable_up_to)
        else:
            raise ProtocolError(f"unexpected message {message!r}")

    # ------------------------- sequencer side -------------------------
    def _sequence_submission(self, message: _ToSequencer) -> None:
        if self.me != self.sequencer:
            raise ProtocolError(f"{self.me} is not the sequencer")
        sequence = self._next_seq
        self._next_seq += 1
        sequenced = _Sequenced(
            message_id=message.message_id,
            origin=message.message_id.origin,
            payload=message.payload,
            payload_size=message.payload_size,
            sequence=sequence,
            stable_up_to=self._stable,
            view_id=self._view_id(),
        )
        self._announced_stable = self._stable
        self._acks[sequence] = set()
        self._pending[sequence] = sequenced
        self.best_effort_broadcast(sequenced)
        self._register_ack(sequence, self.me)

    def _on_ack(self, src: ProcessId, ack: _SeqAck) -> None:
        if self.me != self.sequencer:
            return  # late ack addressed to a deposed sequencer
        self._register_ack(ack.sequence, src)

    def _register_ack(self, sequence: SequenceNumber, pid: ProcessId) -> None:
        acked = self._acks.get(sequence)
        if acked is None:
            return
        acked.add(pid)
        if len(acked) < self.n:
            return
        del self._acks[sequence]
        # Stability advances over the contiguous fully-acked prefix.
        while self._stable + 1 < self._next_seq and (self._stable + 1) not in self._acks:
            self._stable += 1
        self._advance_known_stable(self._stable)

    def _arm_stability_flush(self) -> None:
        if self._flush_timer_armed:
            return
        self._flush_timer_armed = True
        self.sim.schedule(self.config.stability_flush_s, self._stability_flush)

    def _stability_flush(self) -> None:
        self._flush_timer_armed = False
        if self._stopped or self.me != self.sequencer:
            return
        if not self._blocked and self._stable > self._announced_stable:
            self._announced_stable = self._stable
            self.best_effort_broadcast(
                _StableNotice(stable_up_to=self._stable, view_id=self._view_id())
            )
        self._arm_stability_flush()

    # ------------------------- receiver side --------------------------
    def _on_sequenced(self, message: _Sequenced) -> None:
        self._pending.setdefault(message.sequence, message)
        self.send(
            self.sequencer,
            _SeqAck(sequence=message.sequence, view_id=self._view_id()),
        )
        self._advance_known_stable(message.stable_up_to)

    def _advance_known_stable(self, stable_up_to: SequenceNumber) -> None:
        if stable_up_to > self._known_stable:
            self._known_stable = stable_up_to
        self._try_deliver()

    def _try_deliver(self) -> None:
        while (
            self._next_delivery <= self._known_stable
            and self._next_delivery in self._pending
        ):
            message = self._pending.pop(self._next_delivery)
            self._next_delivery += 1
            self._unacked_submissions.pop(message.message_id, None)
            self.deliver(
                origin=message.origin,
                message_id=message.message_id,
                payload=message.payload,
                size_bytes=message.payload_size,
                sequence=message.sequence,
            )

    # ==================================================================
    # VSCClient: sequencer failover (paper §2.1's "election")
    # ==================================================================
    def on_block(self) -> None:
        self._blocked = True

    def collect_flush_state(self) -> FlushState:
        """No payloads needed: uniform delivery waits for *all* acks, so
        anything any process delivered is already in every survivor's
        local pending map.  Recovery has to agree on how far delivery
        goes; the ``watermark`` field carries this member's contiguous
        *received* high-water mark (delivered + gap-free pending)."""
        received = self._next_delivery - 1
        while received + 1 in self._pending:
            received += 1
        state = FSRFlushState(
            last_delivered=self._next_delivery - 1,
            watermark=received,
            records={},
            fresh=not self._installed_once,
        )
        return FlushState(payload=state, size_bytes=state.size_bytes())

    def merge_states(self, states, receivers):
        """Safe recovery point = min contiguous-received over survivors.

        A process only acks what it received, and the (possibly dead)
        sequencer only delivered fully-acked sequences — so nothing
        above the minimum received mark can have been delivered
        *anywhere*, and everything at or below it is locally available
        at *every* survivor.  Deliver up to there; void and re-submit
        the rest.
        """
        raw = {pid: wrapper.payload for pid, wrapper in states.items()}
        seasoned = [s for s in raw.values() if not s.fresh]
        if seasoned:
            min_last = min(s.last_delivered for s in seasoned)
            max_last = max(s.last_delivered for s in seasoned)
            safe = min(s.watermark for s in seasoned)
        else:
            min_last = max_last = safe = 0
        if safe < max_last:
            raise ProtocolError(
                f"delivered mark {max_last} exceeds the all-received mark "
                f"{safe}: some survivor acked nothing it lacks?"
            )
        merged = MergedRecovery(
            records={},
            next_sequence=safe + 1,
            orphaned=set(),
            min_last_delivered=min_last,
            max_last_delivered=max_last,
        )
        payload = FlushState(payload=merged, size_bytes=24)
        return {receiver: payload for receiver in receivers}

    def on_view(self, view: View, state: Optional[FlushState]) -> None:
        self._view = view
        self.members = view.members
        self.n = len(view.members)
        self.sequencer = view.members[self.config.sequencer_index % self.n]

        if state is not None:
            self._apply_recovery(state.payload)
        self._blocked = False
        self._installed_once = True
        if self.me == self.sequencer:
            self._arm_stability_flush()
        self._resubmit_pending()
        self._drain_future()

    def _apply_recovery(self, merged: MergedRecovery) -> None:
        if not self._installed_once:
            # Fresh joiner: no local pending to deliver from; history
            # starts at the recovery point.
            self._next_delivery = merged.next_sequence
        # Deliver up to max(last_delivered) from the LOCAL pending map:
        # everything anyone delivered was acked by all, hence received
        # by all — including this process.
        for seq in range(self._next_delivery, merged.next_sequence):
            message = self._pending.pop(seq, None)
            if message is None:
                raise ProtocolError(f"fixed-sequencer recovery gap at {seq}")
            self._next_delivery = seq + 1
            self._unacked_submissions.pop(message.message_id, None)
            self.deliver(
                origin=message.origin,
                message_id=message.message_id,
                payload=message.payload,
                size_bytes=message.payload_size,
                sequence=seq,
            )
        # Old-view assignments beyond the merge are void everywhere.
        self._pending.clear()
        self._acks.clear()
        self._next_seq = merged.next_sequence
        self._stable = merged.next_sequence - 1
        self._announced_stable = self._stable
        self._known_stable = self._stable
        self._next_delivery = merged.next_sequence

    def _resubmit_pending(self) -> None:
        for message_id in list(self._unacked_submissions):
            self._submit(message_id)

    def _drain_future(self) -> None:
        current = self._view_id()
        ready = [(v, s, m) for v, s, m in self._future if v == current]
        self._future = [(v, s, m) for v, s, m in self._future if v > current]
        for _v, src, message in ready:
            self.on_message(src, message)

    def _view_id(self) -> int:
        return self._view.view_id if self._view is not None else -1


def _build(context: ProtocolContext):
    return FixedSequencerProcess(context)


register_protocol("fixed_sequencer", _build)
