"""Destination-agreement total order broadcast (paper §2.5).

Chandra–Toueg-style atomic broadcast: payloads are disseminated with a
best-effort broadcast, and the delivery order is decided by a sequence
of consensus instances on batches of message identifiers.  Consensus
uses a rotating coordinator and the perfect failure detector implicit
in the crash-free benchmark setting: the coordinator proposes its
candidate batch, gathers votes from everyone, then broadcasts the
decision; decided batches are delivered in instance order, messages
within a batch in deterministic identifier order.

Cost per batch (the paper's point): one payload broadcast per message
plus three control waves (nudge/propose, vote, decide) of ``n - 1``
messages each — the consensus machinery, however batched, keeps both
latency and message complexity well above the sequencer families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.protocols.base import BaselineProcess
from repro.protocols.registry import ProtocolContext, register_protocol
from repro.types import MessageId, ProcessId, SequenceNumber

_HEADER = 32
_ID_BYTES = 16


@dataclass(frozen=True)
class DestinationAgreementConfig:
    """Tuning knobs for the destination-agreement baseline."""

    #: Upper bound on messages ordered by one consensus instance.
    max_batch: int = 64


@dataclass
class _DaData:
    message_id: MessageId
    payload: Any
    payload_size: int

    def wire_size_bytes(self) -> int:
        return _HEADER + self.payload_size


@dataclass
class _DaNudge:
    """Candidate ids forwarded to the next instance's coordinator."""

    instance: int
    candidates: Tuple[MessageId, ...]

    def wire_size_bytes(self) -> int:
        return _HEADER + _ID_BYTES * len(self.candidates)


@dataclass
class _DaPropose:
    instance: int
    batch: Tuple[MessageId, ...]

    def wire_size_bytes(self) -> int:
        return _HEADER + _ID_BYTES * len(self.batch)


@dataclass
class _DaVote:
    instance: int

    def wire_size_bytes(self) -> int:
        return _HEADER


@dataclass
class _DaDecide:
    instance: int
    batch: Tuple[MessageId, ...]

    def wire_size_bytes(self) -> int:
        return _HEADER + _ID_BYTES * len(self.batch)


class DestinationAgreementProcess(BaselineProcess):
    """One endpoint of the destination-agreement protocol."""

    def __init__(self, context: ProtocolContext) -> None:
        super().__init__(
            context.sim,
            context.port,
            context.members,
            context.trace,
            cpu_submit=context.cpu_submit,
        )
        config = context.config or DestinationAgreementConfig()
        if not isinstance(config, DestinationAgreementConfig):
            raise ProtocolError(
                "destination_agreement expects DestinationAgreementConfig, "
                f"got {type(config).__name__}"
            )
        self.config = config

        self._payloads: Dict[MessageId, _DaData] = {}
        self._ordered_ids: Set[MessageId] = set()
        #: Undelivered decided batches, by instance.
        self._decisions: Dict[int, Tuple[MessageId, ...]] = {}
        self._next_instance = 1  # next instance to decide/deliver
        self._proposing: Optional[int] = None
        self._votes: Set[ProcessId] = set()
        self._proposed_batch: Tuple[MessageId, ...] = ()
        self._nudged: Dict[int, Set[MessageId]] = {}
        self._nudge_sent_for: Set[int] = set()
        self._sequence = 0

    # ------------------------------------------------------------------
    def coordinator_of(self, instance: int) -> ProcessId:
        return self.members[(instance - 1) % self.n]

    def broadcast(self, payload: Any, size_bytes: Optional[int] = None) -> MessageId:
        size = self.require_payload_size(payload, size_bytes)
        self.stats_broadcasts += 1
        message_id = self.next_message_id()
        data = _DaData(message_id=message_id, payload=payload, payload_size=size)

        def emit() -> None:
            self._note_data(data)
            self.best_effort_broadcast(data)

        self.charge_cpu(size, emit)
        return message_id

    # ------------------------------------------------------------------
    def on_message(self, src: ProcessId, message: Any) -> None:
        if isinstance(message, _DaData):
            self._note_data(message)
        elif isinstance(message, _DaNudge):
            self._on_nudge(message)
        elif isinstance(message, _DaPropose):
            self._on_propose(src, message)
        elif isinstance(message, _DaVote):
            self._on_vote(src, message)
        elif isinstance(message, _DaDecide):
            self._on_decide(message)
        else:
            raise ProtocolError(f"unexpected message {message!r}")

    # ------------------------------------------------------------------
    def _note_data(self, data: _DaData) -> None:
        if data.message_id in self._payloads:
            return
        self._payloads[data.message_id] = data
        self._advance()

    def _candidates(self) -> List[MessageId]:
        pending = [
            mid for mid in self._payloads if mid not in self._ordered_ids
        ]
        pending.sort(key=lambda mid: (mid.origin, mid.local_seq))
        return pending[: self.config.max_batch]

    def _advance(self) -> None:
        """Drive the next consensus instance if there is work to order."""
        if self._stopped:
            return
        instance = self._next_instance
        coordinator = self.coordinator_of(instance)
        candidates = self._candidates()
        if not candidates and not self._nudged.get(instance):
            return
        if coordinator == self.me:
            if self._proposing is None:
                self._start_instance(instance, candidates)
        elif candidates and instance not in self._nudge_sent_for:
            # Tell the coordinator what we would like ordered.
            self._nudge_sent_for.add(instance)
            self.send(
                coordinator,
                _DaNudge(instance=instance, candidates=tuple(candidates)),
            )

    def _start_instance(self, instance: int, candidates: List[MessageId]) -> None:
        extra = self._nudged.pop(instance, set())
        batch = sorted(
            set(candidates) | extra, key=lambda mid: (mid.origin, mid.local_seq)
        )[: self.config.max_batch]
        self._proposing = instance
        self._proposed_batch = tuple(batch)
        self._votes = {self.me}
        self.best_effort_broadcast(
            _DaPropose(instance=instance, batch=self._proposed_batch)
        )
        self._check_votes()

    def _on_nudge(self, nudge: _DaNudge) -> None:
        if nudge.instance < self._next_instance:
            return
        bucket = self._nudged.setdefault(nudge.instance, set())
        bucket.update(
            mid for mid in nudge.candidates if mid not in self._ordered_ids
        )
        self._advance()

    def _on_propose(self, src: ProcessId, proposal: _DaPropose) -> None:
        if proposal.instance < self._next_instance:
            return
        # Perfect-FD, crash-free setting: adopt and vote.
        self.send(src, _DaVote(instance=proposal.instance))

    def _on_vote(self, src: ProcessId, vote: _DaVote) -> None:
        if self._proposing != vote.instance:
            return
        self._votes.add(src)
        self._check_votes()

    def _check_votes(self) -> None:
        if self._proposing is None or len(self._votes) < self.n:
            return
        instance = self._proposing
        batch = self._proposed_batch
        self._proposing = None
        self._proposed_batch = ()
        self._votes = set()
        self.best_effort_broadcast(_DaDecide(instance=instance, batch=batch))
        self._on_decide(_DaDecide(instance=instance, batch=batch))

    def _on_decide(self, decision: _DaDecide) -> None:
        if decision.instance < self._next_instance:
            return
        self._decisions.setdefault(decision.instance, decision.batch)
        self._try_deliver()

    # ------------------------------------------------------------------
    def _try_deliver(self) -> None:
        while self._next_instance in self._decisions:
            batch = self._decisions[self._next_instance]
            # Wait until every payload of the batch has arrived.
            if any(mid not in self._payloads for mid in batch):
                return
            del self._decisions[self._next_instance]
            self._next_instance += 1
            for message_id in batch:
                if message_id in self._ordered_ids:
                    continue
                self._ordered_ids.add(message_id)
                data = self._payloads[message_id]
                self._sequence += 1
                self.deliver(
                    origin=message_id.origin,
                    message_id=message_id,
                    payload=data.payload,
                    size_bytes=data.payload_size,
                    sequence=self._sequence,
                )
        self._advance()


def _build(context: ProtocolContext):
    return DestinationAgreementProcess(context)


register_protocol("destination_agreement", _build)
