"""Privilege-based (token ring) total order broadcast (paper §2.3, Figure 3).

Totem-flavoured: a token circulates the logical ring and only the token
holder may broadcast.  The holder stamps its pending messages with
sequence numbers taken from the token, broadcasts them to everyone, and
passes the token on.  Uniform delivery uses the token's per-member
contiguous-receipt vector: a message is delivered once every member's
mark has passed its sequence number (one full rotation of evidence).
The current stability bound is piggy-backed on data messages so
non-holders can deliver without waiting for the token.

This baseline exposes the paper's fairness/throughput trade-off:
``max_per_token`` small means senders at opposite ring positions share
bandwidth fairly but the token (and its latency) dominates; large means
long unfair bursts.  FSR avoids the trade-off entirely — that is the
point of the comparison benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.errors import ProtocolError
from repro.protocols.base import BaselineProcess
from repro.protocols.registry import ProtocolContext, register_protocol
from repro.types import MessageId, ProcessId, SequenceNumber

_HEADER = 32


@dataclass(frozen=True)
class PrivilegeConfig:
    """Tuning knobs for the privilege (token ring) baseline."""

    #: Maximum messages broadcast per token visit (fairness knob).
    max_per_token: int = 4
    #: How long an idle holder keeps the token before passing it on.
    idle_hold_s: float = 1e-3


@dataclass
class _PrivData:
    message_id: MessageId
    payload: Any
    payload_size: int
    sequence: SequenceNumber
    #: Piggy-backed stability bound (uniform-delivery watermark).
    stable_up_to: SequenceNumber

    def wire_size_bytes(self) -> int:
        return _HEADER + 12 + self.payload_size


@dataclass
class _PrivToken:
    next_seq: SequenceNumber
    #: member -> highest sequence contiguously received.
    aru: Dict[ProcessId, SequenceNumber]

    def wire_size_bytes(self) -> int:
        return _HEADER + 12 * len(self.aru)


class PrivilegeProcess(BaselineProcess):
    """One endpoint of the privilege-based protocol."""

    def __init__(self, context: ProtocolContext) -> None:
        super().__init__(
            context.sim,
            context.port,
            context.members,
            context.trace,
            cpu_submit=context.cpu_submit,
        )
        config = context.config or PrivilegeConfig()
        if not isinstance(config, PrivilegeConfig):
            raise ProtocolError(
                f"privilege expects PrivilegeConfig, got {type(config).__name__}"
            )
        self.config = config

        #: Own messages waiting for the privilege.
        self._outbox: Deque[Tuple[MessageId, Any, int]] = deque()
        #: sequence -> received data message.
        self._received: Dict[SequenceNumber, _PrivData] = {}
        self._my_contiguous: SequenceNumber = 0
        self._stable: SequenceNumber = 0
        self._next_delivery: SequenceNumber = 1
        self._holding_token: Optional[_PrivToken] = None
        self.stats_token_passes = 0

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        if self.me == self.members[0]:
            token = _PrivToken(next_seq=1, aru={pid: 0 for pid in self.members})
            self._accept_token(token)

    def broadcast(self, payload: Any, size_bytes: Optional[int] = None) -> MessageId:
        size = self.require_payload_size(payload, size_bytes)
        self.stats_broadcasts += 1
        message_id = self.next_message_id()

        def emit() -> None:
            self._outbox.append((message_id, payload, size))
            self._work_token()

        self.charge_cpu(size, emit)
        return message_id

    # ------------------------------------------------------------------
    def on_message(self, src: ProcessId, message: Any) -> None:
        if isinstance(message, _PrivData):
            self._on_data(message)
        elif isinstance(message, _PrivToken):
            self._accept_token(message)
        else:
            raise ProtocolError(f"unexpected message {message!r}")

    def _on_data(self, message: _PrivData) -> None:
        self._received.setdefault(message.sequence, message)
        while self._my_contiguous + 1 in self._received:
            self._my_contiguous += 1
        self._note_stability(message.stable_up_to)

    # ------------------------------------------------------------------
    def _accept_token(self, token: _PrivToken) -> None:
        self._holding_token = token
        self._work_token()
        if self._holding_token is not None:
            self.sim.schedule(self.config.idle_hold_s, self._pass_token_if_idle, token)

    def _work_token(self) -> None:
        token = self._holding_token
        if token is None or not self._outbox:
            return
        stable = self._current_stable(token)
        sent = 0
        while self._outbox and sent < self.config.max_per_token:
            message_id, payload, size = self._outbox.popleft()
            data = _PrivData(
                message_id=message_id,
                payload=payload,
                payload_size=size,
                sequence=token.next_seq,
                stable_up_to=stable,
            )
            token.next_seq += 1
            sent += 1
            # The holder "receives" its own broadcast immediately.
            self._received[data.sequence] = data
            while self._my_contiguous + 1 in self._received:
                self._my_contiguous += 1
            self.best_effort_broadcast(data)
        self._pass_token(token)

    def _pass_token_if_idle(self, token: _PrivToken) -> None:
        if self._holding_token is not token or self._stopped:
            return
        self._pass_token(token)

    def _pass_token(self, token: _PrivToken) -> None:
        token.aru[self.me] = self._my_contiguous
        self._note_stability(self._current_stable(token))
        self._holding_token = None
        self.stats_token_passes += 1
        my_index = self.members.index(self.me)
        successor = self.members[(my_index + 1) % self.n]
        if successor == self.me:
            self.sim.schedule(self.config.idle_hold_s, self._accept_token, token)
        else:
            self.send(successor, token)

    def _current_stable(self, token: _PrivToken) -> SequenceNumber:
        marks = dict(token.aru)
        marks[self.me] = self._my_contiguous
        return min(marks.values())

    def _note_stability(self, stable: SequenceNumber) -> None:
        if stable > self._stable:
            self._stable = stable
        self._try_deliver()

    # ------------------------------------------------------------------
    def _try_deliver(self) -> None:
        while self._next_delivery <= self._stable:
            message = self._received.get(self._next_delivery)
            if message is None:
                return
            sequence = self._next_delivery
            self._next_delivery += 1
            self.deliver(
                origin=message.message_id.origin,
                message_id=message.message_id,
                payload=message.payload,
                size_bytes=message.payload_size,
                sequence=sequence,
            )


def _build(context: ProtocolContext):
    return PrivilegeProcess(context)


register_protocol("privilege", _build)
