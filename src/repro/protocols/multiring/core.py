"""The multi-ring fan-out endpoint at one node.

One :class:`MultiRingProcess` owns S unmodified :class:`FSRProcess`
instances — one per inner ring — plus the bucket-interleaving
:class:`InterleaveMux` that folds their per-ring total orders into the
single global order exposed to the application.

Responsibilities:

* **Routing** — a TO-broadcast enters the ring serving its sender's
  bucket in the current epoch (``ring_of_sender``); the epoch is the
  installed view id, so a view change rotates every bucket to the next
  ring.  Messages already handed to an inner ring are *not* re-routed:
  FSR's own view-change recovery re-broadcasts them inside their
  original ring, keeping each per-ring stream append-only.
* **Membership fan-out** — the node runs ONE membership/flush automaton;
  this class implements its :class:`~repro.vsc.membership.VSCClient`
  interface and fans every callback out to the S inner automata, giving
  each ring a rotated view of the same member set (so the S sequencer
  chains start at different nodes) and a composite flush state keyed by
  ring.
* **Noop filling** — when the multiplexer's due ring is idle while real
  traffic waits on other rings, the due ring's inner leader broadcasts a
  weighted noop through that ring after ``noop_delay_s``, releasing the
  backlog (see :mod:`repro.protocols.multiring.mux`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.api import BroadcastListener, TotalOrderBroadcast
from repro.core.fsr.process import FSRProcess, ProtocolDeliverCallback
from repro.errors import ProtocolError
from repro.net.dispatch import Port
from repro.obs.span import SpanLog
from repro.protocols.multiring.buckets import ring_of_sender, rotated_members
from repro.protocols.multiring.config import MultiRingConfig
from repro.protocols.multiring.mux import (
    InterleaveMux,
    RealItem,
    decode_noop,
    encode_noop,
)
from repro.sim.trace import TraceLog
from repro.types import Delivery, MessageId, ProcessId, Scheduler, View
from repro.vsc.membership import FlushState, GroupMembership


@dataclass
class RingLink:
    """Network resources the harness provisions for ONE inner ring.

    Each ring gets its own port (its own simulated NIC, or its own live
    TCP transport) so the S rings genuinely parallelise the per-node
    send path instead of multiplexing one queue.
    """

    ring: int
    port: Port
    #: True when this ring's TX path can accept another message.
    tx_gate: Callable[[], bool]
    #: Registers a callback fired when this ring's TX path drains.
    on_tx_idle: Callable[[Callable[[], None]], None]
    #: Charges marshalling CPU on this ring's core; ``None`` runs inline.
    cpu_submit: Optional[Callable[[int, Callable[[], None]], Any]] = None


class _InnerMembership:
    """Membership stub handed to each inner :class:`FSRProcess`.

    The node runs exactly one real :class:`GroupMembership`; the inner
    automata must not start/stop it or register as its client — the
    fan-out does both.  Their lifecycle calls land here instead.
    """

    def __init__(self) -> None:
        self.client: Optional[Any] = None

    def set_client(self, client: Any) -> None:
        self.client = client

    def start(self) -> None:  # the fan-out starts the real membership
        pass

    def stop(self) -> None:
        pass


class _RingTaggedSpanLog:
    """Span-log proxy stamping every emission with its ring id."""

    def __init__(self, base: SpanLog, ring: int) -> None:
        self._base = base
        self._ring = ring

    @property
    def enabled(self) -> bool:
        return self._base.enabled

    def emit(self, *args: Any, **kwargs: Any) -> None:
        kwargs.setdefault("ring", self._ring)
        self._base.emit(*args, **kwargs)


class MultiRingProcess(TotalOrderBroadcast):
    """Multi-ring sharded total order broadcast endpoint at one node."""

    def __init__(
        self,
        sim: Scheduler,
        membership: GroupMembership,
        config: MultiRingConfig,
        ring_links: Sequence[RingLink],
        trace: Optional[TraceLog] = None,
        spans: Optional[SpanLog] = None,
    ) -> None:
        if len(ring_links) != config.shards:
            raise ProtocolError(
                f"need exactly {config.shards} ring links, got {len(ring_links)}"
            )
        self.sim = sim
        self.membership = membership
        self.config = config
        self.me: ProcessId = ring_links[0].port.node_id
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.spans = spans if spans is not None else SpanLog(enabled=False)

        self._listener = BroadcastListener()
        self._protocol_deliver_cb: Optional[ProtocolDeliverCallback] = None

        self._view: Optional[View] = None
        #: Bucket-rotation epoch: the id of the installed view.
        self._epoch = 0
        self._started = False
        self._stopped = False
        self._blocked = False
        self._local_counter = 0

        self._mux = InterleaveMux(config.shards, self._on_mux_deliver)

        #: Rings where this node (as inner leader) has armed a noop timer.
        self._noop_armed: Set[int] = set()
        #: Rings with one of this node's noops still in flight.
        self._noop_outstanding: Set[int] = set()

        # --- statistics (names read by the live node's final record) ---
        self.stats_broadcasts = 0
        self.stats_deliveries = 0

        self.inner: List[FSRProcess] = []
        self._ring_views: List[Optional[View]] = [None] * config.shards
        for link in ring_links:
            process = FSRProcess(
                sim,
                link.port,
                _InnerMembership(),
                config.fsr,
                trace=trace,
                tx_gate=link.tx_gate,
                cpu_submit=link.cpu_submit,
                spans=_RingTaggedSpanLog(self.spans, link.ring),  # type: ignore[arg-type]
                id_factory=self._next_message_id,
            )
            link.on_tx_idle(process.on_tx_ready)
            process.set_listener(
                BroadcastListener(self._inner_listener(link.ring))
            )
            self.inner.append(process)

        membership.set_client(self)

    def _inner_listener(self, ring: int) -> Callable[..., None]:
        def on_deliver(
            origin: ProcessId, message_id: MessageId, payload: Any, size_bytes: int
        ) -> None:
            self._on_inner_deliver(ring, origin, message_id, payload, size_bytes)

        return on_deliver

    def _next_message_id(self) -> MessageId:
        self._local_counter += 1
        return MessageId(origin=self.me, local_seq=self._local_counter)

    # ==================================================================
    # TotalOrderBroadcast API
    # ==================================================================
    def set_listener(self, listener: BroadcastListener) -> None:
        self._listener = listener

    def on_protocol_deliver(self, callback: ProtocolDeliverCallback) -> None:
        """Observe the multiplexed (global total order) delivery stream."""
        self._protocol_deliver_cb = callback

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        # Inner automata first: the membership's bootstrap view install
        # calls back into on_view synchronously.
        for process in self.inner:
            process.start()
        self.membership.start()

    def stop(self) -> None:
        self._stopped = True
        for process in self.inner:
            process.stop()
        self.membership.stop()

    def broadcast(self, payload: Any, size_bytes: Optional[int] = None) -> MessageId:
        """TO-broadcast via the ring serving this sender's bucket."""
        if self._stopped:
            raise ProtocolError(f"process {self.me} is stopped")
        if not self._started:
            raise ProtocolError(f"process {self.me} has not been started")
        ring = ring_of_sender(
            self.me, self._epoch, self.config.shards, self.config.num_buckets
        )
        app_id = self.inner[ring].broadcast(payload, size_bytes)
        self.stats_broadcasts += 1
        return app_id

    # ==================================================================
    # Multiplexer input (inner per-ring total orders)
    # ==================================================================
    def _on_inner_deliver(
        self,
        ring: int,
        origin: ProcessId,
        message_id: MessageId,
        payload: Any,
        size_bytes: int,
    ) -> None:
        weight = decode_noop(payload)
        if weight is not None:
            if origin == self.me:
                self._noop_outstanding.discard(ring)
            self._mux.push_noop(ring, weight)
        else:
            self._mux.push_real(ring, origin, message_id, payload, size_bytes)
        self._maybe_arm_noop()

    def _on_mux_deliver(
        self, ring: int, slot: int, sequence: int, item: RealItem
    ) -> None:
        self.stats_deliveries += 1
        if self._protocol_deliver_cb is not None:
            self._protocol_deliver_cb(
                Delivery(
                    process=self.me,
                    message_id=item.message_id,
                    sequence=sequence,
                    time=self.sim.now,
                    size_bytes=item.size_bytes,
                    ring=ring,
                    slot=slot,
                )
            )
        self._listener.deliver(
            item.origin, item.message_id, item.payload, item.size_bytes
        )

    # ==================================================================
    # Noop filling (multiplexer head-of-line blocking relief)
    # ==================================================================
    def _maybe_arm_noop(self) -> None:
        """Arm the noop timer if this node leads the blocked due ring."""
        if self._stopped or self._blocked or not self._mux.blocked:
            return
        due = self._mux.due_ring
        if due in self._noop_armed or due in self._noop_outstanding:
            return
        ring = self.inner[due].ring
        if ring is None or ring.leader != self.me:
            return
        self._noop_armed.add(due)
        self.sim.schedule(
            self.config.noop_delay_s, self._noop_timer_fired, due, self._epoch
        )

    def _noop_timer_fired(self, due: int, epoch_at_arm: int) -> None:
        self._noop_armed.discard(due)
        if self._stopped or self._blocked or self._epoch != epoch_at_arm:
            return
        if not self._mux.blocked or self._mux.due_ring != due:
            return
        if due in self._noop_outstanding:
            return
        ring = self.inner[due].ring
        if ring is None or ring.leader != self.me:
            return
        # One noop covers the whole backlog: every queued real message
        # needs at most one pass of the due ring's slots to release.
        weight = max(1, self._mux.pending_real())
        self.trace.emit(
            self.sim.now, "multiring", "noop",
            me=self.me, ring=due, weight=weight,
        )
        self._noop_outstanding.add(due)
        self.inner[due].broadcast(encode_noop(weight))

    # ==================================================================
    # VSCClient API (fan-out of the single real membership)
    # ==================================================================
    def on_block(self) -> None:
        self._blocked = True
        for process in self.inner:
            process.on_block()

    def collect_flush_state(self) -> FlushState:
        """Composite flush state: one inner state per ring."""
        states = {
            ring: process.collect_flush_state()
            for ring, process in enumerate(self.inner)
        }
        return FlushState(
            payload=states,
            size_bytes=sum(state.size_bytes for state in states.values()),
        )

    def merge_states(
        self,
        states: Dict[ProcessId, FlushState],
        receivers: Tuple[ProcessId, ...],
    ) -> Dict[ProcessId, FlushState]:
        """Coordinator-side merge, ring by ring, recombined per receiver."""
        per_ring: List[Dict[ProcessId, FlushState]] = []
        for ring, process in enumerate(self.inner):
            ring_states = {
                member: state.payload[ring] for member, state in states.items()
            }
            per_ring.append(process.merge_states(ring_states, receivers))
        out: Dict[ProcessId, FlushState] = {}
        for receiver in receivers:
            merged = {ring: per_ring[ring][receiver] for ring in range(len(self.inner))}
            out[receiver] = FlushState(
                payload=merged,
                size_bytes=sum(state.size_bytes for state in merged.values()),
            )
        return out

    def on_view(self, view: View, state: Optional[FlushState]) -> None:
        """Install the view in every inner ring, rotated per ring.

        The epoch (= view id) advances the bucket rotation, so buckets
        previously served by a ring whose sequencer chain died are now
        served by the next ring over — new broadcasts immediately take
        the rotated route, while each inner ring recovers its own
        in-flight traffic through ordinary FSR recovery.
        """
        self._view = view
        self._epoch = view.view_id
        self._noop_armed.clear()  # stale timers no-op via the epoch check
        self.trace.emit(
            self.sim.now, "multiring", "view",
            me=self.me, view_id=view.view_id, members=view.members,
        )
        for ring, process in enumerate(self.inner):
            ring_view = View(
                view_id=view.view_id,
                members=rotated_members(view.members, ring, self.config.shards),
            )
            self._ring_views[ring] = ring_view
            ring_state = state.payload.get(ring) if state is not None else None
            process.on_view(ring_view, ring_state)
        self._blocked = False
        self._maybe_arm_noop()

    def on_view_commit(self, view: View) -> None:
        for ring, process in enumerate(self.inner):
            ring_view = self._ring_views[ring]
            if ring_view is not None and ring_view.view_id == view.view_id:
                process.on_view_commit(ring_view)
        self._maybe_arm_noop()

    # ==================================================================
    # Introspection
    # ==================================================================
    @property
    def stats_acks_piggybacked(self) -> int:
        return sum(process.stats_acks_piggybacked for process in self.inner)

    @property
    def stats_acks_standalone(self) -> int:
        return sum(process.stats_acks_standalone for process in self.inner)

    @property
    def view(self) -> Optional[View]:
        return self._view

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def mux(self) -> InterleaveMux:
        return self._mux
