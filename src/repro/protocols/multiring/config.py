"""Multi-ring protocol configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fsr.config import FSRConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MultiRingConfig:
    """Knobs of one multi-ring deployment.

    ``shards`` concurrent FSR rings share the membership; each ring
    runs an unmodified :class:`FSRConfig` automaton.  ``num_buckets``
    partitions the sender space (and the slot space); it must be a
    multiple of ``shards`` so the static slot-to-ring mapping agrees
    with bucket arithmetic (see :mod:`repro.protocols.multiring.buckets`).
    """

    #: Number of concurrent FSR ring instances.
    shards: int = 2
    #: Configuration of each inner FSR ring.
    fsr: FSRConfig = field(default_factory=FSRConfig)
    #: How long the multiplexer tolerates a blocked slot before the due
    #: ring's leader fills it with a weighted noop.
    noop_delay_s: float = 2e-3
    #: Buckets partitioning the sender and slot spaces.
    num_buckets: int = 32

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError("shards must be at least 1")
        if self.num_buckets < self.shards:
            raise ConfigurationError("need at least one bucket per shard")
        if self.num_buckets % self.shards != 0:
            raise ConfigurationError(
                f"num_buckets ({self.num_buckets}) must be a multiple of "
                f"shards ({self.shards}) so slot buckets map to static "
                "slot rings consistently"
            )
        if self.noop_delay_s <= 0:
            raise ConfigurationError("noop_delay_s must be positive")
