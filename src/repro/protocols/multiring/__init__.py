"""Multi-ring sharded total order: S concurrent FSR rings, one order.

The subsystem follows the ISS recipe ("State-Machine Replication
Scalability Made Simple", PAPERS.md): partition the sequence space into
buckets, run independent ordering instances — here, S FSR rings over
rotated leader assignments of the *same* member set — and multiplex
their per-ring total orders into a single global one with a
deterministic round-robin interleaving rule.

Modules:

* :mod:`repro.protocols.multiring.buckets` — the deterministic
  sender-to-bucket hash, epoch-based bucket rotation, and the static
  slot-to-ring arithmetic the mux and the checkers share;
* :mod:`repro.protocols.multiring.mux` — the pure bucket-interleaving
  multiplexer (per-ring FIFO queues, slot counter, weighted noops);
* :mod:`repro.protocols.multiring.config` — :class:`MultiRingConfig`;
* :mod:`repro.protocols.multiring.core` — :class:`MultiRingProcess`,
  the runtime-agnostic fan-out endpoint both the simulator and the
  live asyncio runtime instantiate.
"""

from repro.protocols.multiring.buckets import (
    bucket_of_sender,
    bucket_of_slot,
    mix64,
    offset_for_ring,
    ring_of_bucket,
    ring_of_sender,
    ring_of_slot,
    rotated_members,
)
from repro.protocols.multiring.config import MultiRingConfig
from repro.protocols.multiring.core import MultiRingProcess, RingLink
from repro.protocols.multiring.mux import InterleaveMux, NOOP_MAGIC

__all__ = [
    "InterleaveMux",
    "MultiRingConfig",
    "MultiRingProcess",
    "NOOP_MAGIC",
    "RingLink",
    "bucket_of_sender",
    "bucket_of_slot",
    "mix64",
    "offset_for_ring",
    "ring_of_bucket",
    "ring_of_sender",
    "ring_of_slot",
    "rotated_members",
]
