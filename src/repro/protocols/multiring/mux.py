"""The bucket-interleaving multiplexer (pure, runtime-agnostic).

One :class:`InterleaveMux` runs at every node, downstream of the S
inner FSR rings.  Each ring feeds it that ring's app-level deliveries
*in the ring's own total order*; the mux releases them in global slot
order: slot ``s`` consumes the head of ring ``s % shards``'s queue.

Because every correct node sees identical per-ring streams (each inner
ring is itself a uniform total order) and the slot-to-ring mapping is
static, the mux output is a deterministic monotone function of the
per-ring stream prefixes — every node extends the same global order.

**Weighted noops** keep the round-robin from head-of-line blocking on
an idle ring: when the due ring's queue is empty while real messages
wait elsewhere, that ring's leader broadcasts a noop carrying a weight
``w``; the mux consumes ``w`` of that ring's slots per noop.  Noops
travel through the full inner-ring ordering (so every node consumes
them at the same position), are never delivered to the application,
and never consume global sequence numbers — the global sequence counts
real messages only and stays contiguous from 1.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Union

from repro.errors import ProtocolError
from repro.types import MessageId, ProcessId

#: Payload prefix marking a slot-filler noop.  Contains ASCII letters,
#: so it can never collide with the all-zero ``bytes(n)`` payloads the
#: live workload driver submits.
NOOP_MAGIC = b"\x00repro.mr.noop\x00"


def encode_noop(weight: int) -> bytes:
    """Serialise a noop covering ``weight`` slots of its ring."""
    if weight < 1:
        raise ProtocolError(f"noop weight must be positive, got {weight}")
    return NOOP_MAGIC + str(weight).encode("ascii")


def decode_noop(payload: Any) -> Optional[int]:
    """Return the noop's weight, or ``None`` for a real payload."""
    if not isinstance(payload, (bytes, bytearray)):
        return None
    if not bytes(payload).startswith(NOOP_MAGIC):
        return None
    return int(bytes(payload)[len(NOOP_MAGIC):] or b"1")


class RealItem:
    """One application message waiting in a ring queue."""

    __slots__ = ("origin", "message_id", "payload", "size_bytes")

    def __init__(
        self,
        origin: ProcessId,
        message_id: MessageId,
        payload: Any,
        size_bytes: int,
    ) -> None:
        self.origin = origin
        self.message_id = message_id
        self.payload = payload
        self.size_bytes = size_bytes


class NoopItem:
    """A noop filler: consumes ``weight`` slots of its ring."""

    __slots__ = ("weight",)

    def __init__(self, weight: int) -> None:
        self.weight = weight


#: Callback fired for each released real message:
#: (ring, slot, global_sequence, item).
MuxDeliver = Callable[[int, int, int, RealItem], None]


class InterleaveMux:
    """Round-robins global sequence slots across S per-ring queues."""

    def __init__(self, shards: int, on_deliver: MuxDeliver) -> None:
        if shards < 1:
            raise ProtocolError("mux needs at least one ring")
        self.shards = shards
        self._on_deliver = on_deliver
        self._queues: List[Deque[Union[RealItem, NoopItem]]] = [
            deque() for _ in range(shards)
        ]
        #: Next global slot to fill (0-based; slot s consumes ring s % S).
        self._slot = 0
        #: Last released global sequence number (real messages only).
        self._seq = 0
        self._pumping = False

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def push_real(
        self,
        ring: int,
        origin: ProcessId,
        message_id: MessageId,
        payload: Any,
        size_bytes: int,
    ) -> None:
        """Enqueue one app-level delivery from inner ``ring``."""
        self._queues[ring].append(RealItem(origin, message_id, payload, size_bytes))
        self.pump()

    def push_noop(self, ring: int, weight: int) -> None:
        """Enqueue a noop covering ``weight`` slots of ``ring``."""
        if weight < 1:
            raise ProtocolError(f"noop weight must be positive, got {weight}")
        self._queues[ring].append(NoopItem(weight))
        self.pump()

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Release every message whose slot can be filled.

        Reentrancy-guarded: an ``on_deliver`` upcall may feed the mux
        (e.g. the application broadcasting from a delivery callback);
        the outer pump finishes the drain.
        """
        if self._pumping:
            return
        self._pumping = True
        try:
            while True:
                queue = self._queues[self._slot % self.shards]
                if not queue:
                    break
                head = queue[0]
                if isinstance(head, NoopItem):
                    head.weight -= 1
                    if head.weight <= 0:
                        queue.popleft()
                    self._slot += 1
                    continue
                queue.popleft()
                slot = self._slot
                self._slot += 1
                self._seq += 1
                self._on_deliver(slot % self.shards, slot, self._seq, head)
        finally:
            self._pumping = False

    # ------------------------------------------------------------------
    # Introspection (noop scheduling, tests)
    # ------------------------------------------------------------------
    @property
    def slot(self) -> int:
        """Next unfilled global slot."""
        return self._slot

    @property
    def next_sequence(self) -> int:
        """Global sequence number the next real release will get."""
        return self._seq + 1

    @property
    def due_ring(self) -> int:
        """Ring the next slot consumes from."""
        return self._slot % self.shards

    def pending_real(self, ring: Optional[int] = None) -> int:
        """Count of queued real messages (one ring, or all)."""
        queues = self._queues if ring is None else [self._queues[ring]]
        return sum(
            1
            for queue in queues
            for item in queue
            if isinstance(item, RealItem)
        )

    @property
    def blocked(self) -> bool:
        """True when the due ring is empty while real messages wait
        elsewhere — the state a noop resolves."""
        if self._queues[self.due_ring]:
            return False
        return self.pending_real() > 0
