"""Bucket and slot arithmetic shared by the mux, the core, and checkers.

Two independent mappings keep the multiplexed order deterministic:

* **sender -> bucket -> ring** routes *new* broadcasts.  The bucket of
  a sender is a deterministic hash (a splitmix64-style mixer — NOT
  Python's per-interpreter-randomised ``hash``), and the bucket's ring
  rotates with the membership epoch, so a view change reassigns a dead
  ring's buckets to the surviving rotation.  Messages already in
  flight are NOT re-routed: the FSR recovery machinery re-broadcasts
  them inside their original inner ring, so rotation never moves a
  message between per-ring streams.

* **slot -> ring** drives the multiplexer and is deliberately *static*
  (``slot % shards``, independent of the epoch).  Nodes install views
  at different local times; had the slot mapping depended on the
  epoch, two nodes mid-view-change would interleave the same per-ring
  streams differently and diverge.  With ``num_buckets % shards == 0``
  the static mapping is consistent with bucket arithmetic:
  ``bucket_of_slot(s) % shards == ring_of_slot(s)`` for every slot.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.types import ProcessId

#: 64-bit mask for the mixer.
_MASK = (1 << 64) - 1


def mix64(value: int) -> int:
    """splitmix64 finalising mixer: deterministic, well-spread, stable
    across interpreters and machines (unlike builtin ``hash``)."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return (z ^ (z >> 31)) & _MASK


def bucket_of_sender(sender: ProcessId, num_buckets: int) -> int:
    """Deterministic hash-of-sender bucket assignment."""
    return mix64(sender) % num_buckets


def ring_of_bucket(bucket: int, epoch: int, shards: int) -> int:
    """Ring serving ``bucket`` during membership ``epoch``.

    The rotation by the epoch is what reassigns a dead ring's buckets
    after a view change: every bucket moves to the next ring, so no
    bucket stays pinned to a sequencer chain that just lost its head.
    """
    return (bucket + epoch) % shards


def ring_of_sender(
    sender: ProcessId, epoch: int, shards: int, num_buckets: int
) -> int:
    """Ring a broadcast by ``sender`` enters during ``epoch``."""
    return ring_of_bucket(bucket_of_sender(sender, num_buckets), epoch, shards)


def bucket_of_slot(slot: int, num_buckets: int) -> int:
    """The bucket a global sequence slot belongs to (each slot lands in
    exactly one bucket)."""
    return slot % num_buckets


def ring_of_slot(slot: int, shards: int) -> int:
    """The ring a global sequence slot consumes from.  Static — never a
    function of the epoch (see module docstring)."""
    return slot % shards


def offset_for_ring(ring: int, n: int, shards: int) -> int:
    """Leader rotation offset of ``ring`` in a view of ``n`` members.

    Ring ``r``'s member list is the view rotated by this offset, so the
    S sequencer chains start at members spread evenly around the ring
    (``r * floor(n / shards)``), putting one sequencer's CPU and NIC
    load on a different node per ring.
    """
    return (ring * max(1, n // shards)) % n


def rotated_members(
    members: Sequence[ProcessId], ring: int, shards: int
) -> Tuple[ProcessId, ...]:
    """Member list of inner ``ring``: the view rotated by its offset.

    Rotation preserves the cyclic successor order, so every node keeps
    the *same* ring successor in all S rings — one TCP hop (or one
    simulated NIC path) per ring, all pointed at the same neighbour.
    """
    n = len(members)
    offset = offset_for_ring(ring, n, shards)
    return tuple(members[(offset + i) % n] for i in range(n))
