"""Protocol registry: name -> factory.

The cluster harness looks protocols up here; adding a protocol to the
benchmarks means adding one entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.api import TotalOrderBroadcast
from repro.errors import ConfigurationError
from repro.net.dispatch import Port
from repro.obs.span import SpanLog
from repro.sim.trace import TraceLog
from repro.types import ProcessId, Scheduler
from repro.vsc.membership import GroupMembership


@dataclass
class ProtocolContext:
    """Everything a protocol factory may use to build one endpoint."""

    sim: Scheduler
    node_id: ProcessId
    #: This protocol's own network port.
    port: Port
    #: Membership layer (FSR subscribes; baselines may ignore it).
    membership: GroupMembership
    #: Initial membership, in ring order.
    members: Tuple[ProcessId, ...]
    #: Protocol-specific configuration object (or None for defaults).
    config: Optional[Any]
    trace: TraceLog
    #: Returns True when the node's TX path can take another message.
    tx_gate: Callable[[], bool]
    #: Registers a callback fired when the TX path drains.
    on_tx_idle: Callable[[Callable[[], None]], None]
    #: Charge the node's CPU for marshalling ``size_bytes`` and run the
    #: callback when done; protocols call this on the broadcast path so
    #: every message costs one CPU pass at its origin, like everywhere
    #: else.  ``None`` means run callbacks immediately (unit tests).
    cpu_submit: Optional[Callable[[int, Callable[[], None]], Any]] = None
    #: Shared per-message lifecycle span log (``None``: spans off).
    spans: Optional[SpanLog] = None


ProtocolFactory = Callable[[ProtocolContext], TotalOrderBroadcast]

#: The registry.  Populated at import time by ``_register_builtin``.
PROTOCOLS: Dict[str, ProtocolFactory] = {}


def register_protocol(name: str, factory: ProtocolFactory) -> None:
    """Add (or replace) a protocol factory under ``name``."""
    PROTOCOLS[name] = factory


def build_protocol(name: str, context: ProtocolContext) -> TotalOrderBroadcast:
    """Instantiate the protocol registered under ``name``."""
    try:
        factory = PROTOCOLS[name]
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS))
        raise ConfigurationError(
            f"unknown protocol {name!r}; registered: {known}"
        ) from None
    return factory(context)


def _build_fsr(context: ProtocolContext) -> TotalOrderBroadcast:
    from repro.core.fsr.config import FSRConfig
    from repro.core.fsr.process import FSRProcess

    config = context.config if context.config is not None else FSRConfig()
    if not isinstance(config, FSRConfig):
        raise ConfigurationError(
            f"protocol 'fsr' expects FSRConfig, got {type(config).__name__}"
        )
    process = FSRProcess(
        sim=context.sim,
        port=context.port,
        membership=context.membership,
        config=config,
        trace=context.trace,
        tx_gate=context.tx_gate,
        cpu_submit=context.cpu_submit,
        spans=context.spans,
    )
    context.on_tx_idle(process.on_tx_ready)
    return process


def _register_builtin() -> None:
    register_protocol("fsr", _build_fsr)

    # Baselines are registered lazily to keep import costs down and to
    # avoid import cycles; each module self-registers on first import.
    from repro.protocols import (  # noqa: F401  (import for side effect)
        communication_history,
        destination_agreement,
        fixed_sequencer,
        moving_sequencer,
        privilege,
    )


_register_builtin()
