"""Protocol registry: name -> factory.

The cluster harness looks protocols up here; adding a protocol to the
benchmarks means adding one entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.core.api import TotalOrderBroadcast
from repro.errors import ConfigurationError
from repro.net.dispatch import Port
from repro.obs.span import SpanLog
from repro.sim.trace import TraceLog
from repro.types import ProcessId, Scheduler
from repro.vsc.membership import GroupMembership


@dataclass
class ProtocolContext:
    """Everything a protocol factory may use to build one endpoint."""

    sim: Scheduler
    node_id: ProcessId
    #: This protocol's own network port.
    port: Port
    #: Membership layer (FSR subscribes; baselines may ignore it).
    membership: GroupMembership
    #: Initial membership, in ring order.
    members: Tuple[ProcessId, ...]
    #: Protocol-specific configuration object (or None for defaults).
    config: Optional[Any]
    trace: TraceLog
    #: Returns True when the node's TX path can take another message.
    tx_gate: Callable[[], bool]
    #: Registers a callback fired when the TX path drains.
    on_tx_idle: Callable[[Callable[[], None]], None]
    #: Charge the node's CPU for marshalling ``size_bytes`` and run the
    #: callback when done; protocols call this on the broadcast path so
    #: every message costs one CPU pass at its origin, like everywhere
    #: else.  ``None`` means run callbacks immediately (unit tests).
    cpu_submit: Optional[Callable[[int, Callable[[], None]], Any]] = None
    #: Shared per-message lifecycle span log (``None``: spans off).
    spans: Optional[SpanLog] = None
    #: Per-ring network resources for the multi-ring protocol: one
    #: :class:`repro.protocols.multiring.core.RingLink` per shard (the
    #: harness provisions S independent NIC/transport paths per node).
    #: ``None`` for single-port protocols.
    ring_links: Optional[Sequence[Any]] = None


ProtocolFactory = Callable[[ProtocolContext], TotalOrderBroadcast]

#: The registry.  Populated at import time by ``_register_builtin``.
PROTOCOLS: Dict[str, ProtocolFactory] = {}


def register_protocol(name: str, factory: ProtocolFactory) -> None:
    """Add (or replace) a protocol factory under ``name``."""
    PROTOCOLS[name] = factory


def build_protocol(name: str, context: ProtocolContext) -> TotalOrderBroadcast:
    """Instantiate the protocol registered under ``name``."""
    try:
        factory = PROTOCOLS[name]
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS))
        raise ConfigurationError(
            f"unknown protocol {name!r}; registered: {known}"
        ) from None
    return factory(context)


def _build_fsr(context: ProtocolContext) -> TotalOrderBroadcast:
    from repro.core.fsr.config import FSRConfig
    from repro.core.fsr.process import FSRProcess

    config = context.config if context.config is not None else FSRConfig()
    if not isinstance(config, FSRConfig):
        raise ConfigurationError(
            f"protocol 'fsr' expects FSRConfig, got {type(config).__name__}"
        )
    process = FSRProcess(
        sim=context.sim,
        port=context.port,
        membership=context.membership,
        config=config,
        trace=context.trace,
        tx_gate=context.tx_gate,
        cpu_submit=context.cpu_submit,
        spans=context.spans,
    )
    context.on_tx_idle(process.on_tx_ready)
    return process


def _build_multiring(context: ProtocolContext) -> TotalOrderBroadcast:
    from repro.core.fsr.config import FSRConfig
    from repro.protocols.multiring.config import MultiRingConfig
    from repro.protocols.multiring.core import MultiRingProcess, RingLink

    config = context.config if context.config is not None else MultiRingConfig()
    if isinstance(config, FSRConfig):
        # Convenience: an FSRConfig configures the inner rings.
        config = MultiRingConfig(fsr=config)
    if not isinstance(config, MultiRingConfig):
        raise ConfigurationError(
            "protocol 'multiring' expects MultiRingConfig, got "
            f"{type(config).__name__}"
        )
    if config.shards == 1:
        # One shard is exactly the single-ring protocol: delegate so the
        # delivered stream is byte-identical to the plain FSR path (no
        # mux, no ring/slot tags, no noop machinery).
        return _build_fsr(
            ProtocolContext(
                sim=context.sim,
                node_id=context.node_id,
                port=context.port,
                membership=context.membership,
                members=context.members,
                config=config.fsr,
                trace=context.trace,
                tx_gate=context.tx_gate,
                on_tx_idle=context.on_tx_idle,
                cpu_submit=context.cpu_submit,
                spans=context.spans,
            )
        )
    links: Sequence[Any]
    if context.ring_links is not None:
        links = context.ring_links
    else:
        # Degenerate wiring (unit tests): every ring shares the node's
        # single port-equivalent.  Ring 0 keeps the real port; others
        # would collide, so this path requires explicit links.
        raise ConfigurationError(
            "protocol 'multiring' with shards > 1 needs per-ring links "
            "(context.ring_links); the harness provisions them"
        )
    if len(links) != config.shards:
        raise ConfigurationError(
            f"multiring: got {len(links)} ring links for "
            f"{config.shards} shards"
        )
    for link in links:
        if not isinstance(link, RingLink):
            raise ConfigurationError(
                f"multiring: ring link {link!r} is not a RingLink"
            )
    return MultiRingProcess(
        sim=context.sim,
        membership=context.membership,
        config=config,
        ring_links=links,
        trace=context.trace,
        spans=context.spans,
    )


def _register_builtin() -> None:
    register_protocol("fsr", _build_fsr)
    register_protocol("multiring", _build_multiring)

    # Baselines are registered lazily to keep import costs down and to
    # avoid import cycles; each module self-registers on first import.
    from repro.protocols import (  # noqa: F401  (import for side effect)
        communication_history,
        destination_agreement,
        fixed_sequencer,
        moving_sequencer,
        privilege,
    )


_register_builtin()
