"""Baseline total-order broadcast protocols (paper Section 2).

One implementation per class of the Défago–Schiper–Urbán taxonomy the
paper surveys, each written against the same
:class:`~repro.core.api.TotalOrderBroadcast` interface as FSR so every
benchmark can swap protocols freely:

* :mod:`~repro.protocols.fixed_sequencer` — Figure 1 of the paper.
* :mod:`~repro.protocols.moving_sequencer` — Figure 2.
* :mod:`~repro.protocols.privilege` — Figure 3.
* :mod:`~repro.protocols.communication_history` — §2.4.
* :mod:`~repro.protocols.destination_agreement` — §2.5.

The baselines target the paper's failure-free performance comparison;
they implement correct total order under crash-free runs (verified by
the same checkers as FSR) but, unlike FSR, do not implement view-change
recovery — the paper compares their throughput, not their fault
tolerance.
"""

from repro.protocols.registry import PROTOCOLS, ProtocolContext, build_protocol

__all__ = ["PROTOCOLS", "ProtocolContext", "build_protocol"]
