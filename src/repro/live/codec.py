"""Binary wire codec for FSR messages (see PROTOCOL.md appendix).

Every frame on a live ring connection is a 4-byte big-endian length
prefix followed by a message body.  Body sizes match the abstract byte
accounting of ``wire_size_bytes()`` *exactly* — the simulator charges
the network for precisely the bytes this codec puts on the wire, which
is what makes simulated and measured throughput comparable:

========================  =======================================  =====
part                      struct layout (network byte order)       bytes
========================  =======================================  =====
data header               kind B · flags B · n_acks H · mid.origin
                          i · mid.local_seq q · origin i · view i
                          · watermark q                             32
seq extra (SeqData only)  sequence q · stable B                      9
segment meta (optional)   app local_seq I · index I · count I        12
ack record (each)         mid.origin i · mid.local_seq q ·
                          sequence q · flags i (bit0 = stable)       24
ack-batch header          kind B · flags B · n_acks H · view i ·
                          watermark q                                16
========================  =======================================  =====

Two representational invariants are *enforced* at encode time rather
than widened on the wire, because the protocol already guarantees them
(and the byte budget counts on it):

* a piggy-backed ack's ``view_id`` equals its carrier's ``view_id`` —
  FSR creates acks in the current view and clears the ack queue on view
  change, so the 24-byte ack record carries no view field;
* a segment's application-level message id has the same ``origin`` as
  the segment message itself — ``FSRProcess.broadcast`` constructs
  segments that way, so the 12-byte segment record stores only the
  application ``local_seq``.

Payloads must be ``bytes``/``bytearray``/``memoryview`` with length
equal to ``payload_size``; the live runtime never ships placeholder
payload objects.  All malformed input — encode or decode — raises
:class:`~repro.errors.CodecError` and nothing else.

Batch frames (PROTOCOL.md appendix C)
-------------------------------------

Under load the transport coalesces several queued frames into one
*batch frame* so the whole flush costs one syscall and one ``drain()``:

========================  =======================================  =====
part                      struct layout (network byte order)       bytes
========================  =======================================  =====
batch header              kind B (=4) · flags B (=0) · count H       4
entry (each)              body length I · frame body                 4+len
========================  =======================================  =====

Entries reuse the exact per-message encodings above (a batch entry is
byte-for-byte an ordinary length-prefixed frame), so batching adds 8
bytes per flush over the plain stream and *nothing* per message.  Only
ring data (``FwdData``/``SeqData``/``AckBatch``) may ride in a batch;
``Hello``/control/nested batches are rejected on both sides.  Decode
slices entries out of the received body with ``memoryview`` — no
per-entry copy; the single copy per payload happens directly from the
receive buffer into its final ``bytes`` object.

The hot path avoids the allocation-heavy ``b"".join`` encode:
:class:`FrameEncoder` packs cached :class:`struct.Struct` headers
straight into one reusable ``bytearray`` per transport (the EpTO
exemplar's idiom — prepacked structs over attribute-heavy temporaries),
and is guaranteed byte-identical to :func:`encode_frame`.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Tuple, Union

from repro.core.fsr.messages import (
    ACK_BATCH_HEADER_BYTES,
    ACK_BYTES,
    DATA_HEADER_BYTES,
    SEQ_EXTRA_BYTES,
    AckBatch,
    AckMsg,
    FwdData,
    SeqData,
)
from repro.errors import CodecError
from repro.types import MessageId, ProcessId

# ---------------------------------------------------------------------------
# Frame kinds
# ---------------------------------------------------------------------------
KIND_FWD_DATA = 1
KIND_SEQ_DATA = 2
KIND_ACK_BATCH = 3
#: Multi-message coalesced frame (see module docstring / appendix C).
KIND_BATCH = 4
#: Transport-level greeting: first frame on every connection.
KIND_HELLO = 0x40
#: Control-plane envelope (membership / failure-detector traffic).
KIND_CONTROL = 0x41

#: ``Hello.channel`` values: what kind of traffic the connection carries.
CHANNEL_RING = 0
CHANNEL_CONTROL = 1

#: Flag bits in the data-header ``flags`` field.
FLAG_STABLE = 0x01
FLAG_SEGMENT = 0x02

#: Length prefix preceding every body on the wire.
LENGTH_PREFIX_BYTES = 4
#: Upper bound on one body; protects readers from corrupt prefixes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct("!I")
_DATA_HEADER = struct.Struct("!BBHiqiiq")  # 32 bytes
_SEQ_EXTRA = struct.Struct("!qB")  # 9 bytes
_SEGMENT = struct.Struct("!III")  # 12 bytes
_ACK = struct.Struct("!iqqi")  # 24 bytes
_ACK_BATCH_HEADER = struct.Struct("!BBHiq")  # 16 bytes
_HELLO = struct.Struct("!BBi")  # kind + channel + node id
_CONTROL_KIND = struct.Struct("!B")  # kind; pickled (layer, inner) follows
_BATCH_HEADER = struct.Struct("!BBH")  # 4 bytes: kind + flags + entry count

_SEGMENT_BYTES = _SEGMENT.size

#: Framing bytes a batch frame adds over its entries' plain frames.
BATCH_HEADER_BYTES = _BATCH_HEADER.size

assert _DATA_HEADER.size == DATA_HEADER_BYTES
assert _SEQ_EXTRA.size == SEQ_EXTRA_BYTES
assert _ACK.size == ACK_BYTES
assert _ACK_BATCH_HEADER.size == ACK_BATCH_HEADER_BYTES


@dataclass(frozen=True)
class Hello:
    """Transport greeting identifying the connecting node.

    ``channel`` declares what the connection carries: ring data
    (:data:`CHANNEL_RING`, the default) or control-plane traffic
    (:data:`CHANNEL_CONTROL`).  The receiver uses it to keep the ring
    barrier ("my predecessor greeted me") from being satisfied by a
    mere control connection.
    """

    node_id: ProcessId
    channel: int = CHANNEL_RING


@dataclass(frozen=True)
class ControlFrame:
    """Layer-tagged control-plane message (membership, heartbeats).

    Mirrors the simulator's :class:`repro.net.dispatch.LayerDemux`
    envelope: ``layer`` routes to the right handler ("vsc", "fd"),
    ``inner`` is the layer's own message object.  Control messages
    carry arbitrary protocol dataclasses (flush states, recovery
    records), so the body is pickled — acceptable on the trusted
    localhost harness the live runtime targets, and every pickle
    failure is still surfaced as :class:`CodecError` only.
    """

    layer: str
    inner: Any


@dataclass
class FrameBatch:
    """Several ring-data messages coalesced into one wire frame.

    The transport builds these implicitly (it concatenates already
    encoded frames under one batch header); this dataclass exists so the
    codec can round-trip and property-test the format symmetrically.
    Only ring data may ride in a batch — greetings, control envelopes,
    and nested batches are rejected at encode *and* decode time.
    """

    messages: List[Union[FwdData, SeqData, AckBatch]] = field(
        default_factory=list
    )


#: Everything the codec can put in a frame body.
WireMessage = Union[FwdData, SeqData, AckBatch, Hello, ControlFrame, FrameBatch]

#: Message types allowed inside a :class:`FrameBatch`.
_BATCHABLE = (FwdData, SeqData, AckBatch)


def _pack(fmt: struct.Struct, *values: object) -> bytes:
    try:
        return fmt.pack(*values)
    except struct.error as exc:
        raise CodecError(f"unrepresentable field value: {exc}") from exc


def _payload_bytes(message: Union[FwdData, SeqData]) -> bytes:
    payload = message.payload
    if isinstance(payload, (bytearray, memoryview)):
        payload = bytes(payload)
    if not isinstance(payload, bytes):
        raise CodecError(
            f"live payloads must be bytes, got {type(message.payload).__name__}"
        )
    if len(payload) != message.payload_size:
        raise CodecError(
            f"payload_size={message.payload_size} but payload has "
            f"{len(payload)} bytes"
        )
    return payload


def _encode_acks(acks: List[AckMsg], container_view: int) -> bytes:
    parts = []
    for ack in acks:
        if ack.view_id != container_view:
            raise CodecError(
                f"ack {ack.message_id} has view {ack.view_id}, carrier has "
                f"view {container_view}; the 24-byte ack record carries no "
                "view field"
            )
        flags = FLAG_STABLE if ack.stable else 0
        parts.append(
            _pack(
                _ACK,
                ack.message_id.origin,
                ack.message_id.local_seq,
                ack.sequence,
                flags,
            )
        )
    return b"".join(parts)


def _encode_segment(
    segment: Optional[Tuple[MessageId, int, int]], origin: ProcessId
) -> bytes:
    if segment is None:
        return b""
    app_id, index, count = segment
    if app_id.origin != origin:
        raise CodecError(
            f"segment app id {app_id} has origin {app_id.origin}, message "
            f"has origin {origin}; the 12-byte segment record stores only "
            "the application local_seq"
        )
    return _pack(_SEGMENT, app_id.local_seq, index, count)


def encode_message(message: WireMessage) -> bytes:
    """Serialize ``message`` to a frame body (no length prefix)."""
    if isinstance(message, Hello):
        return _pack(_HELLO, KIND_HELLO, message.channel, message.node_id)

    if isinstance(message, ControlFrame):
        if not isinstance(message.layer, str):
            raise CodecError(
                f"control layer must be str, got {type(message.layer).__name__}"
            )
        try:
            body = pickle.dumps((message.layer, message.inner))
        except Exception as exc:
            raise CodecError(f"unpicklable control message: {exc}") from exc
        return _CONTROL_KIND.pack(KIND_CONTROL) + body

    if isinstance(message, FrameBatch):
        return batch_header(len(message.messages)) + b"".join(
            encode_frame(_require_batchable(inner))
            for inner in message.messages
        )

    if isinstance(message, AckBatch):
        header = _pack(
            _ACK_BATCH_HEADER,
            KIND_ACK_BATCH,
            0,
            len(message.acks),
            message.view_id,
            message.watermark,
        )
        return header + _encode_acks(message.acks, message.view_id)

    if isinstance(message, (FwdData, SeqData)):
        is_seq = isinstance(message, SeqData)
        flags = 0
        if message.segment is not None:
            flags |= FLAG_SEGMENT
        header = _pack(
            _DATA_HEADER,
            KIND_SEQ_DATA if is_seq else KIND_FWD_DATA,
            flags,
            len(message.piggybacked),
            message.message_id.origin,
            message.message_id.local_seq,
            message.origin,
            message.view_id,
            message.watermark,
        )
        parts = [header]
        if is_seq:
            parts.append(
                _pack(_SEQ_EXTRA, message.sequence, 1 if message.stable else 0)
            )
        parts.append(_encode_segment(message.segment, message.origin))
        parts.append(_encode_acks(message.piggybacked, message.view_id))
        parts.append(_payload_bytes(message))
        return b"".join(parts)

    raise CodecError(f"cannot encode {type(message).__name__}")


def _require_batchable(message: object) -> Union[FwdData, SeqData, AckBatch]:
    if not isinstance(message, _BATCHABLE):
        raise CodecError(
            f"batch entries must be ring data, got {type(message).__name__}"
        )
    return message


def batch_header(count: int) -> bytes:
    """Batch frame header for ``count`` entries (no outer length prefix)."""
    if not 0 <= count <= 0xFFFF:
        raise CodecError(f"batch entry count {count} out of range")
    return _BATCH_HEADER.pack(KIND_BATCH, 0, count)


def encode_frame(message: WireMessage) -> bytes:
    """Serialize ``message`` to a complete length-prefixed frame."""
    body = encode_message(message)
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(
            f"frame body of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _LENGTH.pack(len(body)) + body


def batch_frame_parts(frames: List[bytes]) -> List[bytes]:
    """Wire parts of a batch frame wrapping already-encoded frames.

    ``frames`` are complete length-prefixed frames exactly as
    :func:`encode_frame` produced them; they become the batch entries
    byte-for-byte, so the transport never re-encodes queued messages.
    The returned list is ready for ``StreamWriter.writelines`` — one
    prefix+header part followed by the original frame objects (no
    concatenation copy of the payloads).
    """
    body_len = BATCH_HEADER_BYTES + sum(len(f) for f in frames)
    if body_len > MAX_FRAME_BYTES:
        raise CodecError(
            f"batch body of {body_len} bytes exceeds MAX_FRAME_BYTES"
        )
    return [_LENGTH.pack(body_len) + batch_header(len(frames)), *frames]


class FrameEncoder:
    """Allocation-light frame encoder for the transport hot path.

    Packs the cached :class:`struct.Struct` headers straight into one
    reusable ``bytearray`` per transport instead of joining per-part
    ``bytes`` temporaries (the EpTO exemplar's idiom).  Output is
    byte-identical to :func:`encode_frame` — a property test enforces
    it — and every validation the slow path performs is preserved.
    Non-ring messages (greetings, control, explicit batches) fall back
    to the plain encoder; they are off the hot path by construction.
    """

    def __init__(self, initial_capacity: int = 64 * 1024) -> None:
        self._buf = bytearray(max(initial_capacity, 256))

    def _reserve(self, size: int) -> bytearray:
        if len(self._buf) < size:
            self._buf = bytearray(max(size, 2 * len(self._buf)))
        return self._buf

    def encode_frame(self, message: WireMessage) -> bytes:
        """Length-prefixed frame for ``message``; see :func:`encode_frame`."""
        if isinstance(message, (FwdData, SeqData)):
            return self._encode_data(message)
        if isinstance(message, AckBatch):
            return self._encode_ack_batch(message)
        return encode_frame(message)

    def _pack_acks(
        self,
        buf: bytearray,
        offset: int,
        acks: List[AckMsg],
        container_view: int,
    ) -> int:
        for ack in acks:
            if ack.view_id != container_view:
                raise CodecError(
                    f"ack {ack.message_id} has view {ack.view_id}, carrier "
                    f"has view {container_view}; the 24-byte ack record "
                    "carries no view field"
                )
            _ACK.pack_into(
                buf,
                offset,
                ack.message_id.origin,
                ack.message_id.local_seq,
                ack.sequence,
                FLAG_STABLE if ack.stable else 0,
            )
            offset += ACK_BYTES
        return offset

    def _encode_data(self, message: Union[FwdData, SeqData]) -> bytes:
        is_seq = isinstance(message, SeqData)
        payload = _payload_bytes(message)
        acks = message.piggybacked
        segment = message.segment
        body_len = (
            DATA_HEADER_BYTES
            + (SEQ_EXTRA_BYTES if is_seq else 0)
            + (_SEGMENT_BYTES if segment is not None else 0)
            + ACK_BYTES * len(acks)
            + len(payload)
        )
        if body_len > MAX_FRAME_BYTES:
            raise CodecError(
                f"frame body of {body_len} bytes exceeds MAX_FRAME_BYTES"
            )
        buf = self._reserve(LENGTH_PREFIX_BYTES + body_len - len(payload))
        try:
            _LENGTH.pack_into(buf, 0, body_len)
            _DATA_HEADER.pack_into(
                buf,
                LENGTH_PREFIX_BYTES,
                KIND_SEQ_DATA if is_seq else KIND_FWD_DATA,
                FLAG_SEGMENT if segment is not None else 0,
                len(acks),
                message.message_id.origin,
                message.message_id.local_seq,
                message.origin,
                message.view_id,
                message.watermark,
            )
            offset = LENGTH_PREFIX_BYTES + DATA_HEADER_BYTES
            if is_seq:
                _SEQ_EXTRA.pack_into(
                    buf, offset, message.sequence, 1 if message.stable else 0
                )
                offset += SEQ_EXTRA_BYTES
            if segment is not None:
                app_id, index, count = segment
                if app_id.origin != message.origin:
                    raise CodecError(
                        f"segment app id {app_id} has origin {app_id.origin},"
                        f" message has origin {message.origin}; the 12-byte "
                        "segment record stores only the application local_seq"
                    )
                _SEGMENT.pack_into(buf, offset, app_id.local_seq, index, count)
                offset += _SEGMENT_BYTES
            offset = self._pack_acks(buf, offset, acks, message.view_id)
        except struct.error as exc:
            raise CodecError(f"unrepresentable field value: {exc}") from exc
        # Headers are packed in place; the payload is copied exactly once,
        # by the concatenation that builds the outgoing frame.
        return bytes(memoryview(buf)[:offset]) + payload

    def _encode_ack_batch(self, message: AckBatch) -> bytes:
        acks = message.acks
        body_len = ACK_BATCH_HEADER_BYTES + ACK_BYTES * len(acks)
        if body_len > MAX_FRAME_BYTES:
            raise CodecError(
                f"frame body of {body_len} bytes exceeds MAX_FRAME_BYTES"
            )
        buf = self._reserve(LENGTH_PREFIX_BYTES + body_len)
        try:
            _LENGTH.pack_into(buf, 0, body_len)
            _ACK_BATCH_HEADER.pack_into(
                buf,
                LENGTH_PREFIX_BYTES,
                KIND_ACK_BATCH,
                0,
                len(acks),
                message.view_id,
                message.watermark,
            )
            offset = self._pack_acks(
                buf,
                LENGTH_PREFIX_BYTES + ACK_BATCH_HEADER_BYTES,
                acks,
                message.view_id,
            )
        except struct.error as exc:
            raise CodecError(f"unrepresentable field value: {exc}") from exc
        return bytes(memoryview(buf)[:offset])


class _Reader:
    """Cursor over a frame body; every read is bounds-checked.

    Accepts ``bytes`` or a ``memoryview`` (batch entries are decoded
    from zero-copy slices of the received batch body).
    """

    def __init__(self, body: Union[bytes, memoryview]) -> None:
        self.body = body
        self.offset = 0

    def unpack(self, fmt: struct.Struct) -> Tuple:
        end = self.offset + fmt.size
        if end > len(self.body):
            raise CodecError(
                f"truncated frame: needed {fmt.size} bytes at offset "
                f"{self.offset}, body has {len(self.body)}"
            )
        values = fmt.unpack_from(self.body, self.offset)
        self.offset = end
        return values

    def rest(self) -> bytes:
        # The one copy per payload: straight from the receive buffer
        # (or the batch body's memoryview slice) into its final object.
        out = self.body[self.offset:]
        self.offset = len(self.body)
        return out if isinstance(out, bytes) else bytes(out)

    def done(self) -> None:
        if self.offset != len(self.body):
            raise CodecError(
                f"{len(self.body) - self.offset} trailing bytes after frame"
            )


def _decode_acks(reader: _Reader, count: int, view_id: int) -> List[AckMsg]:
    acks = []
    for _ in range(count):
        origin, local_seq, sequence, flags = reader.unpack(_ACK)
        if flags & ~FLAG_STABLE:
            raise CodecError(f"unknown ack flags {flags:#x}")
        acks.append(
            AckMsg(
                message_id=MessageId(origin, local_seq),
                sequence=sequence,
                stable=bool(flags & FLAG_STABLE),
                view_id=view_id,
            )
        )
    return acks


def decode_batch_entries(
    body: Union[bytes, memoryview]
) -> List[Union[FwdData, SeqData, AckBatch]]:
    """Decode a batch frame body into its messages (zero-copy slicing).

    ``body`` is the whole frame body including the batch header.  Each
    entry body is sliced out of a single ``memoryview`` — no per-entry
    copy — and decoded with the ordinary per-message decoder.
    """
    view = body if isinstance(body, memoryview) else memoryview(body)
    total = len(view)
    if total < _BATCH_HEADER.size:
        raise CodecError(
            f"truncated batch header: {total} bytes, need {_BATCH_HEADER.size}"
        )
    _, flags, count = _BATCH_HEADER.unpack_from(view, 0)
    if flags != 0:
        raise CodecError(f"unknown batch flags {flags:#x}")
    offset = _BATCH_HEADER.size
    messages: List[Union[FwdData, SeqData, AckBatch]] = []
    for index in range(count):
        if offset + LENGTH_PREFIX_BYTES > total:
            raise CodecError(
                f"truncated batch: entry {index} length prefix at offset "
                f"{offset}, body has {total}"
            )
        (entry_len,) = _LENGTH.unpack_from(view, offset)
        offset += LENGTH_PREFIX_BYTES
        if entry_len > MAX_FRAME_BYTES:
            raise CodecError(
                f"batch entry {index} announces {entry_len} bytes, exceeds "
                "MAX_FRAME_BYTES"
            )
        end = offset + entry_len
        if end > total:
            raise CodecError(
                f"truncated batch: entry {index} needs {entry_len} bytes at "
                f"offset {offset}, body has {total}"
            )
        # Reject nesting *before* recursing so adversarial input cannot
        # stack batch-in-batch decodes MAX_FRAME_BYTES/8 levels deep.
        if entry_len and view[offset] == KIND_BATCH:
            raise CodecError("nested batch frames are not allowed")
        messages.append(_require_batchable(decode_message(view[offset:end])))
        offset = end
    if offset != total:
        raise CodecError(f"{total - offset} trailing bytes after batch")
    return messages


def decode_message(body: Union[bytes, memoryview]) -> WireMessage:
    """Parse one frame body back into a message.

    Raises :class:`CodecError` on truncation, trailing bytes, or an
    unknown kind byte — never anything else.
    """
    if not body:
        raise CodecError("empty frame body")
    kind = body[0]

    if kind == KIND_BATCH:
        return FrameBatch(messages=decode_batch_entries(body))

    if kind == KIND_HELLO:
        reader = _Reader(body)
        _, channel, node_id = reader.unpack(_HELLO)
        reader.done()
        if channel not in (CHANNEL_RING, CHANNEL_CONTROL):
            raise CodecError(f"unknown hello channel {channel}")
        return Hello(node_id=node_id, channel=channel)

    if kind == KIND_CONTROL:
        try:
            payload = pickle.loads(body[_CONTROL_KIND.size:])
        except Exception as exc:
            raise CodecError(f"malformed control frame: {exc}") from exc
        if (
            not isinstance(payload, tuple)
            or len(payload) != 2
            or not isinstance(payload[0], str)
        ):
            raise CodecError(
                f"control frame must carry a (layer, inner) pair, got "
                f"{type(payload).__name__}"
            )
        layer, inner = payload
        return ControlFrame(layer=layer, inner=inner)

    if kind == KIND_ACK_BATCH:
        reader = _Reader(body)
        _, flags, n_acks, view_id, watermark = reader.unpack(_ACK_BATCH_HEADER)
        if flags != 0:
            raise CodecError(f"unknown ack-batch flags {flags:#x}")
        acks = _decode_acks(reader, n_acks, view_id)
        reader.done()
        return AckBatch(acks=acks, view_id=view_id, watermark=watermark)

    if kind in (KIND_FWD_DATA, KIND_SEQ_DATA):
        reader = _Reader(body)
        (
            _,
            flags,
            n_acks,
            mid_origin,
            mid_local_seq,
            origin,
            view_id,
            watermark,
        ) = reader.unpack(_DATA_HEADER)
        if flags & ~FLAG_SEGMENT:
            raise CodecError(f"unknown data-header flags {flags:#x}")
        sequence = stable = None
        if kind == KIND_SEQ_DATA:
            sequence, stable_byte = reader.unpack(_SEQ_EXTRA)
            if stable_byte > 1:
                raise CodecError(f"non-boolean stable byte {stable_byte:#x}")
            stable = bool(stable_byte)
        segment = None
        if flags & FLAG_SEGMENT:
            app_local_seq, index, count = reader.unpack(_SEGMENT)
            segment = (MessageId(origin, app_local_seq), index, count)
        acks = _decode_acks(reader, n_acks, view_id)
        payload = reader.rest()
        common = dict(
            message_id=MessageId(mid_origin, mid_local_seq),
            origin=origin,
            payload=payload,
            payload_size=len(payload),
            view_id=view_id,
            watermark=watermark,
            piggybacked=acks,
            segment=segment,
        )
        if kind == KIND_SEQ_DATA:
            return SeqData(sequence=sequence, stable=stable, **common)
        return FwdData(**common)

    raise CodecError(f"unknown frame kind {kind:#x}")


def decode_frame(buffer: bytes) -> Tuple[WireMessage, int]:
    """Parse one complete frame from the head of ``buffer``.

    Returns ``(message, consumed_bytes)``.  Raises :class:`CodecError`
    if the buffer does not hold a complete, well-formed frame.  Stream
    transports that accumulate partial reads should use
    :func:`frame_length` first; this helper is for whole-frame buffers
    (tests, datagram-style carriers).
    """
    body_len = frame_length(buffer)
    if body_len is None or len(buffer) < LENGTH_PREFIX_BYTES + body_len:
        raise CodecError("incomplete frame")
    body = buffer[LENGTH_PREFIX_BYTES:LENGTH_PREFIX_BYTES + body_len]
    return decode_message(body), LENGTH_PREFIX_BYTES + body_len


def frame_length(buffer: bytes) -> Optional[int]:
    """Body length announced by the prefix, or ``None`` if not yet read.

    Raises :class:`CodecError` if the announced length exceeds
    :data:`MAX_FRAME_BYTES` (corrupt stream).
    """
    if len(buffer) < LENGTH_PREFIX_BYTES:
        return None
    (body_len,) = _LENGTH.unpack_from(buffer, 0)
    if body_len > MAX_FRAME_BYTES:
        raise CodecError(
            f"announced frame body of {body_len} bytes exceeds MAX_FRAME_BYTES"
        )
    return body_len
