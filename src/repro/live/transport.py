"""Asyncio ring transport: one persistent TCP connection per ring hop.

FSR's data plane is a unidirectional ring — every process sends data
only to its ring successor — so the live transport keeps exactly one
persistent outbound TCP connection (to the successor) and accepts one
inbound connection (from the predecessor).  TCP provides the reliable
FIFO channel the paper assumes; what this module adds is:

* length-prefixed framing via :mod:`repro.live.codec`;
* a ``Hello`` greeting identifying the connecting node, so the receive
  upcall carries the true source id;
* reconnect with capped exponential backoff, giving up after the same
  ``MAX_RETRIES`` budget the simulated ARQ stack uses
  (:data:`repro.net.channel.MAX_RETRIES`) — by then the peer is dead
  and membership is responsible for excluding it;
* TX backpressure: ``tx_ready`` mirrors the simulated NIC's ``tx_idle``
  gate, so ``FSRProcess``'s fair-send pump throttles on a slow socket
  exactly like it throttles on a busy simulated NIC.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import CodecError, NetworkError
from repro.live.codec import (
    LENGTH_PREFIX_BYTES,
    Hello,
    WireMessage,
    decode_message,
    encode_frame,
    frame_length,
)
from repro.net.channel import MAX_RETRIES
from repro.types import ProcessId

ReceiveHandler = Callable[[ProcessId, Any], None]

#: Outbound queue bound before ``tx_ready`` goes False (bytes).
DEFAULT_MAX_OUTBOUND_BYTES = 4 * 1024 * 1024
#: First reconnect delay; doubles per attempt up to the cap.
RECONNECT_BASE_S = 0.05
RECONNECT_CAP_S = 2.0


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one length-prefixed frame body; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(LENGTH_PREFIX_BYTES)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    body_len = frame_length(prefix)
    assert body_len is not None  # prefix is complete by construction
    try:
        return await reader.readexactly(body_len)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None


class RingTransport:
    """TCP ring hop: outbound to the successor, inbound from anyone.

    ``on_message(src, message)`` is invoked on the event loop for every
    decoded inbound frame.  ``send(dst, message)`` only accepts the
    configured successor — the ring never sends anywhere else.
    """

    def __init__(
        self,
        node_id: ProcessId,
        listen_addr: Tuple[str, int],
        successor_id: ProcessId,
        successor_addr: Tuple[str, int],
        on_message: ReceiveHandler,
        *,
        max_outbound_bytes: int = DEFAULT_MAX_OUTBOUND_BYTES,
        reconnect_base_s: float = RECONNECT_BASE_S,
        reconnect_cap_s: float = RECONNECT_CAP_S,
        max_retries: int = MAX_RETRIES,
    ) -> None:
        self.node_id = node_id
        self.listen_addr = listen_addr
        self.successor_id = successor_id
        self.successor_addr = successor_addr
        self.on_message = on_message
        self.max_outbound_bytes = max_outbound_bytes
        self.reconnect_base_s = reconnect_base_s
        self.reconnect_cap_s = reconnect_cap_s
        self.max_retries = max_retries

        self._server: Optional[asyncio.AbstractServer] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._outbound: List[bytes] = []
        self._queued_bytes = 0
        self._gate_closed = False
        self._tx_idle_callbacks: List[Callable[[], None]] = []
        self._wakeup = asyncio.Event()
        self._connected = asyncio.Event()
        self._inbound_hello = asyncio.Event()
        self._inbound_peers: Dict[ProcessId, asyncio.StreamWriter] = {}
        self._tasks: List[asyncio.Task] = []
        self._closing = False
        self._failure: Optional[str] = None

        #: Transport counters, merged into the node's result stats.
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.reconnects = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start connecting outbound."""
        host, port = self.listen_addr
        self._server = await asyncio.start_server(
            self._handle_inbound, host, port
        )
        self._tasks.append(asyncio.ensure_future(self._outbound_loop()))

    async def close(self) -> None:
        self._closing = True
        self._wakeup.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
        for writer in list(self._inbound_peers.values()):
            writer.close()

    @property
    def failure(self) -> Optional[str]:
        """Terminal transport failure (successor unreachable), if any."""
        return self._failure

    async def wait_outbound_connected(self, timeout: float) -> bool:
        """Wait until the successor connection is up."""
        try:
            await asyncio.wait_for(self._connected.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def wait_inbound_hello(self, timeout: float) -> bool:
        """Wait until some peer has connected and identified itself."""
        try:
            await asyncio.wait_for(self._inbound_hello.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # ------------------------------------------------------------------
    # TX path
    # ------------------------------------------------------------------
    @property
    def tx_ready(self) -> bool:
        """True while the outbound queue can take another message."""
        return self._queued_bytes < self.max_outbound_bytes

    @property
    def queued_bytes(self) -> int:
        """Bytes queued but not yet drained to the socket."""
        return self._queued_bytes

    def on_tx_idle(self, callback: Callable[[], None]) -> None:
        """Register a callback fired when a closed TX gate reopens."""
        self._tx_idle_callbacks.append(callback)

    def send(self, dst: ProcessId, message: WireMessage) -> None:
        """Queue ``message`` for the ring successor."""
        if dst != self.successor_id:
            raise NetworkError(
                f"ring transport at node {self.node_id} can only send to "
                f"successor {self.successor_id}, not {dst}"
            )
        frame = encode_frame(message)
        self._outbound.append(frame)
        self._queued_bytes += len(frame)
        if not self.tx_ready:
            self._gate_closed = True
        self._wakeup.set()

    async def _outbound_loop(self) -> None:
        retries = 0
        while not self._closing:
            try:
                reader, writer = await asyncio.open_connection(
                    *self.successor_addr
                )
            except OSError:
                retries += 1
                if retries > self.max_retries:
                    self._failure = (
                        f"successor {self.successor_id} unreachable after "
                        f"{self.max_retries} attempts"
                    )
                    return
                delay = min(
                    self.reconnect_cap_s,
                    self.reconnect_base_s * (2 ** (retries - 1)),
                )
                await asyncio.sleep(delay)
                continue

            if retries > 0:
                self.reconnects += 1
            retries = 0
            self._writer = writer
            try:
                writer.write(encode_frame(Hello(node_id=self.node_id)))
                await writer.drain()
                self._connected.set()
                await self._drain_queue(writer)
            except (ConnectionError, OSError):
                pass
            finally:
                self._connected.clear()
                self._writer = None
                writer.close()
            # Loop back around and reconnect (unless closing).

    async def _drain_queue(self, writer: asyncio.StreamWriter) -> None:
        while not self._closing:
            while self._outbound:
                # Peek-write-pop: a frame stays queued until drained, so
                # a connection drop resends it after reconnect instead of
                # silently losing it (duplicates are cheaper than a stuck
                # ring, and FSR suppresses re-delivered sequence numbers).
                frame = self._outbound[0]
                writer.write(frame)
                await writer.drain()
                self._outbound.pop(0)
                self._queued_bytes -= len(frame)
                self.frames_sent += 1
                self.bytes_sent += len(frame)
                if self._gate_closed and self.tx_ready:
                    self._gate_closed = False
                    for callback in list(self._tx_idle_callbacks):
                        callback()
            self._wakeup.clear()
            if self._outbound:
                continue
            await self._wakeup.wait()

    # ------------------------------------------------------------------
    # RX path
    # ------------------------------------------------------------------
    async def _handle_inbound(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer_id: Optional[ProcessId] = None
        try:
            body = await read_frame(reader)
            if body is None:
                return
            hello = decode_message(body)
            if not isinstance(hello, Hello):
                raise CodecError(
                    f"expected Hello, got {type(hello).__name__}"
                )
            peer_id = hello.node_id
            self._inbound_peers[peer_id] = writer
            self._inbound_hello.set()
            while True:
                body = await read_frame(reader)
                if body is None:
                    return
                message = decode_message(body)
                self.frames_received += 1
                self.bytes_received += LENGTH_PREFIX_BYTES + len(body)
                self.on_message(peer_id, message)
        except CodecError:
            # Corrupt peer stream: drop the connection; the peer's
            # transport reconnects and re-greets with a fresh stream.
            pass
        finally:
            if peer_id is not None:
                self._inbound_peers.pop(peer_id, None)
            writer.close()
