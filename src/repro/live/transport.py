"""Asyncio ring transport: one persistent TCP connection per ring hop.

FSR's data plane is a unidirectional ring — every process sends data
only to its ring successor — so the live transport keeps exactly one
persistent outbound TCP connection (to the successor) and accepts one
inbound connection (from the predecessor).  TCP provides the reliable
FIFO channel the paper assumes; what this module adds is:

* length-prefixed framing via :mod:`repro.live.codec`;
* a ``Hello`` greeting identifying the connecting node, so the receive
  upcall carries the true source id;
* reconnect with capped exponential backoff, giving up after the same
  ``MAX_RETRIES`` budget the simulated ARQ stack uses
  (:data:`repro.net.channel.MAX_RETRIES`) — or retrying forever when
  ``max_retries=None``, the mode live view changes run in: there a dead
  successor is membership's problem, and :meth:`RingTransport.retarget`
  re-points the hop at the new successor once a view installs;
* TX backpressure: ``tx_ready`` mirrors the simulated NIC's ``tx_idle``
  gate, so ``FSRProcess``'s fair-send pump throttles on a slow socket
  exactly like it throttles on a busy simulated NIC;
* a control plane: membership and failure-detector traffic is not
  ring-shaped (a flush coordinator talks to every member), so the
  transport keeps one lazily dialled, infinitely retried connection per
  control peer, mirroring the simulator's ``LayerDemux`` with
  layer-tagged :class:`~repro.live.codec.ControlFrame` envelopes;
* an optional fast path (``batching=BatchingConfig(...)``): each drain
  cycle coalesces every releasable queued frame into one batch frame —
  a single ``writelines`` and a single ``drain()`` per flush — riding
  pending ``AckBatch``es on the same syscall as data frames instead of
  paying a standalone send for each (DESIGN.md §5g).  With batching
  unset the transport is byte- and syscall-identical to the unbatched
  build: one frame per write, one ``drain()`` per frame.
"""

from __future__ import annotations

import asyncio
import logging
import random
import socket
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.batching import BatchingConfig
from repro.core.fsr.messages import AckBatch
from repro.errors import CodecError, NetworkError
from repro.live.codec import (
    BATCH_HEADER_BYTES,
    CHANNEL_CONTROL,
    CHANNEL_RING,
    LENGTH_PREFIX_BYTES,
    MAX_FRAME_BYTES,
    ControlFrame,
    FrameBatch,
    FrameEncoder,
    Hello,
    WireMessage,
    batch_frame_parts,
    decode_message,
    encode_frame,
    frame_length,
)
from repro.net.channel import MAX_RETRIES
from repro.types import ProcessId

logger = logging.getLogger(__name__)

ReceiveHandler = Callable[[ProcessId, Any], None]
ControlHandler = Callable[[str, ProcessId, Any], None]

#: Outbound queue bound before ``tx_ready`` goes False (bytes).
DEFAULT_MAX_OUTBOUND_BYTES = 4 * 1024 * 1024
#: First reconnect delay; doubles per attempt up to the cap.
RECONNECT_BASE_S = 0.05
RECONNECT_CAP_S = 2.0
#: Poll period while the shaper holds a link fully blocked (partition).
BLOCK_POLL_S = 0.02


def _set_nodelay(writer: asyncio.StreamWriter) -> None:
    """Disable Nagle on an outbound connection.

    The ring carries many small latency-critical frames (acks, token
    passes); without this every coalesced flush can sit behind the
    kernel's delayed-ACK/Nagle interaction.  Failures are ignored —
    some transports (tests with mock writers) have no real socket.
    """
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one length-prefixed frame body; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(LENGTH_PREFIX_BYTES)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    body_len = frame_length(prefix)
    assert body_len is not None  # prefix is complete by construction
    try:
        return await reader.readexactly(body_len)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None


class _ControlPeer:
    """One lazily dialled control connection: queue + dial/drain task.

    Control peers retry forever with capped backoff — a peer that is
    genuinely dead gets pruned when the next view installs without it
    (:meth:`RingTransport.prune_control_peers`).  Frames use the same
    peek-write-pop discipline as the ring queue, so a connection drop
    resends rather than loses.
    """

    def __init__(
        self, transport: "RingTransport", peer_id: ProcessId,
        addr: Tuple[str, int],
    ) -> None:
        self.transport = transport
        self.peer_id = peer_id
        self.addr = addr
        #: Queued (frame, earliest-release loop time) pairs.
        self.outbound: List[Tuple[bytes, float]] = []
        self.wakeup = asyncio.Event()
        self.closing = False
        self.task: asyncio.Task = asyncio.ensure_future(self._loop())

    def send(self, frame: bytes, release: float = 0.0) -> None:
        self.outbound.append((frame, release))
        self.wakeup.set()

    def close(self) -> None:
        self.closing = True
        self.wakeup.set()
        self.task.cancel()

    async def _loop(self) -> None:
        retries = 0
        transport = self.transport
        while not self.closing and not transport._closing:
            try:
                reader, writer = await asyncio.open_connection(*self.addr)
            except OSError:
                retries += 1
                await asyncio.sleep(transport._backoff(retries))
                continue
            _set_nodelay(writer)
            retries = 0
            eof: Optional[asyncio.Future] = None
            try:
                writer.write(encode_frame(Hello(
                    node_id=transport.node_id, channel=CHANNEL_CONTROL,
                )))
                await writer.drain()
                eof = asyncio.ensure_future(reader.read(1))
                loop = asyncio.get_event_loop()
                while not self.closing and not transport._closing:
                    while self.outbound:
                        if eof.done():
                            raise ConnectionResetError("control peer hung up")
                        frame, release = self.outbound[0]
                        if not await transport._pace(
                            self.peer_id, release,
                            lambda: self.closing or eof.done(),
                        ):
                            break
                        if eof.done():
                            raise ConnectionResetError("control peer hung up")
                        # Coalesce every queued, already-releasable
                        # frame into one write + one drain per wakeup —
                        # draining after every single heartbeat was a
                        # syscall per frame for no ordering benefit.
                        now = loop.time()
                        count = 1
                        while (
                            count < len(self.outbound)
                            and self.outbound[count][1] <= now
                        ):
                            count += 1
                        writer.writelines(
                            [f for f, _ in self.outbound[:count]]
                        )
                        await writer.drain()
                        del self.outbound[:count]
                        transport.control_frames_sent += count
                    self.wakeup.clear()
                    if self.outbound:
                        continue
                    waiter = asyncio.ensure_future(self.wakeup.wait())
                    try:
                        await asyncio.wait(
                            {eof, waiter},
                            return_when=asyncio.FIRST_COMPLETED,
                        )
                    finally:
                        waiter.cancel()
                    if eof.done():
                        break  # reconnect with the queue intact
            except (ConnectionError, OSError):
                pass
            finally:
                if eof is not None:
                    eof.cancel()
                writer.close()


class RingTransport:
    """TCP ring hop: outbound to the successor, inbound from anyone.

    ``on_message(src, message)`` is invoked on the event loop for every
    decoded inbound ring frame.  ``send(dst, message)`` only accepts the
    *current* ring successor — the ring never sends anywhere else; a
    view change re-points the hop via :meth:`retarget`.  Control-plane
    traffic goes through :meth:`send_control` / ``on_control`` and its
    own per-peer connections, and is counted separately so ring
    quiescence detection is not defeated by heartbeats.
    """

    def __init__(
        self,
        node_id: ProcessId,
        listen_addr: Tuple[str, int],
        successor_id: ProcessId,
        successor_addr: Tuple[str, int],
        on_message: ReceiveHandler,
        *,
        peers: Optional[Dict[ProcessId, Tuple[str, int]]] = None,
        max_outbound_bytes: int = DEFAULT_MAX_OUTBOUND_BYTES,
        reconnect_base_s: float = RECONNECT_BASE_S,
        reconnect_cap_s: float = RECONNECT_CAP_S,
        max_retries: Optional[int] = MAX_RETRIES,
        shaper: Optional[Any] = None,
        rng: Optional[random.Random] = None,
        batching: Optional[BatchingConfig] = None,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.node_id = node_id
        self.listen_addr = listen_addr
        self.successor_id = successor_id
        self.successor_addr = successor_addr
        self.on_message = on_message
        #: Control-plane upcall: ``on_control(layer, src, inner)``.
        self.on_control: Optional[ControlHandler] = None
        self.max_outbound_bytes = max_outbound_bytes
        self.reconnect_base_s = reconnect_base_s
        self.reconnect_cap_s = reconnect_cap_s
        self.max_retries = max_retries
        #: Optional egress :class:`repro.chaos.netem.NetShaper`.  When
        #: set, every queued frame carries an earliest-release loop time
        #: from ``shaper.plan()`` and the drain loops hold frames while
        #: the shaper reports the destination link blocked (partition).
        self._shaper = shaper
        #: Reconnect-jitter RNG.  Seeded per node from the run seed so
        #: live chaos runs are reproducible from ``(scenario, seed)``;
        #: the deterministic default keeps non-chaos runs stable too.
        self._rng = rng if rng is not None else random.Random(
            f"transport:{node_id}"
        )
        #: Fast-path flush policy (DESIGN.md §5g).  ``None`` keeps the
        #: transport byte- and syscall-identical to the unbatched build.
        self.batching = batching
        #: Hot-path encoder: reusable buffer, prepacked struct headers.
        self._encoder = FrameEncoder()
        #: Per-flush telemetry (frames per flush, bytes per syscall).
        self._flush_frames_hist = (
            telemetry.histogram("transport_flush_frames")
            if telemetry is not None else None
        )
        self._flush_bytes_hist = (
            telemetry.histogram("transport_flush_bytes")
            if telemetry is not None else None
        )

        self._server: Optional[asyncio.AbstractServer] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        #: Queued (frame, earliest-release loop time, is-ack, enqueue
        #: loop time) tuples.
        self._outbound: List[Tuple[bytes, float, bool, float]] = []
        self._queued_bytes = 0
        self._gate_closed = False
        self._tx_idle_callbacks: List[Callable[[], None]] = []
        self._wakeup = asyncio.Event()
        self._dial_wakeup = asyncio.Event()
        self._connected = asyncio.Event()
        self._inbound_hello = asyncio.Event()
        #: Inbound writers keyed by (peer id, channel).
        self._inbound_peers: Dict[Tuple[ProcessId, int], asyncio.StreamWriter] = {}
        #: Addresses control connections may dial (from the cluster config).
        self._peer_addrs: Dict[ProcessId, Tuple[str, int]] = dict(peers or {})
        self._control_peers: Dict[ProcessId, _ControlPeer] = {}
        self._tasks: List[asyncio.Task] = []
        self._closing = False
        self._failure: Optional[str] = None
        #: Bumped by retarget(); dial/drain loops abandon stale epochs.
        self._epoch = 0

        #: Ring-data transport counters, merged into the node's result
        #: stats (and polled for quiescence — control traffic excluded).
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.reconnects = 0
        self.retargets = 0
        self.control_frames_sent = 0
        self.control_frames_received = 0
        #: Times the TX gate transitioned open -> closed (backpressure).
        self.tx_stalls = 0
        #: High-water mark of the outbound queue depth, in bytes.
        self.queued_bytes_hwm = 0
        #: Fast-path counters: drain cycles (one write + one drain each,
        #: counted in both modes), batch frames sent, frames that rode
        #: inside them, AckBatches that shared a flush with data instead
        #: of paying their own syscall, and batch frames received.
        self.flushes = 0
        self.batches_sent = 0
        self.batched_frames = 0
        self.acks_ridden = 0
        self.batches_received = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start connecting outbound."""
        host, port = self.listen_addr
        self._server = await asyncio.start_server(
            self._handle_inbound, host, port
        )
        self._tasks.append(asyncio.ensure_future(self._outbound_loop()))

    async def close(self) -> None:
        self._closing = True
        self._wakeup.set()
        self._dial_wakeup.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for peer in list(self._control_peers.values()):
            peer.close()
        pending = list(self._tasks) + [
            p.task for p in self._control_peers.values()
        ]
        self._control_peers.clear()
        for task in pending:
            task.cancel()
        for task in pending:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
        for writer in list(self._inbound_peers.values()):
            writer.close()

    @property
    def failure(self) -> Optional[str]:
        """Terminal transport failure (successor unreachable), if any."""
        return self._failure

    async def wait_outbound_connected(self, timeout: float) -> bool:
        """Wait until the successor connection is up."""
        try:
            await asyncio.wait_for(self._connected.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def wait_inbound_hello(self, timeout: float) -> bool:
        """Wait until some peer has connected the *ring* channel."""
        try:
            await asyncio.wait_for(self._inbound_hello.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def _backoff(self, retries: int) -> float:
        base = min(
            self.reconnect_cap_s,
            self.reconnect_base_s * (2 ** min(retries - 1, 16)),
        )
        # Jitter desynchronises reconnect stampedes after a partition
        # heals; drawn from the node's seeded RNG, not the global one,
        # so a chaos run replays identically from its seed.
        return base * (0.75 + 0.5 * self._rng.random())

    def _plan_release(self, dst: ProcessId, nbytes: int, channel: str) -> float:
        """Earliest loop time the next frame to ``dst`` may hit the wire."""
        if self._shaper is None:
            return 0.0
        loop = asyncio.get_event_loop()
        return self._shaper.plan(dst, nbytes, loop.time(), channel=channel)

    async def _pace(
        self, dst: ProcessId, release: float, aborted: Callable[[], bool]
    ) -> bool:
        """Hold the head frame until the shaper lets it onto the wire.

        Sleeps until ``release`` (event-loop time, stamped at enqueue so
        per-frame delays overlap instead of serialising), then polls
        while the shaper reports the link to ``dst`` blocked (partition).
        Returns ``False`` when ``aborted()`` fires or the transport is
        closing; the caller re-checks its own state before writing.
        """
        if self._shaper is None:
            return True
        loop = asyncio.get_event_loop()
        while not (self._closing or aborted()):
            delay = release - loop.time()
            if delay > 0:
                # Cap the sleep so aborts (retarget, peer EOF, close)
                # are noticed promptly even under long shaped delays.
                await asyncio.sleep(min(delay, BLOCK_POLL_S))
                continue
            if self._shaper.is_blocked(dst):
                await asyncio.sleep(BLOCK_POLL_S)
                continue
            return True
        return False

    # ------------------------------------------------------------------
    # Ring re-wiring (view changes)
    # ------------------------------------------------------------------
    def retarget(
        self, successor_id: ProcessId, successor_addr: Tuple[str, int]
    ) -> None:
        """Re-point the ring hop at a new successor (view install).

        Queued frames are dropped: they carry the superseded view's id,
        so the new successor would discard them on arrival anyway, and
        the origin re-broadcasts anything that matters after the view
        change.  A closed TX gate reopens (asynchronously, so the
        protocol's pump runs after the caller finishes installing the
        new ring, not reentrantly from inside it).  No-op when the
        successor is unchanged — in-flight traffic survives the view
        change on the same connection.
        """
        successor_addr = (successor_addr[0], successor_addr[1])
        if (
            successor_id == self.successor_id
            and successor_addr == self.successor_addr
        ):
            return
        self.successor_id = successor_id
        self.successor_addr = successor_addr
        self._epoch += 1
        self.retargets += 1
        logger.info(
            "node %d: ring retargeted to successor %d at %s:%d",
            self.node_id, successor_id, successor_addr[0], successor_addr[1],
        )
        self._outbound.clear()
        self._queued_bytes = 0
        self._failure = None
        self._connected.clear()
        if self._gate_closed:
            self._gate_closed = False
            loop = asyncio.get_event_loop()
            for callback in list(self._tx_idle_callbacks):
                loop.call_soon(callback)
        if self._writer is not None:
            self._writer.close()
        self._wakeup.set()
        self._dial_wakeup.set()

    # ------------------------------------------------------------------
    # TX path (ring data)
    # ------------------------------------------------------------------
    @property
    def tx_ready(self) -> bool:
        """True while the outbound queue can take another message."""
        return self._queued_bytes < self.max_outbound_bytes

    @property
    def queued_bytes(self) -> int:
        """Bytes queued but not yet drained to the socket."""
        return self._queued_bytes

    def on_tx_idle(self, callback: Callable[[], None]) -> None:
        """Register a callback fired when a closed TX gate reopens."""
        self._tx_idle_callbacks.append(callback)

    def send(self, dst: ProcessId, message: WireMessage) -> None:
        """Queue ``message`` for the ring successor."""
        if dst != self.successor_id:
            raise NetworkError(
                f"ring transport at node {self.node_id} can only send to "
                f"successor {self.successor_id}, not {dst}"
            )
        frame = self._encoder.encode_frame(message)
        release = self._plan_release(dst, len(frame), "ring")
        self._outbound.append((
            frame,
            release,
            isinstance(message, AckBatch),
            asyncio.get_event_loop().time(),
        ))
        self._queued_bytes += len(frame)
        if self._queued_bytes > self.queued_bytes_hwm:
            self.queued_bytes_hwm = self._queued_bytes
        if not self.tx_ready:
            if not self._gate_closed:
                self.tx_stalls += 1
                logger.debug(
                    "node %d: TX gate closed at %d queued bytes",
                    self.node_id, self._queued_bytes,
                )
            self._gate_closed = True
        self._wakeup.set()

    async def _outbound_loop(self) -> None:
        retries = 0
        epoch = self._epoch
        while not self._closing:
            if self._epoch != epoch:
                epoch = self._epoch
                retries = 0
            addr = self.successor_addr
            try:
                reader, writer = await asyncio.open_connection(*addr)
            except OSError:
                if self._epoch != epoch:
                    continue  # retargeted while dialling the old address
                retries += 1
                if self.max_retries is not None and retries > self.max_retries:
                    self._failure = (
                        f"successor {self.successor_id} unreachable after "
                        f"{self.max_retries} attempts"
                    )
                    logger.error("node %d: %s", self.node_id, self._failure)
                    return
                self._dial_wakeup.clear()
                try:
                    await asyncio.wait_for(
                        self._dial_wakeup.wait(), self._backoff(retries)
                    )
                except asyncio.TimeoutError:
                    pass
                continue
            if self._epoch != epoch:
                writer.close()
                continue
            _set_nodelay(writer)

            if retries > 0:
                self.reconnects += 1
                logger.warning(
                    "node %d: reconnected to successor %d after %d failed "
                    "dial(s)", self.node_id, self.successor_id, retries,
                )
            retries = 0
            self._writer = writer
            try:
                writer.write(encode_frame(Hello(node_id=self.node_id)))
                await writer.drain()
                self._connected.set()
                await self._drain_queue(reader, writer, epoch)
            except (ConnectionError, OSError):
                pass
            finally:
                self._connected.clear()
                self._writer = None
                writer.close()
            # Loop back around and reconnect (unless closing).

    async def _drain_queue(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        epoch: int,
    ) -> None:
        # The successor never sends on this socket, so any readable
        # byte — in practice EOF — means it hung up.  Watching for it
        # here (instead of discovering the corpse on the next write)
        # keeps queued frames queued when the peer dies, so a restart
        # or retarget resends them instead of feeding a dead kernel
        # buffer.
        eof = asyncio.ensure_future(reader.read(1))
        batching = self.batching
        loop = asyncio.get_event_loop()
        try:
            while not self._closing and self._epoch == epoch:
                while self._outbound and self._epoch == epoch:
                    if eof.done():
                        return  # peer gone; head frame stays queued
                    # Peek-write-pop: a frame stays queued until
                    # drained, so a connection drop resends it after
                    # reconnect instead of silently losing it
                    # (duplicates are cheaper than a stuck ring, and
                    # FSR suppresses re-delivered sequence numbers).
                    frame, release, _, t_enq = self._outbound[0]
                    if not await self._pace(
                        self.successor_id, release,
                        lambda: self._epoch != epoch or eof.done(),
                    ):
                        return  # retargeted, peer gone, or closing
                    if batching is None:
                        # Unbatched build: one frame per write, one
                        # drain per frame — byte- and syscall-identical
                        # to the pre-fastpath transport (the parity
                        # baseline the benchmarks compare against).
                        writer.write(frame)
                        await writer.drain()
                        if self._epoch != epoch:
                            return  # retargeted mid-drain; queue reset
                        self._pop_flushed(1)
                        self._note_flush(1, len(frame))
                        continue
                    if not await self._hold_for_batch(
                        batching, t_enq, epoch, eof, loop
                    ):
                        return
                    frames, is_ack = self._collect_batch(batching, loop)
                    if len(frames) == 1:
                        # A lone releasable message ships as a plain
                        # frame: byte-identical to the unbatched wire,
                        # no holding cost once max_delay_s expired.
                        writer.write(frames[0])
                        wire = len(frames[0])
                    else:
                        parts = batch_frame_parts(frames)
                        writer.writelines(parts)
                        wire = sum(len(p) for p in parts)
                    await writer.drain()
                    if self._epoch != epoch:
                        return  # retargeted mid-drain; queue was reset
                    self._pop_flushed(len(frames))
                    self._note_flush(len(frames), wire, is_ack)
                self._wakeup.clear()
                if self._outbound:
                    continue
                waiter = asyncio.ensure_future(self._wakeup.wait())
                try:
                    await asyncio.wait(
                        {eof, waiter}, return_when=asyncio.FIRST_COMPLETED
                    )
                finally:
                    waiter.cancel()
                if eof.done():
                    return
        finally:
            eof.cancel()

    async def _hold_for_batch(
        self,
        batching: BatchingConfig,
        head_t_enq: float,
        epoch: int,
        eof: "asyncio.Future",
        loop: asyncio.AbstractEventLoop,
    ) -> bool:
        """Hold the flush briefly so more frames can join the batch.

        Mirrors the simulator's pack rule: flush when the byte or
        message threshold is reached, or once the *head* frame has
        waited ``max_delay_s`` since enqueue — the bound on added
        latency.  Returns ``False`` if the connection/epoch died while
        holding.
        """
        while (
            not self._closing
            and self._epoch == epoch
            and not eof.done()
            and len(self._outbound) < batching.max_batch_messages
            and self._queued_bytes < batching.max_batch_bytes
        ):
            remaining = head_t_enq + batching.max_delay_s - loop.time()
            if remaining <= 0:
                break
            self._wakeup.clear()
            waiter = asyncio.ensure_future(self._wakeup.wait())
            try:
                await asyncio.wait(
                    {eof, waiter},
                    timeout=remaining,
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                waiter.cancel()
        return not (self._closing or self._epoch != epoch or eof.done())

    def _collect_batch(
        self, batching: BatchingConfig, loop: asyncio.AbstractEventLoop
    ) -> Tuple[List[bytes], List[bool]]:
        """Frames (and their is-ack flags) joining this flush.

        Takes the longest queue prefix that fits ``max_batch_messages``/
        ``max_batch_bytes`` (always at least the head frame) and whose
        shaped release times have passed — coalescing an unreleased
        frame would let a batch overtake the shaper's schedule.
        """
        now = loop.time() if self._shaper is not None else 0.0
        frames: List[bytes] = []
        is_ack: List[bool] = []
        total = 0
        for frame, release, ack, _ in self._outbound:
            if frames:
                if len(frames) >= batching.max_batch_messages:
                    break
                if total + len(frame) > batching.max_batch_bytes:
                    break
                if (
                    BATCH_HEADER_BYTES + total + len(frame)
                    > MAX_FRAME_BYTES
                ):
                    break
                if release > now:
                    break
            frames.append(frame)
            is_ack.append(ack)
            total += len(frame)
        return frames, is_ack

    def _pop_flushed(self, count: int) -> None:
        """Dequeue ``count`` drained frames and reopen the TX gate."""
        for _ in range(count):
            frame = self._outbound.pop(0)[0]
            self._queued_bytes -= len(frame)
            self.frames_sent += 1
        if self._gate_closed and self.tx_ready:
            self._gate_closed = False
            for callback in list(self._tx_idle_callbacks):
                callback()

    def _note_flush(
        self, count: int, wire_bytes: int, is_ack: Optional[List[bool]] = None
    ) -> None:
        """Account one write+drain cycle in counters and telemetry."""
        self.flushes += 1
        self.bytes_sent += wire_bytes
        if count > 1:
            self.batches_sent += 1
            self.batched_frames += count
            if is_ack is not None:
                acks = sum(is_ack)
                if acks and acks < count:
                    # AckBatches sharing the syscall with data frames:
                    # the live analogue of the sim's piggybacked acks.
                    self.acks_ridden += acks
        if self._flush_frames_hist is not None:
            self._flush_frames_hist.observe(count)
            self._flush_bytes_hist.observe(wire_bytes)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def send_control(self, dst: ProcessId, layer: str, message: Any) -> None:
        """Queue a layer-tagged control message for ``dst``.

        Unlike the ring hop, control traffic may address any configured
        peer; the connection is dialled on first use and retried
        forever until :meth:`prune_control_peers` drops the peer.
        """
        if dst == self.node_id:
            raise NetworkError(
                f"node {self.node_id}: control plane does not loop back "
                "to self (local sends go through the scheduler)"
            )
        peer = self._control_peers.get(dst)
        if peer is None:
            addr = self._peer_addrs.get(dst)
            if addr is None:
                raise NetworkError(
                    f"node {self.node_id}: no address configured for "
                    f"control peer {dst}"
                )
            peer = _ControlPeer(self, dst, addr)
            self._control_peers[dst] = peer
        frame = encode_frame(ControlFrame(layer=layer, inner=message))
        peer.send(frame, self._plan_release(dst, len(frame), "ctl"))

    def prune_control_peers(self, keep) -> None:
        """Drop control connections to peers outside ``keep``.

        Called on view install: heartbeats and flush retries to an
        excluded (dead) member would otherwise dial it forever.
        """
        keep = set(keep)
        for pid in list(self._control_peers):
            if pid not in keep:
                self._control_peers.pop(pid).close()

    # ------------------------------------------------------------------
    # RX path
    # ------------------------------------------------------------------
    async def _handle_inbound(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer_key: Optional[Tuple[ProcessId, int]] = None
        try:
            body = await read_frame(reader)
            if body is None:
                return
            hello = decode_message(body)
            if not isinstance(hello, Hello):
                raise CodecError(
                    f"expected Hello, got {type(hello).__name__}"
                )
            peer_id = hello.node_id
            channel = hello.channel
            peer_key = (peer_id, channel)
            self._inbound_peers[peer_key] = writer
            if channel == CHANNEL_RING:
                self._inbound_hello.set()
            while True:
                body = await read_frame(reader)
                if body is None:
                    return
                message = decode_message(body)
                if channel == CHANNEL_CONTROL:
                    if not isinstance(message, ControlFrame):
                        raise CodecError(
                            "expected ControlFrame on control channel, "
                            f"got {type(message).__name__}"
                        )
                    self.control_frames_received += 1
                    if self.on_control is not None:
                        self.on_control(message.layer, peer_id, message.inner)
                elif isinstance(message, FrameBatch):
                    # One coalesced flush from the predecessor: unpack
                    # and deliver each ride-along in wire order.
                    self.batches_received += 1
                    self.frames_received += len(message.messages)
                    self.bytes_received += LENGTH_PREFIX_BYTES + len(body)
                    for inner in message.messages:
                        self.on_message(peer_id, inner)
                else:
                    self.frames_received += 1
                    self.bytes_received += LENGTH_PREFIX_BYTES + len(body)
                    self.on_message(peer_id, message)
        except CodecError:
            # Corrupt peer stream: drop the connection; the peer's
            # transport reconnects and re-greets with a fresh stream.
            pass
        finally:
            if peer_key is not None:
                self._inbound_peers.pop(peer_key, None)
            writer.close()
