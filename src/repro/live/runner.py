"""Multi-process localhost cluster launcher and live benchmark driver.

``run_live_cluster(spec)`` is what ``python -m repro live`` executes:

1. allocate one loopback TCP port per node and write a
   :class:`~repro.live.node.LiveNodeConfig` JSON per node;
2. spawn one OS process per FSR process (``python -m repro live-node``),
   so marshalling and protocol CPU genuinely run in parallel, like the
   paper's one-host-per-process cluster;
3. collect each node's JSON result, rebase all timestamps to the
   earliest node start (the monotonic clock is system-wide, so
   cross-process timestamps are directly comparable), and merge them
   into the same :class:`~repro.cluster.results.ExperimentResult`
   container simulated runs produce;
4. verify the merged logs with the standard correctness checkers, and
   compute throughput/latency metrics with the standard collector;
5. optionally run the *simulator* on the same configuration, so
   ``BENCH_live.json`` reports measured and predicted numbers side by
   side — the cross-validation the ROADMAP asks for.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.checker.order import check_all
from repro.cluster.config import ClusterConfig
from repro.cluster.results import AppDelivery, ExperimentResult
from repro.core.api import DeliveryLog
from repro.core.fsr.config import FSRConfig
from repro.errors import ConfigurationError, NetworkError
from repro.live.node import LiveNodeConfig
from repro.metrics.collector import ExperimentMetrics, collect_metrics
from repro.obs.analyze import (
    StageBreakdown,
    crosscheck_latency,
    ring_breakdowns,
    stage_breakdown,
)
from repro.obs.journal import Timeline, merge_span_journals
from repro.types import BroadcastRecord, Delivery, MessageId, ProcessId
from repro.workloads.patterns import KToNPattern
from repro.workloads.driver import WorkloadOutcome

#: Extra wall-clock slack past a node's own hard cap before we kill it.
_KILL_SLACK_S = 30.0
#: Simulated comparison runs cap messages per sender to stay quick.
_SIM_MESSAGES_CAP = 30


@dataclass
class LiveClusterSpec:
    """One live loopback benchmark configuration."""

    processes: int = 4
    senders: int = 1
    t: int = 1
    #: Concurrent FSR rings (``repro.protocols.multiring``); 1 runs the
    #: classic single-ring stack.  Each extra ring gets its own TCP port
    #: per node.
    shards: int = 1
    message_bytes: int = 100_000
    duration_s: float = 5.0
    window: int = 4
    host: str = "127.0.0.1"
    settle_s: float = 0.5
    quiet_s: float = 0.5
    max_run_s: float = 60.0
    connect_timeout_s: float = 10.0
    #: Also run the simulator on this configuration for comparison.
    sim_compare: bool = True
    #: Run live membership (heartbeat detector + flush over TCP).
    view_changes: bool = False
    heartbeat_interval_s: float = 0.1
    heartbeat_timeout_s: float = 1.0
    #: Failure-detector flavour for view-change runs ("heartbeat" or
    #: "adaptive"); hostile-network campaigns run "adaptive".
    detector_mode: str = "heartbeat"
    #: Link-level fault events (serialised ``FaultEvent`` dicts) every
    #: node's egress shaper enforces, plus the (scenario, seed) pair the
    #: shapers derive their per-link RNG streams from.
    netem_events: List[Dict[str, Any]] = field(default_factory=list)
    netem_scenario: str = ""
    netem_seed: int = 0
    #: Seeds each node's transport reconnect jitter.
    run_seed: int = 0
    #: Primary-partition guard on every node's membership layer.
    require_quorum: bool = False
    #: Fixed-count workload (overrides ``duration_s`` as the stop rule).
    messages_per_sender: Optional[int] = None
    #: Collect per-message lifecycle spans + telemetry (``repro.obs``).
    spans: bool = False
    #: Python logging level for the node processes ("INFO", "DEBUG", ...).
    log_level: Optional[str] = None
    #: Transport fast-path flush thresholds (DESIGN.md §5g); all three
    #: ``None`` ships one frame per syscall, byte-identical to the
    #: unbatched wire.  Validation matches the sim's ``BatchingConfig``.
    batch_bytes: Optional[int] = None
    batch_messages: Optional[int] = None
    batch_delay_s: Optional[float] = None
    #: Run a client-facing session server on every node
    #: (``repro.serve``); implies ``senders == 0`` — client sessions
    #: are the only broadcast source, and the launcher owns termination.
    serve: bool = False
    #: Leader lease duration for locally served reads (serve runs).
    lease_s: float = 0.8
    #: Request tracing (``repro.obs.reqtrace``): servers journal
    #: request-lifecycle events.  Requires ``spans`` (the events ride
    #: the span journals) and only does anything for serve runs.
    trace_requests: bool = False
    #: Live metrics plane: every node serves ``/metrics`` + ``/healthz``
    #: on its own loopback port (``LiveCluster.metrics_addresses``).
    metrics: bool = False
    #: Fixed base for the metrics ports (node ``i`` listens on
    #: ``base + i``); 0 allocates ephemeral ports like everything else.
    metrics_base_port: int = 0
    #: Directory for per-node flamegraph-collapsed CPU profiles
    #: (``node<id>.collapsed.txt``); ``None`` disables profiling.
    #: Deliberately not the run's tempdir — profiles outlive the run.
    profile_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.processes < 2:
            raise ConfigurationError("a live ring needs at least 2 processes")
        low = 0 if self.serve else 1
        if not low <= self.senders <= self.processes:
            raise ConfigurationError(
                f"senders={self.senders} out of range for "
                f"n={self.processes}"
            )
        if self.serve and self.senders != 0:
            raise ConfigurationError(
                "serve clusters take their load from client sessions; "
                "set senders=0"
            )
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.trace_requests and not self.spans:
            raise ConfigurationError(
                "trace_requests rides the span journals; enable spans"
            )
        if self.shards < 1:
            raise ConfigurationError("shards must be at least 1")
        # Shared BatchConfig validation with the sim path: nonpositive
        # thresholds raise ConfigurationError here, not at node startup.
        from repro.core.batching import batching_config_from_flags

        batching_config_from_flags(
            self.batch_bytes, self.batch_messages, self.batch_delay_s
        )

    @property
    def sender_ids(self) -> Tuple[ProcessId, ...]:
        """First ``senders`` ring positions drive the workload, like the
        paper's k-to-n benchmark."""
        return tuple(range(self.senders))


@dataclass
class LiveRunResult:
    """Everything one live run produced."""

    result: ExperimentResult
    outcome: WorkloadOutcome
    metrics: ExperimentMetrics
    node_records: Dict[ProcessId, Dict[str, Any]]
    order_ok: bool
    order_error: Optional[str]
    timed_out: bool
    #: Merged cross-node span timeline (``spec.spans`` runs only).
    timeline: Optional[Timeline] = None
    #: Latency stage breakdown over the timeline, cross-checked against
    #: the collector's end-to-end latency.
    breakdown: Optional[StageBreakdown] = None
    #: Per-inner-ring breakdowns (multiring runs with spans only).
    per_ring_breakdown: Optional[Dict[int, StageBreakdown]] = None


def _free_ports(host: str, count: int) -> List[int]:
    """Allocate ``count`` distinct free TCP ports by binding to 0."""
    sockets: List[socket.socket] = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def _node_env() -> Dict[str, str]:
    """Subprocess environment that can ``import repro``."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    return env


class LiveCluster:
    """A spawned localhost cluster plus the bookkeeping to reap it.

    Spawns one ``python -m repro live-node`` subprocess per member and
    guarantees — via :meth:`shutdown`, which callers must run in a
    ``finally`` block — that every child is killed *and waited on*, so
    neither a node that failed to bind its port nor a crashed launcher
    leaves orphaned siblings or zombies behind.
    """

    def __init__(
        self,
        spec: LiveClusterSpec,
        workdir: str,
        *,
        journals: bool = False,
    ) -> None:
        self.spec = spec
        self.members = list(range(spec.processes))
        serve_extra = spec.processes if spec.serve else 0
        metrics_extra = (
            spec.processes
            if spec.metrics and not spec.metrics_base_port
            else 0
        )
        ports = _free_ports(
            spec.host, spec.processes * spec.shards + serve_extra + metrics_extra
        )
        #: Client-facing session server address per node (serve runs).
        self.serve_addresses: Dict[ProcessId, Tuple[str, int]] = (
            {
                pid: (spec.host, ports[spec.processes * spec.shards + pid])
                for pid in self.members
            }
            if spec.serve
            else {}
        )
        #: Live ``/metrics`` + ``/healthz`` address per node.
        self.metrics_addresses: Dict[ProcessId, Tuple[str, int]] = {}
        if spec.metrics:
            self.metrics_addresses = {
                pid: (
                    spec.host,
                    spec.metrics_base_port + pid
                    if spec.metrics_base_port
                    else ports[spec.processes * spec.shards + serve_extra + pid],
                )
                for pid in self.members
            }
        # One port per (node, ring); ring 0 is the canonical address map
        # (and the control plane), extra rings are pure data planes.
        self.ring_addresses = [
            {
                pid: (spec.host, ports[ring * spec.processes + pid])
                for pid in self.members
            }
            for ring in range(spec.shards)
        ]
        self.addresses = self.ring_addresses[0]
        self.out_paths: Dict[ProcessId, str] = {}
        self.journal_paths: Dict[ProcessId, str] = {}
        self.span_paths: Dict[ProcessId, str] = {}
        self.procs: Dict[ProcessId, subprocess.Popen] = {}
        if spec.profile_dir is not None:
            os.makedirs(spec.profile_dir, exist_ok=True)
        env = _node_env()
        try:
            for pid in self.members:
                journal_path = (
                    os.path.join(workdir, f"node{pid}.journal.jsonl")
                    if journals
                    else None
                )
                span_path = (
                    os.path.join(workdir, f"node{pid}.spans.jsonl")
                    if spec.spans
                    else None
                )
                profile_path = (
                    os.path.join(
                        spec.profile_dir, f"node{pid}.collapsed.txt"
                    )
                    if spec.profile_dir is not None
                    else None
                )
                config = LiveNodeConfig(
                    node_id=pid,
                    members=self.members,
                    addresses=self.addresses,
                    t=spec.t,
                    shards=spec.shards,
                    ring_addresses=(
                        self.ring_addresses if spec.shards > 1 else []
                    ),
                    senders=list(spec.sender_ids),
                    message_bytes=spec.message_bytes,
                    duration_s=spec.duration_s,
                    window=spec.window,
                    settle_s=spec.settle_s,
                    quiet_s=spec.quiet_s,
                    max_run_s=spec.max_run_s,
                    connect_timeout_s=spec.connect_timeout_s,
                    view_changes=spec.view_changes,
                    heartbeat_interval_s=spec.heartbeat_interval_s,
                    heartbeat_timeout_s=spec.heartbeat_timeout_s,
                    detector_mode=spec.detector_mode,
                    netem_events=list(spec.netem_events),
                    netem_scenario=spec.netem_scenario,
                    netem_seed=spec.netem_seed,
                    run_seed=spec.run_seed,
                    require_quorum=spec.require_quorum,
                    messages_per_sender=spec.messages_per_sender,
                    serve_addr=self.serve_addresses.get(pid),
                    lease_s=spec.lease_s,
                    journal_path=journal_path,
                    span_path=span_path,
                    trace_requests=spec.trace_requests,
                    metrics_addr=self.metrics_addresses.get(pid),
                    profile_path=profile_path,
                    log_level=spec.log_level,
                    batch_bytes=spec.batch_bytes,
                    batch_messages=spec.batch_messages,
                    batch_delay_s=spec.batch_delay_s,
                )
                config_path = os.path.join(workdir, f"node{pid}.json")
                out_path = os.path.join(workdir, f"node{pid}.out.json")
                with open(config_path, "w") as fh:
                    json.dump(config.to_dict(), fh)
                self.out_paths[pid] = out_path
                if journal_path is not None:
                    self.journal_paths[pid] = journal_path
                if span_path is not None:
                    self.span_paths[pid] = span_path
                self.procs[pid] = subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "live-node",
                        "--config",
                        config_path,
                        "--out",
                        out_path,
                    ],
                    env=env,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                )
        except BaseException:
            # Spawning sibling k+1 failed: reap siblings 0..k before
            # propagating, or they outlive the launcher.
            self.shutdown()
            raise

    def kill(self, pid: ProcessId) -> bool:
        """SIGKILL one node; True if it was still running."""
        proc = self.procs[pid]
        if proc.poll() is not None:
            return False
        proc.kill()
        proc.wait()
        return True

    def terminate(self, skip: Optional[set] = None) -> None:
        """SIGTERM every still-running non-skipped node (graceful stop)."""
        for pid, proc in self.procs.items():
            if pid in (skip or set()) or proc.poll() is not None:
                continue
            proc.terminate()

    def wait(
        self,
        deadline_s: float,
        *,
        skip: Optional[set] = None,
        fail_fast: bool = True,
    ) -> None:
        """Wait for every non-skipped node to exit.

        With ``fail_fast`` (the default), a node exiting nonzero stops
        the wait immediately — there is no point holding the full
        deadline when a node already died at startup; the caller's
        ``finally: shutdown()`` reaps the survivors.
        """
        start = time.monotonic()
        pending = {
            pid: proc
            for pid, proc in self.procs.items()
            if pid not in (skip or set())
        }
        while pending and time.monotonic() - start < deadline_s:
            for pid in list(pending):
                if pending[pid].poll() is not None:
                    del pending[pid]
                    if fail_fast and self.procs[pid].returncode != 0:
                        return
            if pending:
                time.sleep(0.05)
        if pending:
            for proc in pending.values():
                proc.kill()
                proc.wait()
            raise NetworkError(
                f"live nodes {sorted(pending)} still running after "
                f"{deadline_s:.0f}s; killed"
            )

    def raise_on_failures(self, *, skip: Optional[set] = None) -> None:
        """Collect stderr of nonzero exits and raise if any."""
        failures = []
        for pid, proc in self.procs.items():
            if pid in (skip or set()) or proc.poll() is None:
                continue
            _, stderr = proc.communicate()
            if proc.returncode != 0:
                tail = stderr.decode(errors="replace").strip().splitlines()
                failures.append(
                    f"node {pid} exited {proc.returncode}: "
                    + ("; ".join(tail[-3:]) if tail else "<no stderr>")
                )
        if failures:
            raise NetworkError("live run failed: " + " | ".join(failures))

    def collect(self, *, skip: Optional[set] = None) -> Dict[ProcessId, Dict[str, Any]]:
        """Load the result record of every non-skipped node."""
        records: Dict[ProcessId, Dict[str, Any]] = {}
        for pid, path in self.out_paths.items():
            if pid in (skip or set()):
                continue
            with open(path) as fh:
                records[pid] = json.load(fh)
        return records

    def shutdown(self) -> None:
        """Kill and *reap* every child still alive. Idempotent."""
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.kill()
        for proc in self.procs.values():
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass


def merge_span_timeline(
    cluster: LiveCluster, records: Dict[ProcessId, Dict[str, Any]]
) -> Optional[Timeline]:
    """Merge the cluster's span journals, rebased to the records' origin.

    The rebase origin is the earliest node ``start_time`` — the *same*
    origin :func:`merge_node_records` uses — so span timestamps line up
    exactly with the merged :class:`ExperimentResult` and the stage
    breakdown can be cross-checked against the metrics collector.
    """
    if not cluster.span_paths:
        return None
    t0 = min(record["start_time"] for record in records.values())
    return merge_span_journals(cluster.span_paths, t0=t0)


def launch_live_cluster(
    spec: LiveClusterSpec,
) -> Tuple[Dict[ProcessId, Dict[str, Any]], Optional[Timeline]]:
    """Run the multi-process cluster; returns per-node records and the
    merged span timeline (``None`` unless ``spec.spans``)."""
    deadline_s = spec.connect_timeout_s + spec.max_run_s + _KILL_SLACK_S
    with tempfile.TemporaryDirectory(prefix="repro-live-") as workdir:
        cluster = LiveCluster(spec, workdir)
        try:
            cluster.wait(deadline_s)
            cluster.raise_on_failures()
            records = cluster.collect()
            # Span journals live in the tempdir — merge before it goes.
            return records, merge_span_timeline(cluster, records)
        finally:
            cluster.shutdown()


def load_journal_record(
    pid: ProcessId, path: str
) -> Optional[Dict[str, Any]]:
    """Rebuild a partial node record from a crash-surviving journal.

    Returns ``None`` when the node never reached its start barrier (no
    ``start`` line).  A torn final line — possible when the node was
    SIGKILLed mid-write — is silently dropped; every *flushed* line
    before it is intact.
    """
    events: List[Dict[str, Any]] = []
    try:
        with open(path) as fh:
            for line in fh:
                try:
                    events.append(json.loads(line))
                except ValueError:
                    break  # torn tail line
    except OSError:
        return None
    start = next((e for e in events if e.get("type") == "start"), None)
    if start is None:
        return None
    last_time = max(
        (e["time"] for e in events if "time" in e), default=start["time"]
    )
    record: Dict[str, Any] = {
        "schema": "repro.live_node_journal/1",
        "node_id": pid,
        "start_time": start["time"],
        "end_time": last_time,
        "timed_out": False,
        "deliveries": [],
        "app_deliveries": [],
        "broadcasts": [],
        "sent": [],
        "views": [],
    }
    for event in events:
        kind = event.get("type")
        if kind == "broadcast":
            record["broadcasts"].append(
                {
                    "origin": event["origin"],
                    "local_seq": event["local_seq"],
                    "size_bytes": event["size_bytes"],
                    "submit_time": event["submit_time"],
                }
            )
            record["sent"].append(
                {"origin": event["origin"], "local_seq": event["local_seq"]}
            )
        elif kind == "delivery":
            entry = {
                "origin": event["origin"],
                "local_seq": event["local_seq"],
                "sequence": event["sequence"],
                "time": event["time"],
                "size_bytes": event["size_bytes"],
            }
            if "ring" in event:
                entry["ring"] = event["ring"]
                entry["slot"] = event["slot"]
            record["deliveries"].append(entry)
        elif kind == "app_delivery":
            record["app_deliveries"].append(
                {
                    "origin": event["origin"],
                    "msg_origin": event["msg_origin"],
                    "local_seq": event["local_seq"],
                    "size_bytes": event["size_bytes"],
                    "time": event["time"],
                }
            )
        elif kind == "view":
            record["views"].append(
                {
                    "view_id": event["view_id"],
                    "members": event["members"],
                    "time": event["time"],
                }
            )
    return record


def merge_node_records(
    spec: LiveClusterSpec,
    records: Dict[ProcessId, Dict[str, Any]],
    crashed: Optional[Dict[ProcessId, float]] = None,
) -> Tuple[ExperimentResult, WorkloadOutcome]:
    """Merge per-node records into the standard result containers.

    All timestamps are rebased to the earliest node start so merged
    logs read like a simulated run starting at ~0.  ``crashed`` maps
    killed nodes to their (monotonic) kill times; their records are
    journal-derived partials, and the crash times flow into
    :class:`ExperimentResult` so the checkers treat them like
    simulator crashes (no liveness obligations, logs still checked
    for order/integrity prefix consistency).
    """
    t0 = min(record["start_time"] for record in records.values())

    delivery_logs: Dict[ProcessId, DeliveryLog] = {}
    app_deliveries: Dict[ProcessId, List[AppDelivery]] = {}
    broadcasts: List[BroadcastRecord] = []
    broadcast_origin: Dict[MessageId, ProcessId] = {}
    sent: Dict[ProcessId, List[MessageId]] = {}

    for pid, record in sorted(records.items()):
        log = DeliveryLog(process=pid)
        for entry in record["deliveries"]:
            log.deliveries.append(
                Delivery(
                    process=pid,
                    message_id=MessageId(entry["origin"], entry["local_seq"]),
                    sequence=entry["sequence"],
                    time=entry["time"] - t0,
                    size_bytes=entry["size_bytes"],
                    ring=entry.get("ring"),
                    slot=entry.get("slot"),
                )
            )
        delivery_logs[pid] = log
        app_deliveries[pid] = [
            AppDelivery(
                process=pid,
                origin=entry["origin"],
                message_id=MessageId(entry["msg_origin"], entry["local_seq"]),
                size_bytes=entry["size_bytes"],
                time=entry["time"] - t0,
            )
            for entry in record["app_deliveries"]
        ]
        if record["sent"]:
            sent[pid] = [
                MessageId(entry["origin"], entry["local_seq"])
                for entry in record["sent"]
            ]
        for entry in record["broadcasts"]:
            message_id = MessageId(entry["origin"], entry["local_seq"])
            broadcasts.append(
                BroadcastRecord(
                    message_id=message_id,
                    size_bytes=entry["size_bytes"],
                    submit_time=entry["submit_time"] - t0,
                )
            )
            broadcast_origin[message_id] = pid

    broadcasts.sort(key=lambda record: record.submit_time)
    duration = max(record["end_time"] for record in records.values()) - t0
    result = ExperimentResult(
        config=spec,
        duration_s=duration,
        delivery_logs=delivery_logs,
        app_deliveries=app_deliveries,
        broadcasts=broadcasts,
        broadcast_origin=broadcast_origin,
        crashed={
            pid: kill_time - t0 for pid, kill_time in (crashed or {}).items()
        },
        nic_stats={},
    )
    if not sent:
        raise NetworkError("no live node submitted any broadcast")
    start_time = min(
        records[pid]["start_time"] - t0 for pid in sent
    )
    pattern = KToNPattern(
        senders=tuple(sorted(sent)),
        messages_per_sender=max(len(ids) for ids in sent.values()),
        message_bytes=spec.message_bytes,
    )
    outcome = WorkloadOutcome(
        result=result, start_time=start_time, sent=sent, pattern=pattern
    )
    return result, outcome


def check_live_order(result: ExperimentResult) -> Optional[str]:
    """Run the standard correctness oracle; returns the failure text."""
    from repro.errors import CheckFailure

    try:
        check_all(result)
    except CheckFailure as exc:
        return str(exc)
    return None


def simulate_comparison(
    spec: LiveClusterSpec, messages_per_sender: int
) -> ExperimentMetrics:
    """Run the simulator on the live configuration and collect metrics."""
    from repro.cluster.harness import build_cluster
    from repro.workloads.driver import run_workload

    if spec.shards > 1:
        from repro.protocols.multiring.config import MultiRingConfig

        config = ClusterConfig(
            n=spec.processes,
            protocol="multiring",
            protocol_config=MultiRingConfig(
                shards=spec.shards, fsr=FSRConfig(t=spec.t)
            ),
        )
    else:
        config = ClusterConfig(
            n=spec.processes,
            protocol="fsr",
            protocol_config=FSRConfig(t=spec.t),
        )
    cluster = build_cluster(config)
    pattern = KToNPattern(
        senders=spec.sender_ids,
        messages_per_sender=messages_per_sender,
        message_bytes=spec.message_bytes,
    )
    outcome = run_workload(cluster, pattern)
    return collect_metrics(outcome)


def run_live_cluster(spec: LiveClusterSpec) -> LiveRunResult:
    """Launch, merge, verify, and measure one live loopback run."""
    records, timeline = launch_live_cluster(spec)
    result, outcome = merge_node_records(spec, records)
    order_error = check_live_order(result)
    metrics = collect_metrics(outcome)
    breakdown = None
    per_ring = None
    if timeline is not None and timeline.events:
        if timeline.rings():
            # Multi-ring run: spans end at *inner ring* delivery while
            # the collector measures to the multiplexer's app delivery
            # (which may wait on sibling rings), so the end-to-end
            # cross-check does not apply; noop filler messages are
            # traced but never submitted, so match non-strictly.
            breakdown = stage_breakdown(
                timeline,
                broadcasts=result.broadcasts,
                strict_submissions=False,
            )
            per_ring = ring_breakdowns(timeline, broadcasts=result.broadcasts)
        else:
            # Stage breakdown and collector latency share one submission
            # timestamp source (``result.broadcasts``); the cross-check
            # asserts the per-stage sums agree with the end-to-end number.
            breakdown = stage_breakdown(timeline, broadcasts=result.broadcasts)
            crosscheck_latency(breakdown, metrics.mean_latency_s)
    return LiveRunResult(
        result=result,
        outcome=outcome,
        metrics=metrics,
        node_records=records,
        order_ok=order_error is None,
        order_error=order_error,
        timed_out=any(r.get("timed_out") for r in records.values()),
        timeline=timeline,
        breakdown=breakdown,
        per_ring_breakdown=per_ring,
    )


def bench_payload(
    spec: LiveClusterSpec,
    live: LiveRunResult,
    sim_metrics: Optional[ExperimentMetrics],
    sim_messages_per_sender: Optional[int],
) -> Dict[str, Any]:
    """Assemble the ``BENCH_live.json`` document."""
    from repro.analysis import ThroughputPrediction
    from repro.metrics.export import metrics_to_dict
    from repro.net.params import NetworkParams

    prediction = ThroughputPrediction.for_paper_setup(
        NetworkParams.fast_ethernet(),
        n=spec.processes,
        message_bytes=spec.message_bytes,
    )
    payload: Dict[str, Any] = {
        "schema": "repro.bench_live/1",
        "config": {
            "processes": spec.processes,
            "senders": spec.senders,
            "t": spec.t,
            "shards": spec.shards,
            "message_bytes": spec.message_bytes,
            "duration_s": spec.duration_s,
            "window": spec.window,
            "host": spec.host,
            "batch_bytes": spec.batch_bytes,
            "batch_messages": spec.batch_messages,
            "batch_delay_s": spec.batch_delay_s,
        },
        "order_check": {
            "ok": live.order_ok,
            "error": live.order_error,
        },
        "timed_out": live.timed_out,
        "live": {
            "metrics": metrics_to_dict(live.metrics),
            "messages_sent": sum(
                len(ids) for ids in live.outcome.sent.values()
            ),
            "node_stats": {
                str(pid): record["stats"]
                for pid, record in live.node_records.items()
            },
            "stage_breakdown": (
                live.breakdown.to_dict() if live.breakdown is not None else None
            ),
            "ring_stage_breakdowns": (
                None
                if live.per_ring_breakdown is None
                else {
                    str(ring): bd.to_dict()
                    for ring, bd in live.per_ring_breakdown.items()
                }
            ),
        },
        "sim": (
            None
            if sim_metrics is None
            else {
                "metrics": metrics_to_dict(sim_metrics),
                "messages_per_sender": sim_messages_per_sender,
            }
        ),
        "model": {
            "raw_mbps": prediction.raw_mbps,
            "fsr_mbps": prediction.fsr_mbps,
            "fixed_sequencer_mbps": prediction.fixed_sequencer_mbps,
        },
    }
    return payload


def run_live_benchmark(
    spec: LiveClusterSpec,
    out_path: str = "BENCH_live.json",
    timeline_path: Optional[str] = None,
) -> Dict[str, Any]:
    """The full ``python -m repro live`` pipeline; writes ``out_path``."""
    live = run_live_cluster(spec)
    if timeline_path is not None and live.timeline is not None:
        live.timeline.write_jsonl(timeline_path)
    sim_metrics = None
    sim_messages: Optional[int] = None
    if spec.sim_compare:
        live_per_sender = max(
            (len(ids) for ids in live.outcome.sent.values()), default=1
        )
        sim_messages = max(5, min(live_per_sender, _SIM_MESSAGES_CAP))
        sim_metrics = simulate_comparison(spec, sim_messages)
    payload = bench_payload(spec, live, sim_metrics, sim_messages)
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload
