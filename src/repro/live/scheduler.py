"""Asyncio-backed implementation of the :class:`~repro.types.Scheduler`
protocol.

The protocol stack (FSR, the membership layer) reads the clock and
schedules delayed callbacks through the ``Scheduler`` surface; in the
live runtime that surface is an asyncio event loop.  ``now`` is the
loop's monotonic clock (``CLOCK_MONOTONIC`` on Linux, system-wide), so
timestamps taken in different OS processes on the same machine are
directly comparable — which is what lets the runner compute cross-node
latencies from merged per-node logs without clock synchronisation.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.types import SimTime, Timer


class AsyncioScheduler:
    """Adapts an :class:`asyncio.AbstractEventLoop` to ``Scheduler``."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self.loop = loop

    @property
    def now(self) -> SimTime:
        return self.loop.time()

    def schedule(
        self, delay: SimTime, callback: Callable[..., None], *args: Any
    ) -> Timer:
        # asyncio.TimerHandle has .cancel(), satisfying the Timer protocol.
        return self.loop.call_later(max(0.0, delay), callback, *args)
