"""Live asyncio TCP runtime for FSR.

The discrete-event simulator (``repro.sim``) predicts FSR's behaviour;
this package *measures* it.  The same protocol automaton
(:class:`~repro.core.fsr.process.FSRProcess`) runs unmodified over real
sockets because it is written against the
:class:`~repro.types.Scheduler` protocol rather than the simulator:

* :mod:`repro.live.codec` — length-prefixed binary wire format whose
  byte counts match ``wire_size_bytes()`` exactly, so live traffic
  volume is directly comparable with simulated traffic volume.
* :mod:`repro.live.scheduler` — ``Scheduler`` implementation backed by
  an asyncio event loop.
* :mod:`repro.live.transport` — ring transport: one persistent TCP
  connection to the ring successor, reconnect with capped backoff.
* :mod:`repro.live.node` — one FSR process hosted in one OS process.
* :mod:`repro.live.runner` — multi-process localhost cluster launcher
  and benchmark driver (``python -m repro live``).
"""
