"""One FSR process hosted in one OS process, over real TCP.

``run_node(config)`` is the whole lifetime of a live cluster member:

1. build the protocol stack — the *same* :class:`FSRProcess` and
   :class:`GroupMembership` the simulator runs, wired to an
   :class:`AsyncioScheduler` and a TCP :class:`RingTransport` instead of
   the simulated NIC;
2. install the static bootstrap view and barrier on ring connectivity
   (outbound connected and predecessor greeted);
3. if this node is a sender, drive a closed-loop windowed workload
   until the configured deadline;
4. run to quiescence (no ring traffic for ``quiet_s``), then return a
   JSON-able record of every broadcast and delivery, timestamped with
   the system-wide monotonic clock so the runner can merge logs across
   processes.

Membership is static: the detector never suspects anyone, so the
membership layer installs the bootstrap view and then stays silent —
its control port is a :class:`_NullPort` that loudly rejects any use.
Live view changes are an open roadmap item (ROADMAP.md).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.api import BroadcastListener
from repro.core.fsr.config import FSRConfig
from repro.core.fsr.process import FSRProcess
from repro.errors import ConfigurationError, NetworkError
from repro.failure.detector import FailureDetector
from repro.live.scheduler import AsyncioScheduler
from repro.live.transport import RingTransport
from repro.types import Delivery, MessageId, ProcessId
from repro.vsc.membership import GroupMembership

#: How often the quiescence monitor samples traffic counters.
_POLL_S = 0.05


@dataclass
class LiveNodeConfig:
    """Everything one live node needs to know; JSON round-trippable."""

    node_id: ProcessId
    #: Initial membership in ring order (position 0 is the leader).
    members: List[ProcessId]
    #: TCP listen address of every member.
    addresses: Dict[ProcessId, Tuple[str, int]]
    #: FSR backup count.
    t: int = 1
    #: Members driving the workload.
    senders: List[ProcessId] = field(default_factory=list)
    message_bytes: int = 100_000
    #: Senders stop submitting new messages after this long.
    duration_s: float = 5.0
    #: Closed-loop window: own messages in flight per sender.
    window: int = 4
    #: Barrier settle time after ring connectivity, before senders start.
    settle_s: float = 0.5
    #: Ring silence needed to declare the run quiescent.
    quiet_s: float = 0.5
    #: Hard cap on the whole run past the start barrier.
    max_run_s: float = 60.0
    connect_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.node_id not in self.members:
            raise ConfigurationError(
                f"node {self.node_id} not in members {self.members}"
            )
        for pid in self.members:
            if pid not in self.addresses:
                raise ConfigurationError(f"no address for member {pid}")
        for pid in self.senders:
            if pid not in self.members:
                raise ConfigurationError(f"sender {pid} not in members")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node_id": self.node_id,
            "members": list(self.members),
            "addresses": {
                str(pid): [host, port]
                for pid, (host, port) in self.addresses.items()
            },
            "t": self.t,
            "senders": list(self.senders),
            "message_bytes": self.message_bytes,
            "duration_s": self.duration_s,
            "window": self.window,
            "settle_s": self.settle_s,
            "quiet_s": self.quiet_s,
            "max_run_s": self.max_run_s,
            "connect_timeout_s": self.connect_timeout_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LiveNodeConfig":
        return cls(
            node_id=data["node_id"],
            members=list(data["members"]),
            addresses={
                int(pid): (entry[0], entry[1])
                for pid, entry in data["addresses"].items()
            },
            t=data["t"],
            senders=list(data["senders"]),
            message_bytes=data["message_bytes"],
            duration_s=data["duration_s"],
            window=data["window"],
            settle_s=data["settle_s"],
            quiet_s=data["quiet_s"],
            max_run_s=data["max_run_s"],
            connect_timeout_s=data["connect_timeout_s"],
        )


class StaticDetector(FailureDetector):
    """Failure detector for static live membership: trusts everyone."""

    def monitor(self, peers) -> None:  # noqa: D102 - interface method
        pass


class _NullPort:
    """Port for layers that must stay silent in a static live run."""

    def __init__(self, node_id: ProcessId) -> None:
        self._node_id = node_id

    @property
    def node_id(self) -> ProcessId:
        return self._node_id

    def send(self, dst: ProcessId, message: Any, size_bytes=None) -> None:
        raise NetworkError(
            "static live membership never sends; live view changes are "
            "not implemented yet (see ROADMAP.md)"
        )

    def on_receive(self, handler) -> None:
        pass


class LivePort:
    """Adapts :class:`RingTransport` to the ``Port`` surface FSR uses."""

    def __init__(self, transport: RingTransport) -> None:
        self._transport = transport
        self._handler = None
        transport.on_message = self._dispatch

    @property
    def node_id(self) -> ProcessId:
        return self._transport.node_id

    def send(self, dst: ProcessId, message: Any, size_bytes=None) -> None:
        # size_bytes is the simulator's accounting hint; the codec
        # serialises the real payload, so it is not needed here.
        self._transport.send(dst, message)

    def on_receive(self, handler) -> None:
        self._handler = handler

    def _dispatch(self, src: ProcessId, message: Any) -> None:
        if self._handler is not None:
            self._handler(src, message)


@dataclass
class _NodeRun:
    """Mutable state of one node's workload while the loop runs."""

    deliveries: List[Delivery] = field(default_factory=list)
    app_deliveries: List[Dict[str, Any]] = field(default_factory=list)
    broadcasts: List[Dict[str, Any]] = field(default_factory=list)
    sent: List[MessageId] = field(default_factory=list)
    outstanding: int = 0


async def _run(config: LiveNodeConfig) -> Dict[str, Any]:
    loop = asyncio.get_running_loop()
    sched = AsyncioScheduler(loop)
    me = config.node_id
    members = tuple(config.members)
    position = members.index(me)
    successor = members[(position + 1) % len(members)]

    transport = RingTransport(
        node_id=me,
        listen_addr=config.addresses[me],
        successor_id=successor,
        successor_addr=config.addresses[successor],
        on_message=lambda src, msg: None,  # replaced by LivePort
    )
    port = LivePort(transport)
    detector = StaticDetector()
    membership = GroupMembership(
        sched,
        _NullPort(me),
        detector,
        me=me,
        initial_members=members,
    )
    process = FSRProcess(
        sched,
        port,
        membership,
        FSRConfig(t=config.t),
        tx_gate=lambda: transport.tx_ready,
    )
    transport.on_tx_idle(process.on_tx_ready)

    run = _NodeRun()
    deadline = [float("inf")]

    def refill() -> None:
        """Keep ``window`` own messages in flight until the deadline."""
        while (
            run.outstanding < config.window and sched.now < deadline[0]
        ):
            payload = bytes(config.message_bytes)
            message_id = process.broadcast(payload)
            run.outstanding += 1
            run.sent.append(message_id)
            run.broadcasts.append(
                {
                    "origin": message_id.origin,
                    "local_seq": message_id.local_seq,
                    "size_bytes": config.message_bytes,
                    "submit_time": sched.now,
                }
            )

    def on_app_deliver(
        origin: ProcessId, message_id: MessageId, payload: Any, size: int
    ) -> None:
        run.app_deliveries.append(
            {
                "origin": origin,
                "msg_origin": message_id.origin,
                "local_seq": message_id.local_seq,
                "size_bytes": size,
                "time": sched.now,
            }
        )
        if origin == me and run.outstanding > 0:
            run.outstanding -= 1
            # Refill from a fresh loop iteration, not reentrantly from
            # inside the protocol's receive path.
            loop.call_soon(refill)

    process.set_listener(BroadcastListener(on_app_deliver))
    process.on_protocol_deliver(run.deliveries.append)

    await transport.start()
    process.start()

    # ------------------------------------------------------------------
    # Barrier: ring connectivity, then a settle delay.
    # ------------------------------------------------------------------
    timeout = config.connect_timeout_s
    if not await transport.wait_outbound_connected(timeout):
        raise NetworkError(
            transport.failure
            or f"node {me}: successor {successor} not connected after "
            f"{timeout:.0f}s"
        )
    if len(members) > 1 and not await transport.wait_inbound_hello(timeout):
        raise NetworkError(
            f"node {me}: no inbound connection after {timeout:.0f}s"
        )
    await asyncio.sleep(config.settle_s)

    start_time = sched.now
    deadline[0] = start_time + config.duration_s
    if me in config.senders:
        refill()

    # ------------------------------------------------------------------
    # Run to quiescence: deadline passed and the ring has gone silent.
    # ------------------------------------------------------------------
    timed_out = False
    last_counters = (-1, -1)
    last_change = sched.now
    while True:
        await asyncio.sleep(_POLL_S)
        now = sched.now
        counters = (transport.frames_received, transport.frames_sent)
        if counters != last_counters or transport.queued_bytes > 0:
            last_counters = counters
            last_change = now
        if transport.failure is not None:
            raise NetworkError(f"node {me}: {transport.failure}")
        if now - start_time >= config.max_run_s:
            timed_out = True
            break
        if now < deadline[0]:
            continue
        if now - last_change >= config.quiet_s:
            break

    end_time = sched.now
    process.stop()
    await transport.close()

    return {
        "schema": "repro.live_node/1",
        "node_id": me,
        "start_time": start_time,
        "end_time": end_time,
        "timed_out": timed_out,
        "deliveries": [
            {
                "origin": d.message_id.origin,
                "local_seq": d.message_id.local_seq,
                "sequence": d.sequence,
                "time": d.time,
                "size_bytes": d.size_bytes,
            }
            for d in run.deliveries
        ],
        "app_deliveries": run.app_deliveries,
        "broadcasts": run.broadcasts,
        "sent": [
            {"origin": mid.origin, "local_seq": mid.local_seq}
            for mid in run.sent
        ],
        "stats": {
            "frames_sent": transport.frames_sent,
            "frames_received": transport.frames_received,
            "bytes_sent": transport.bytes_sent,
            "bytes_received": transport.bytes_received,
            "reconnects": transport.reconnects,
            "broadcasts": process.stats_broadcasts,
            "deliveries": process.stats_deliveries,
            "acks_piggybacked": process.stats_acks_piggybacked,
            "acks_standalone": process.stats_acks_standalone,
        },
    }


def run_node(config: LiveNodeConfig) -> Dict[str, Any]:
    """Run one live node to completion; returns its result record."""
    return asyncio.run(_run(config))
