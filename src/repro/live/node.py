"""One FSR process hosted in one OS process, over real TCP.

``run_node(config)`` is the whole lifetime of a live cluster member:

1. build the protocol stack — the *same* :class:`FSRProcess` and
   :class:`GroupMembership` the simulator runs, wired to an
   :class:`AsyncioScheduler` and a TCP :class:`RingTransport` instead of
   the simulated NIC;
2. barrier on ring connectivity (outbound connected and predecessor
   greeted), settle, then install the bootstrap view and start;
3. if this node is a sender, drive a closed-loop windowed workload
   until the configured deadline (or a fixed message count);
4. run to quiescence (no ring or membership traffic for ``quiet_s``),
   then return a JSON-able record of every broadcast and delivery,
   timestamped with the system-wide monotonic clock so the runner can
   merge logs across processes.

Membership comes in two modes:

* **static** (default): the detector never suspects anyone, the
  membership layer installs the bootstrap view and stays silent — its
  control port is a :class:`_NullPort` that loudly rejects any use.
* **live view changes** (``view_changes=True``, used by the live chaos
  campaign): a real :class:`HeartbeatFailureDetector` runs on the
  asyncio scheduler over the transport's control plane, and
  :class:`GroupMembership`'s flush/install protocol executes over TCP.
  On every installed view the ring transport is re-pointed at the new
  successor *before* FSR resumes pumping (:class:`_RewiringClient`).

With ``journal_path`` set, every broadcast and delivery is additionally
appended (and flushed) to a JSONL journal as it happens, so a node
killed with SIGKILL still leaves its log behind — the chaos driver
merges those journals into the invariant battery, which is what makes
integrity/uniformity checks meaningful for crashed senders.
"""

from __future__ import annotations

import asyncio
import json
import logging
import random
import signal
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TextIO, Tuple

from repro.core.api import BroadcastListener
from repro.core.batching import BatchingConfig, batching_config_from_flags
from repro.core.fsr.config import FSRConfig
from repro.core.fsr.process import FSRProcess
from repro.errors import ConfigurationError, NetworkError
from repro.failure.detector import (
    AdaptiveFailureDetector,
    FailureDetector,
    HeartbeatFailureDetector,
    adaptive_floor_s,
)
from repro.live.scheduler import AsyncioScheduler
from repro.live.transport import RingTransport
from repro.net.channel import MAX_RETRIES
from repro.obs.journal import SpanJournal
from repro.obs.profile import (
    CpuAccountant,
    EventLoopLagSampler,
    SamplingProfiler,
)
from repro.obs.reqtrace import RequestLog
from repro.obs.span import SpanLog
from repro.obs.telemetry import Telemetry
from repro.types import Delivery, MessageId, ProcessId, View
from repro.vsc.membership import FlushState, GroupMembership

#: How often the quiescence monitor samples traffic counters.
_POLL_S = 0.05
#: How often a span-journalling node snapshots telemetry to its file.
_TELEMETRY_SNAPSHOT_S = 1.0


@dataclass
class LiveNodeConfig:
    """Everything one live node needs to know; JSON round-trippable."""

    node_id: ProcessId
    #: Initial membership in ring order (position 0 is the leader).
    members: List[ProcessId]
    #: TCP listen address of every member.
    addresses: Dict[ProcessId, Tuple[str, int]]
    #: FSR backup count.
    t: int = 1
    #: Concurrent FSR rings (``repro.protocols.multiring``); 1 runs the
    #: classic single-ring stack untouched.
    shards: int = 1
    #: Per-ring listen addresses, one map per ring, when ``shards > 1``.
    #: Ring 0 conventionally reuses ``addresses``; each ring gets its
    #: own TCP port per node so the S rings genuinely parallelise the
    #: send path (the live analogue of the sim's per-ring alias NICs).
    ring_addresses: List[Dict[ProcessId, Tuple[str, int]]] = field(
        default_factory=list
    )
    #: Members driving the workload.
    senders: List[ProcessId] = field(default_factory=list)
    message_bytes: int = 100_000
    #: Senders stop submitting new messages after this long.
    duration_s: float = 5.0
    #: Closed-loop window: own messages in flight per sender.
    window: int = 4
    #: Barrier settle time after ring connectivity, before senders start.
    settle_s: float = 0.5
    #: Ring silence needed to declare the run quiescent.
    quiet_s: float = 0.5
    #: Hard cap on the whole run past the start barrier.
    max_run_s: float = 60.0
    connect_timeout_s: float = 10.0
    #: Run real membership (heartbeat detector + flush over TCP).
    view_changes: bool = False
    heartbeat_interval_s: float = 0.1
    heartbeat_timeout_s: float = 1.0
    #: Failure-detector flavour when ``view_changes``: "heartbeat"
    #: (fixed timeout) or "adaptive" (EWMA-adapted, floor/ceiling
    #: clamped — the hostile-network campaigns run this one).
    detector_mode: str = "heartbeat"
    #: Link-level fault events for this node's egress shaper, as
    #: serialised :class:`repro.chaos.schedules.FaultEvent` dicts.
    #: Empty list: no shaper, zero hot-path overhead.
    netem_events: List[Dict[str, Any]] = field(default_factory=list)
    #: Scenario name + seed the shaper derives its per-link RNGs from.
    netem_scenario: str = ""
    netem_seed: int = 0
    #: Run-level seed for transport reconnect jitter; makes live chaos
    #: runs reproducible from ``(scenario, seed)``.
    run_seed: int = 0
    #: Primary-partition guard (see ``GroupMembership``): refuse views
    #: keeping less than a strict majority of the current one.  The
    #: chaos driver turns this on for partitionable runs.
    require_quorum: bool = False
    #: Fixed-count sender mode: each sender submits exactly this many
    #: messages (closed loop), ignoring ``duration_s`` — used by the
    #: sim/live conformance test, where the workloads must be identical.
    messages_per_sender: Optional[int] = None
    #: Client-facing session server listen address (``repro.serve``);
    #: ``None`` disables serving entirely.
    serve_addr: Optional[Tuple[str, int]] = None
    #: Leader lease duration for locally served reads (serve mode).
    lease_s: float = 0.8
    #: JSONL event journal, appended and flushed as events happen so a
    #: SIGKILLed node still leaves its log behind.
    journal_path: Optional[str] = None
    #: JSONL span/telemetry journal (``repro.obs``); ``None`` disables
    #: span emission entirely (the hot path pays one attribute check).
    span_path: Optional[str] = None
    #: Request tracing (``repro.obs.reqtrace``): stamp server-side
    #: request-lifecycle events into the span journal.  Needs
    #: ``span_path`` (the journal is the only sink) and serve mode.
    trace_requests: bool = False
    #: Live metrics plane (``repro.obs.httpexport``): HTTP listen
    #: address for ``/metrics`` + ``/healthz``; ``None`` disables.
    metrics_addr: Optional[Tuple[str, int]] = None
    #: CPU profiling: write flamegraph-collapsed stacks of the event
    #: loop thread here and charge protocol CPU (encode / decode / FSR
    #: automaton / apply) to per-stage accounts.  ``None`` disables —
    #: the hot path pays one attribute check per delivery.
    profile_path: Optional[str] = None
    #: Python logging level name for this node's process ("INFO", ...);
    #: ``None`` leaves logging unconfigured (silent).
    log_level: Optional[str] = None
    #: Transport fast path (DESIGN.md §5g): flush thresholds for frame
    #: coalescing on the ring hop.  All three ``None`` disables batching
    #: — the transport stays byte-identical to the unbatched wire.  Any
    #: subset set fills the rest from :class:`BatchingConfig` defaults.
    batch_bytes: Optional[int] = None
    batch_messages: Optional[int] = None
    batch_delay_s: Optional[float] = None

    def batch_config(self) -> Optional[BatchingConfig]:
        """Transport flush policy, or ``None`` when batching is off."""
        return batching_config_from_flags(
            self.batch_bytes, self.batch_messages, self.batch_delay_s
        )

    def __post_init__(self) -> None:
        # Surfaces nonpositive batch thresholds as ConfigurationError
        # at config time, matching the sim path's validation.
        self.batch_config()
        if self.node_id not in self.members:
            raise ConfigurationError(
                f"node {self.node_id} not in members {self.members}"
            )
        for pid in self.members:
            if pid not in self.addresses:
                raise ConfigurationError(f"no address for member {pid}")
        for pid in self.senders:
            if pid not in self.members:
                raise ConfigurationError(f"sender {pid} not in members")
        if self.serve_addr is not None and self.senders:
            raise ConfigurationError(
                "serve mode replaces the sender workload; a serving "
                "cluster must run with no senders (client sessions are "
                "the only broadcast source)"
            )
        if self.lease_s <= 0:
            raise ConfigurationError("lease_s must be positive")
        if self.trace_requests and self.span_path is None:
            raise ConfigurationError(
                "trace_requests needs span_path: request-trace events "
                "are journalled, never held in node memory"
            )
        if self.detector_mode not in ("heartbeat", "adaptive"):
            raise ConfigurationError(
                f"unknown detector_mode {self.detector_mode!r}; "
                "use 'heartbeat' or 'adaptive'"
            )
        if self.shards < 1:
            raise ConfigurationError("shards must be at least 1")
        if self.shards > 1:
            if len(self.ring_addresses) != self.shards:
                raise ConfigurationError(
                    f"shards={self.shards} needs {self.shards} ring address "
                    f"maps, got {len(self.ring_addresses)}"
                )
            for ring, addrs in enumerate(self.ring_addresses):
                for pid in self.members:
                    if pid not in addrs:
                        raise ConfigurationError(
                            f"ring {ring}: no address for member {pid}"
                        )

    def ring_addrs(self) -> List[Dict[ProcessId, Tuple[str, int]]]:
        """Per-ring address maps; single-ring configs use ``addresses``."""
        if self.ring_addresses:
            return self.ring_addresses
        return [self.addresses]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node_id": self.node_id,
            "members": list(self.members),
            "addresses": {
                str(pid): [host, port]
                for pid, (host, port) in self.addresses.items()
            },
            "t": self.t,
            "shards": self.shards,
            "ring_addresses": [
                {
                    str(pid): [host, port]
                    for pid, (host, port) in addrs.items()
                }
                for addrs in self.ring_addresses
            ],
            "senders": list(self.senders),
            "message_bytes": self.message_bytes,
            "duration_s": self.duration_s,
            "window": self.window,
            "settle_s": self.settle_s,
            "quiet_s": self.quiet_s,
            "max_run_s": self.max_run_s,
            "connect_timeout_s": self.connect_timeout_s,
            "view_changes": self.view_changes,
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "heartbeat_timeout_s": self.heartbeat_timeout_s,
            "detector_mode": self.detector_mode,
            "netem_events": list(self.netem_events),
            "netem_scenario": self.netem_scenario,
            "netem_seed": self.netem_seed,
            "run_seed": self.run_seed,
            "require_quorum": self.require_quorum,
            "messages_per_sender": self.messages_per_sender,
            "serve_addr": (
                [self.serve_addr[0], self.serve_addr[1]]
                if self.serve_addr is not None
                else None
            ),
            "lease_s": self.lease_s,
            "journal_path": self.journal_path,
            "span_path": self.span_path,
            "trace_requests": self.trace_requests,
            "metrics_addr": (
                [self.metrics_addr[0], self.metrics_addr[1]]
                if self.metrics_addr is not None
                else None
            ),
            "profile_path": self.profile_path,
            "log_level": self.log_level,
            "batch_bytes": self.batch_bytes,
            "batch_messages": self.batch_messages,
            "batch_delay_s": self.batch_delay_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LiveNodeConfig":
        return cls(
            node_id=data["node_id"],
            members=list(data["members"]),
            addresses={
                int(pid): (entry[0], entry[1])
                for pid, entry in data["addresses"].items()
            },
            t=data["t"],
            shards=data.get("shards", 1),
            ring_addresses=[
                {
                    int(pid): (entry[0], entry[1])
                    for pid, entry in addrs.items()
                }
                for addrs in data.get("ring_addresses", [])
            ],
            senders=list(data["senders"]),
            message_bytes=data["message_bytes"],
            duration_s=data["duration_s"],
            window=data["window"],
            settle_s=data["settle_s"],
            quiet_s=data["quiet_s"],
            max_run_s=data["max_run_s"],
            connect_timeout_s=data["connect_timeout_s"],
            view_changes=data.get("view_changes", False),
            heartbeat_interval_s=data.get("heartbeat_interval_s", 0.1),
            heartbeat_timeout_s=data.get("heartbeat_timeout_s", 1.0),
            detector_mode=data.get("detector_mode", "heartbeat"),
            netem_events=list(data.get("netem_events", [])),
            netem_scenario=data.get("netem_scenario", ""),
            netem_seed=data.get("netem_seed", 0),
            run_seed=data.get("run_seed", 0),
            require_quorum=data.get("require_quorum", False),
            messages_per_sender=data.get("messages_per_sender"),
            serve_addr=(
                (data["serve_addr"][0], data["serve_addr"][1])
                if data.get("serve_addr") is not None
                else None
            ),
            lease_s=data.get("lease_s", 0.8),
            journal_path=data.get("journal_path"),
            span_path=data.get("span_path"),
            trace_requests=data.get("trace_requests", False),
            metrics_addr=(
                (data["metrics_addr"][0], data["metrics_addr"][1])
                if data.get("metrics_addr") is not None
                else None
            ),
            profile_path=data.get("profile_path"),
            log_level=data.get("log_level"),
            batch_bytes=data.get("batch_bytes"),
            batch_messages=data.get("batch_messages"),
            batch_delay_s=data.get("batch_delay_s"),
        )


class StaticDetector(FailureDetector):
    """Failure detector for static live membership: trusts everyone."""

    def monitor(self, peers) -> None:  # noqa: D102 - interface method
        pass


class _NullPort:
    """Port for layers that must stay silent in a static live run."""

    def __init__(self, node_id: ProcessId) -> None:
        self._node_id = node_id

    @property
    def node_id(self) -> ProcessId:
        return self._node_id

    def send(self, dst: ProcessId, message: Any, size_bytes=None) -> None:
        raise NetworkError(
            "static live membership never sends; enable view_changes for "
            "live membership over TCP"
        )

    def on_receive(self, handler) -> None:
        pass


class LivePort:
    """Adapts :class:`RingTransport` to the ``Port`` surface FSR uses.

    With a :class:`~repro.obs.profile.CpuAccountant`, inbound dispatch
    (the FSR automaton's whole receive path runs inside the handler)
    is charged to the ``fsr`` stage and outbound sends (codec encode +
    enqueue) to ``encode`` — the seam that splits protocol CPU out of
    event-loop wall time.
    """

    def __init__(self, transport: RingTransport, profile: Any = None) -> None:
        self._transport = transport
        self._handler = None
        self._fsr_stage = profile.stage("fsr") if profile is not None else None
        self._encode_stage = (
            profile.stage("encode") if profile is not None else None
        )
        transport.on_message = self._dispatch

    @property
    def node_id(self) -> ProcessId:
        return self._transport.node_id

    def send(self, dst: ProcessId, message: Any, size_bytes=None) -> None:
        # size_bytes is the simulator's accounting hint; the codec
        # serialises the real payload, so it is not needed here.
        if self._encode_stage is None:
            self._transport.send(dst, message)
        else:
            with self._encode_stage:
                self._transport.send(dst, message)

    def on_receive(self, handler) -> None:
        self._handler = handler

    def _dispatch(self, src: ProcessId, message: Any) -> None:
        if self._handler is None:
            return
        if self._fsr_stage is None:
            self._handler(src, message)
        else:
            with self._fsr_stage:
                self._handler(src, message)


class ControlPort:
    """One control-plane layer's port, mirroring the sim's ``LayerDemux``.

    Sends go through :meth:`RingTransport.send_control` with this
    port's layer tag; receives arrive via :class:`_ControlDispatch`.
    ``last_activity`` timestamps the most recent send *or* receive on
    this layer — the quiescence monitor uses the membership port's to
    avoid tearing a node down mid-flush.
    """

    def __init__(
        self, transport: RingTransport, layer: str, sched: AsyncioScheduler
    ) -> None:
        self._transport = transport
        self.layer = layer
        self._sched = sched
        self._handler: Optional[Callable[[ProcessId, Any], None]] = None
        self.last_activity: float = 0.0

    @property
    def node_id(self) -> ProcessId:
        return self._transport.node_id

    def send(self, dst: ProcessId, message: Any, size_bytes=None) -> None:
        self.last_activity = self._sched.now
        self._transport.send_control(dst, self.layer, message)

    def on_receive(self, handler) -> None:
        self._handler = handler

    def dispatch(self, src: ProcessId, message: Any) -> None:
        self.last_activity = self._sched.now
        if self._handler is not None:
            self._handler(src, message)


class _ControlDispatch:
    """Routes inbound control frames to the right layer's port."""

    def __init__(self) -> None:
        self._ports: Dict[str, ControlPort] = {}

    def port(
        self, transport: RingTransport, layer: str, sched: AsyncioScheduler
    ) -> ControlPort:
        port = ControlPort(transport, layer, sched)
        self._ports[layer] = port
        return port

    def __call__(self, layer: str, src: ProcessId, inner: Any) -> None:
        port = self._ports.get(layer)
        if port is not None:
            port.dispatch(src, inner)


class _RewiringClient:
    """VSC client wrapper: re-point the ring hop before FSR resumes.

    ``FSRProcess.on_view`` immediately pumps traffic to the *new* ring
    successor, and the transport only accepts its configured successor
    — so the transport must be retargeted first.  Everything else
    delegates to the wrapped process.
    """

    def __init__(
        self, process: FSRProcess, rewire: Callable[[View], None]
    ) -> None:
        self._process = process
        self._rewire = rewire
        #: Last installed view, exposed in the node's result record.
        self.current_view: Optional[View] = None

    def on_block(self) -> None:
        self._process.on_block()

    def collect_flush_state(self) -> FlushState:
        return self._process.collect_flush_state()

    def merge_states(self, states, receivers):
        return self._process.merge_states(states, receivers)

    def on_view(self, view: View, state: Optional[FlushState]) -> None:
        self.current_view = view
        self._rewire(view)
        self._process.on_view(view, state)

    def on_view_commit(self, view: View) -> None:
        self._process.on_view_commit(view)


class _Journal:
    """Append-and-flush JSONL event log that survives SIGKILL.

    ``flush()`` hands the line to the OS on every event; page cache
    contents survive the process, so a killed node's journal is intact
    up to (at worst) one torn final line, which readers tolerate.
    """

    def __init__(self, path: Optional[str]) -> None:
        self._fh: Optional[TextIO] = open(path, "w") if path else None

    def write(self, entry: Dict[str, Any]) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(entry) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _configure_logging(config: LiveNodeConfig) -> logging.Logger:
    """Per-node logger; ``log_level`` configures the root handler.

    Each node is its own OS process, so ``basicConfig`` here also turns
    on the transport's module-level logger without cross-node bleed.
    """
    if config.log_level:
        level = getattr(logging, config.log_level.upper(), logging.INFO)
        logging.basicConfig(
            level=level,
            format="%(asctime)s %(levelname)s %(name)s %(message)s",
        )
    return logging.getLogger(f"repro.live.node.{config.node_id}")


@dataclass
class _NodeRun:
    """Mutable state of one node's workload while the loop runs."""

    deliveries: List[Delivery] = field(default_factory=list)
    app_deliveries: List[Dict[str, Any]] = field(default_factory=list)
    broadcasts: List[Dict[str, Any]] = field(default_factory=list)
    sent: List[MessageId] = field(default_factory=list)
    outstanding: int = 0


async def _run(config: LiveNodeConfig) -> Dict[str, Any]:
    loop = asyncio.get_running_loop()
    sched = AsyncioScheduler(loop)
    me = config.node_id
    members = tuple(config.members)
    position = members.index(me)
    successor = members[(position + 1) % len(members)]
    journal = _Journal(config.journal_path)
    logger = _configure_logging(config)
    telemetry = Telemetry()
    # capacity=0: sinks (the span journal) still fire, but nothing
    # accumulates in memory — a live node's spans live on disk only.
    spans = SpanLog(enabled=config.span_path is not None, capacity=0)
    # Request-trace events stream the same way: capacity=0, journal
    # sink attached once the span journal opens.
    reqlog = RequestLog(enabled=config.trace_requests, capacity=0)
    cpu = CpuAccountant() if config.profile_path is not None else None

    shaper = None
    if config.netem_events:
        # Imported lazily: repro.chaos's package init imports the live
        # runner, so a module-level import here would be circular.
        from repro.chaos.netem import NetShaper
        from repro.chaos.schedules import FaultEvent

        # Cap total emulated delay strictly below the adaptive
        # detector's floor: even if jitter, reordering pressure, and
        # synthetic retransmits stack up on one frame, a heartbeat can
        # never be late enough to look like a crash.
        floor = adaptive_floor_s(
            config.heartbeat_interval_s, config.heartbeat_timeout_s
        )
        shaper = NetShaper(
            me,
            len(members),
            tuple(FaultEvent.from_dict(e) for e in config.netem_events),
            config.netem_scenario,
            config.netem_seed,
            delay_cap_s=max(0.0, floor - 2 * config.heartbeat_interval_s),
            telemetry=telemetry,
        )

    # One transport per inner ring.  Multi-ring rotation preserves the
    # cyclic member order, so every node keeps the SAME ring successor
    # in all rings — each extra ring is the same hop on its own port.
    # Ring 0 carries the control plane (and the egress shaper, which
    # models per-host faults); extra rings are pure data planes.
    ring_addrs = config.ring_addrs()
    batching = config.batch_config()
    transports: List[RingTransport] = []
    for ring_index in range(config.shards):
        addrs = ring_addrs[ring_index]
        seed = (
            f"live:{config.run_seed}:{me}" if ring_index == 0
            else f"live:{config.run_seed}:{me}:{ring_index}"
        )
        transports.append(RingTransport(
            node_id=me,
            listen_addr=addrs[me],
            successor_id=successor,
            successor_addr=addrs[successor],
            on_message=lambda src, msg: None,  # replaced by LivePort
            peers=dict(addrs) if ring_index == 0 else None,
            # With live membership a dead successor is not terminal: the
            # view change retargets the hop, so keep dialling until then.
            max_retries=None if config.view_changes else MAX_RETRIES,
            shaper=shaper if ring_index == 0 else None,
            rng=random.Random(seed),
            batching=batching,
            telemetry=telemetry,
        ))
    transport = transports[0]

    vsc_port: Any
    if config.view_changes:
        dispatch = _ControlDispatch()
        transport.on_control = dispatch
        fd_port = dispatch.port(transport, "fd", sched)
        vsc_port = dispatch.port(transport, "vsc", sched)
        # RTT observation doubles heartbeat traffic (probe + echo), so
        # only turn it on when this run is collecting observability data.
        rtt_observer = None
        if config.span_path is not None:
            rtt_hist = telemetry.histogram("heartbeat_rtt_s")
            rtt_observer = lambda peer, rtt: rtt_hist.observe(rtt)  # noqa: E731
        detector_cls = (
            AdaptiveFailureDetector
            if config.detector_mode == "adaptive"
            else HeartbeatFailureDetector
        )
        detector: FailureDetector = detector_cls(
            sched,
            fd_port,
            interval_s=config.heartbeat_interval_s,
            timeout_s=config.heartbeat_timeout_s,
            rtt_observer=rtt_observer,
            telemetry=telemetry,
        )
    else:
        fd_port = None
        vsc_port = _NullPort(me)
        detector = StaticDetector()
    membership = GroupMembership(
        sched,
        vsc_port,
        detector,
        me=me,
        initial_members=members,
        telemetry=telemetry,
        require_quorum=config.require_quorum,
    )
    process: Any
    if config.shards > 1:
        from repro.protocols.multiring import (
            MultiRingConfig,
            MultiRingProcess,
            RingLink,
        )

        links = [
            RingLink(
                ring=ring_index,
                port=LivePort(ring_transport, cpu),
                tx_gate=(lambda _t=ring_transport: _t.tx_ready),
                on_tx_idle=ring_transport.on_tx_idle,
            )
            for ring_index, ring_transport in enumerate(transports)
        ]
        process = MultiRingProcess(
            sched,
            membership,
            MultiRingConfig(shards=config.shards, fsr=FSRConfig(t=config.t)),
            links,
            spans=spans,
        )
    else:
        port = LivePort(transport, cpu)
        process = FSRProcess(
            sched,
            port,
            membership,
            FSRConfig(t=config.t),
            tx_gate=lambda: transport.tx_ready,
            spans=spans,
        )
        transport.on_tx_idle(process.on_tx_ready)

    serve_server: Any = None
    if config.serve_addr is not None:
        # Imported lazily: repro.serve imports the live scheduler, so a
        # module-level import here would be circular for some paths.
        from repro.serve.lease import LeaderLease
        from repro.serve.server import SessionServer
        from repro.serve.session import SessionMachine
        from repro.smr.kvstore import KVStore
        from repro.smr.machine import ReplicatedStateMachine

        serve_machine = SessionMachine(KVStore())
        # Claims the broadcast listener slot; the combined listener
        # installed below hands every delivery back to it.
        serve_rsm = ReplicatedStateMachine(process, serve_machine)
        serve_rsm.profile = cpu
        serve_server = SessionServer(
            me,
            serve_rsm,
            serve_machine,
            LeaderLease(sched, me, config.lease_s),
            sched,
            telemetry=telemetry,
            journal=journal.write,
            reqlog=reqlog,
        )

    client: Any = process
    if config.view_changes:
        def rewire(view: View) -> None:
            ring = view.members
            succ = ring[(ring.index(me) + 1) % len(ring)]
            for ring_index, ring_transport in enumerate(transports):
                ring_transport.retarget(succ, ring_addrs[ring_index][succ])
            transport.prune_control_peers(view.members)
            if serve_server is not None:
                serve_server.on_view(view)
            journal.write({
                "type": "view",
                "view_id": view.view_id,
                "members": list(ring),
                "time": sched.now,
            })

        client = _RewiringClient(process, rewire)
        membership.set_client(client)

    run = _NodeRun()
    deadline = [float("inf")]

    def may_submit() -> bool:
        if config.messages_per_sender is not None:
            return len(run.sent) < config.messages_per_sender
        return sched.now < deadline[0]

    def refill() -> None:
        """Keep ``window`` own messages in flight until the deadline."""
        while run.outstanding < config.window and may_submit():
            payload = bytes(config.message_bytes)
            message_id = process.broadcast(payload)
            run.outstanding += 1
            run.sent.append(message_id)
            record = {
                "origin": message_id.origin,
                "local_seq": message_id.local_seq,
                "size_bytes": config.message_bytes,
                "submit_time": sched.now,
            }
            run.broadcasts.append(record)
            journal.write({"type": "broadcast", **record})

    def on_app_deliver(
        origin: ProcessId, message_id: MessageId, payload: Any, size: int
    ) -> None:
        record = {
            "origin": origin,
            "msg_origin": message_id.origin,
            "local_seq": message_id.local_seq,
            "size_bytes": size,
            "time": sched.now,
        }
        run.app_deliveries.append(record)
        journal.write({"type": "app_delivery", **record})
        if origin == me and run.outstanding > 0:
            run.outstanding -= 1
            # Refill from a fresh loop iteration, not reentrantly from
            # inside the protocol's receive path.
            loop.call_soon(refill)

    def on_protocol_deliver(delivery: Delivery) -> None:
        run.deliveries.append(delivery)
        entry = {
            "type": "delivery",
            "origin": delivery.message_id.origin,
            "local_seq": delivery.message_id.local_seq,
            "sequence": delivery.sequence,
            "time": delivery.time,
            "size_bytes": delivery.size_bytes,
        }
        if delivery.ring is not None:
            entry["ring"] = delivery.ring
            entry["slot"] = delivery.slot
        journal.write(entry)

    if serve_server is not None:
        def app_deliver(
            origin: ProcessId, message_id: MessageId, payload: Any, size: int
        ) -> None:
            on_app_deliver(origin, message_id, payload, size)
            # Total-order boundary: a traced request this node proposed
            # just got delivered — stamp "ordered" before the apply.
            serve_server.note_ordered(message_id)
            serve_rsm.deliver(origin, message_id, payload, size)

        process.set_listener(BroadcastListener(app_deliver))
    else:
        process.set_listener(BroadcastListener(on_app_deliver))
    process.on_protocol_deliver(on_protocol_deliver)

    for ring_transport in transports:
        await ring_transport.start()

    # ------------------------------------------------------------------
    # Barrier: ring connectivity, then a settle delay, then start.  The
    # protocol (and with it the heartbeat detector's monitoring) only
    # starts once the ring is up, so slow sibling startup cannot be
    # mistaken for a crash.  Traffic from peers that start slightly
    # earlier is buffered by FSR's future-view buffer until our own
    # bootstrap view installs.
    # ------------------------------------------------------------------
    timeout = config.connect_timeout_s
    for ring_index, ring_transport in enumerate(transports):
        if not await ring_transport.wait_outbound_connected(timeout):
            raise NetworkError(
                ring_transport.failure
                or f"node {me}: ring {ring_index} successor {successor} not "
                f"connected after {timeout:.0f}s"
            )
        if len(members) > 1 and not await ring_transport.wait_inbound_hello(
            timeout
        ):
            raise NetworkError(
                f"node {me}: ring {ring_index} got no inbound connection "
                f"after {timeout:.0f}s"
            )
    await asyncio.sleep(config.settle_s)
    logger.info(
        "ring up: position=%d successor=%d members=%s", position, successor,
        list(members),
    )

    def telemetry_snapshot() -> Dict[str, Any]:
        """Registry snapshot merged with the transport's live counters.

        Counter/gauge names match what ``repro.obs.analyze`` reads
        (``transport_bytes_sent``, ``transport_tx_stalls``,
        ``transport_queued_bytes``).
        """
        if cpu is not None:
            cpu.publish(telemetry)
        snap = telemetry.snapshot()
        counters = snap["counters"]
        counters["transport_frames_sent"] = sum(
            t.frames_sent for t in transports
        )
        counters["transport_frames_received"] = sum(
            t.frames_received for t in transports
        )
        counters["transport_bytes_sent"] = sum(
            t.bytes_sent for t in transports
        )
        counters["transport_bytes_received"] = sum(
            t.bytes_received for t in transports
        )
        counters["transport_reconnects"] = sum(
            t.reconnects for t in transports
        )
        counters["transport_retargets"] = sum(
            t.retargets for t in transports
        )
        counters["transport_tx_stalls"] = sum(
            t.tx_stalls for t in transports
        )
        counters["transport_control_frames_sent"] = transport.control_frames_sent
        counters["transport_control_frames_received"] = (
            transport.control_frames_received
        )
        counters["transport_flushes"] = sum(t.flushes for t in transports)
        counters["transport_batches_sent"] = sum(
            t.batches_sent for t in transports
        )
        counters["transport_batched_frames"] = sum(
            t.batched_frames for t in transports
        )
        counters["transport_acks_ridden"] = sum(
            t.acks_ridden for t in transports
        )
        counters["transport_batches_received"] = sum(
            t.batches_received for t in transports
        )
        # Bytes per syscall: the fast path's whole point — how many
        # wire bytes each write+drain cycle amortised.
        flushes = counters["transport_flushes"]
        snap["gauges"]["transport_bytes_per_flush"] = {
            "value": (
                counters["transport_bytes_sent"] / flushes if flushes else 0.0
            ),
            "high_water": (
                counters["transport_bytes_sent"] / flushes if flushes else 0.0
            ),
        }
        snap["gauges"]["transport_queued_bytes"] = {
            "value": float(sum(t.queued_bytes for t in transports)),
            "high_water": float(
                sum(t.queued_bytes_hwm for t in transports)
            ),
        }
        if shaper is not None:
            snap["netem"] = shaper.active_summary()
        return snap

    # The span journal opens just before the protocol starts: peers that
    # raced ahead may hand us deliverable traffic from inside
    # ``process.start()``, and those spans must reach the sink.
    span_journal: Optional[SpanJournal] = None
    if config.span_path is not None:
        span_journal = SpanJournal(config.span_path, me, start_time=sched.now)
        spans.add_sink(span_journal.sink())
        if config.trace_requests:
            reqlog.add_sink(span_journal.request_sink())
    if shaper is not None:
        # Armed at protocol start so the schedule's event times share
        # the same origin as the workload deadline (and the sim's).
        shaper.arm(sched)
    process.start()
    if serve_server is not None:
        # The bootstrap view may have installed without the rewire hook
        # (static mode has none); seed the lease from it either way.
        serve_server.on_view(membership.view)
        host, serve_port = config.serve_addr
        await serve_server.start(host, serve_port)

    # Observability plane: the lag sampler always runs (10 Hz timer —
    # its absence from the disabled-cost budget is deliberate, it IS
    # the baseline); profiler and /metrics are opt-in.
    lag_sampler = EventLoopLagSampler(sched, telemetry)
    lag_sampler.start()
    profiler: Optional[SamplingProfiler] = None
    if config.profile_path is not None:
        profiler = SamplingProfiler()
        profiler.start()
    metrics_server: Any = None
    if config.metrics_addr is not None:
        # Imported lazily to keep the node's import graph lean when the
        # metrics plane is off.
        from repro.obs.httpexport import MetricsServer

        def health() -> Dict[str, Any]:
            view = membership.view
            if (
                isinstance(client, _RewiringClient)
                and client.current_view is not None
            ):
                view = client.current_view
            info: Dict[str, Any] = {
                "node": me,
                "view_id": view.view_id,
                "members": list(view.members),
                "role": (
                    "leader"
                    if view.members and view.members[0] == me
                    else "follower"
                ),
            }
            if serve_server is not None:
                info["lease_holder"] = serve_server.lease.leader
                info["lease_held"] = serve_server.lease.holds()
                info["applied_index"] = serve_server.machine.applied_index
            return info

        metrics_server = MetricsServer(me, telemetry_snapshot, health)
        metrics_host, metrics_port = config.metrics_addr
        await metrics_server.start(metrics_host, metrics_port)
        logger.info(
            "metrics plane listening on %s:%s", metrics_host,
            metrics_server.port,
        )

    start_time = sched.now
    journal.write({"type": "start", "time": start_time, "node_id": me})
    logger.info("protocol started at %.6f", start_time)
    if config.messages_per_sender is not None:
        # Fixed-count workload: no time deadline; quiescence decides.
        deadline[0] = start_time
    else:
        deadline[0] = start_time + config.duration_s
    if me in config.senders:
        refill()

    # ------------------------------------------------------------------
    # Run until told to stop.  Static mode self-detects quiescence:
    # deadline passed and the ring silent for ``quiet_s``.  With live
    # membership a node must NOT self-exit on local silence — a silent
    # peer may be dead but not yet suspected, and exiting would skip
    # the view change whose recovery finishes propagating stability to
    # laggards.  The launcher owns termination there: it watches all
    # survivor journals and SIGTERMs everyone simultaneously (which
    # also avoids a suspect-and-reflush cascade as nodes wind down).
    # ``max_run_s`` stays as the local backstop in both modes.
    # ------------------------------------------------------------------
    stop_requested = asyncio.Event()
    try:
        loop.add_signal_handler(signal.SIGTERM, stop_requested.set)
    except (NotImplementedError, RuntimeError):  # pragma: no cover
        pass
    timed_out = False
    last_counters = (-1, -1)
    last_change = sched.now
    last_snapshot = sched.now
    while True:
        try:
            await asyncio.wait_for(stop_requested.wait(), _POLL_S)
            logger.info("stop requested (SIGTERM)")
            break
        except asyncio.TimeoutError:
            pass
        now = sched.now
        if (
            span_journal is not None
            and now - last_snapshot >= _TELEMETRY_SNAPSHOT_S
        ):
            span_journal.write_telemetry(now, telemetry_snapshot())
            last_snapshot = now
        counters = (
            sum(t.frames_received for t in transports),
            sum(t.frames_sent for t in transports),
        )
        queued = sum(t.queued_bytes for t in transports)
        if counters != last_counters or queued > 0:
            last_counters = counters
            last_change = now
        for ring_transport in transports:
            if ring_transport.failure is not None:
                logger.error(
                    "transport failure: %s", ring_transport.failure
                )
                raise NetworkError(f"node {me}: {ring_transport.failure}")
        if now - start_time >= config.max_run_s:
            timed_out = True
            logger.warning("max_run_s (%.1fs) reached", config.max_run_s)
            break
        if config.view_changes or serve_server is not None:
            continue  # the launcher signals the stop
        if now < deadline[0]:
            continue
        if now - last_change >= config.quiet_s:
            break
    try:
        loop.remove_signal_handler(signal.SIGTERM)
    except (NotImplementedError, RuntimeError, ValueError):  # pragma: no cover
        pass

    end_time = sched.now
    lag_sampler.stop()
    if profiler is not None:
        profiler.stop()
        samples = profiler.write_collapsed(config.profile_path)
        logger.info(
            "profiler wrote %d samples to %s", samples, config.profile_path
        )
    if metrics_server is not None:
        await metrics_server.close()
    if serve_server is not None:
        await serve_server.close()
    process.stop()
    if isinstance(detector, HeartbeatFailureDetector):
        detector.stop()
    for ring_transport in transports:
        await ring_transport.close()
    logger.info(
        "stopped after %.3fs: %d broadcast, %d delivered, %d reconnects, "
        "%d tx stalls", end_time - start_time, len(run.sent),
        len(run.app_deliveries), transport.reconnects, transport.tx_stalls,
    )

    final_view = membership.view
    if isinstance(client, _RewiringClient) and client.current_view is not None:
        final_view = client.current_view
    record = {
        "schema": "repro.live_node/1",
        "node_id": me,
        "start_time": start_time,
        "end_time": end_time,
        "timed_out": timed_out,
        "final_view": {
            "view_id": final_view.view_id,
            "members": list(final_view.members),
        },
        "deliveries": [
            {
                "origin": d.message_id.origin,
                "local_seq": d.message_id.local_seq,
                "sequence": d.sequence,
                "time": d.time,
                "size_bytes": d.size_bytes,
                **(
                    {"ring": d.ring, "slot": d.slot}
                    if d.ring is not None
                    else {}
                ),
            }
            for d in run.deliveries
        ],
        "app_deliveries": run.app_deliveries,
        "broadcasts": run.broadcasts,
        "sent": [
            {"origin": mid.origin, "local_seq": mid.local_seq}
            for mid in run.sent
        ],
        "stats": {
            "frames_sent": sum(t.frames_sent for t in transports),
            "frames_received": sum(t.frames_received for t in transports),
            "bytes_sent": sum(t.bytes_sent for t in transports),
            "bytes_received": sum(t.bytes_received for t in transports),
            "reconnects": sum(t.reconnects for t in transports),
            "retargets": sum(t.retargets for t in transports),
            "control_frames_sent": transport.control_frames_sent,
            "control_frames_received": transport.control_frames_received,
            "flushes": sum(t.flushes for t in transports),
            "batches_sent": sum(t.batches_sent for t in transports),
            "batched_frames": sum(t.batched_frames for t in transports),
            "acks_ridden": sum(t.acks_ridden for t in transports),
            "batches_received": sum(t.batches_received for t in transports),
            "broadcasts": process.stats_broadcasts,
            "deliveries": process.stats_deliveries,
            "acks_piggybacked": process.stats_acks_piggybacked,
            "acks_standalone": process.stats_acks_standalone,
        },
        "telemetry": telemetry_snapshot(),
    }
    if serve_server is not None:
        record["serve"] = serve_server.stats()
    if cpu is not None:
        record["cpu_stages"] = cpu.totals()
    if metrics_server is not None:
        record["metrics_port"] = metrics_server.port
    if span_journal is not None:
        span_journal.write_telemetry(end_time, record["telemetry"])
        span_journal.close()
    journal.write({"type": "end", "time": end_time})
    journal.close()
    return record


def run_node(config: LiveNodeConfig) -> Dict[str, Any]:
    """Run one live node to completion; returns its result record."""
    return asyncio.run(_run(config))
