"""Profiling hooks: event-loop lag, per-stage CPU, sampled stacks.

Three instruments sized to answer one question from the ROADMAP —
*where does the protocol-CPU bound of the batched fast path live?*

* :class:`EventLoopLagSampler` — a self-rescheduling timer measuring
  how late the loop fires it (scheduling lag = event-loop saturation)
  plus the process CPU-busy fraction over each interval, separating
  "the loop is busy computing" from "the loop is waiting on I/O".
  Cheap enough to run always (default 10 Hz).
* :class:`CpuAccountant` — opt-in per-stage CPU accounting on the hot
  path: named stages (frame decode, FSR automaton, command apply, ...)
  accumulate thread CPU time (``time.thread_time``) and wall time, so
  a telemetry snapshot shows protocol CPU split by stage against the
  sampler's I/O-wait remainder.
* :class:`SamplingProfiler` — an opt-in statistical profiler: a
  daemon thread samples the event-loop thread's stack via
  ``sys._current_frames`` and writes flamegraph-compatible collapsed
  stacks (``a;b;c 42`` lines, feedable to ``flamegraph.pl`` or
  speedscope) — stdlib only, no signal handlers, safe under asyncio.

Everything is off (or not constructed) by default; the disabled-mode
benchmarks in EXPERIMENTS.md gate the zero-cost claim.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter as _Counter
from typing import Any, Dict, List, Optional

from repro.obs.telemetry import Telemetry


class EventLoopLagSampler:
    """Measure event-loop scheduling lag and CPU-busy fraction.

    Schedules itself every ``interval_s`` on the loop (via the node's
    scheduler, so it works on any ``Clock``-bearing runtime) and
    records how much later than requested it actually ran.  On a
    healthy idle loop the lag is microseconds; a loop pinned by
    protocol CPU shows lag approaching its batching/dispatch bursts.

    Per interval it also diffs ``time.process_time()`` against wall
    time: ``cpu_busy_fraction`` ~ 1.0 means the loop is compute-bound,
    ~ 0.0 means it is parked in the selector waiting on I/O.
    """

    def __init__(
        self,
        sched: Any,
        telemetry: Telemetry,
        interval_s: float = 0.1,
    ) -> None:
        self._sched = sched
        self._telemetry = telemetry
        self.interval_s = interval_s
        self._handle: Optional[Any] = None
        self._expected: Optional[float] = None
        self._last_cpu: Optional[float] = None
        self._last_wall: Optional[float] = None
        self._lag_gauge = telemetry.gauge("event_loop_lag_s")
        self._lag_hist = telemetry.histogram("event_loop_lag_s")
        self._busy_gauge = telemetry.gauge("cpu_busy_fraction")
        self.samples = 0

    def start(self) -> None:
        self._expected = self._sched.now + self.interval_s
        self._last_cpu = time.process_time()
        self._last_wall = self._sched.now
        self._handle = self._sched.schedule(self.interval_s, self._tick)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        now = self._sched.now
        lag = max(0.0, now - (self._expected or now))
        self._lag_gauge.set(lag)
        self._lag_hist.observe(lag)
        cpu = time.process_time()
        if self._last_cpu is not None and self._last_wall is not None:
            wall_delta = now - self._last_wall
            if wall_delta > 0:
                self._busy_gauge.set(
                    min(1.0, (cpu - self._last_cpu) / wall_delta)
                )
        self._last_cpu = cpu
        self._last_wall = now
        self.samples += 1
        self._expected = now + self.interval_s
        self._handle = self._sched.schedule(self.interval_s, self._tick)


class _StageSpan:
    """Reusable enter/exit timer for one named stage (non-reentrant)."""

    __slots__ = ("cpu_s", "wall_s", "count", "_cpu0", "_wall0")

    def __init__(self) -> None:
        self.cpu_s = 0.0
        self.wall_s = 0.0
        self.count = 0
        self._cpu0 = 0.0
        self._wall0 = 0.0

    def __enter__(self) -> "_StageSpan":
        self._cpu0 = time.thread_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.cpu_s += time.thread_time() - self._cpu0
        self.wall_s += time.perf_counter() - self._wall0
        self.count += 1


class CpuAccountant:
    """Per-stage CPU/wall accounting for hot-path seams.

    Call sites hold the stage span once and wrap the work::

        span = accountant.stage("decode")
        ...
        with span:
            frame = decode(buf)

    ``None``-guarding at the seam keeps disabled runs at one attribute
    check.  :meth:`publish` pushes accumulated totals into telemetry
    gauges (``cpu_stage_<name>_s`` / ``wall_stage_<name>_s`` /
    ``stage_<name>_count``) so they ride the normal snapshot path.
    """

    def __init__(self) -> None:
        self._stages: Dict[str, _StageSpan] = {}

    def stage(self, name: str) -> _StageSpan:
        span = self._stages.get(name)
        if span is None:
            span = self._stages[name] = _StageSpan()
        return span

    def totals(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"cpu_s": s.cpu_s, "wall_s": s.wall_s, "count": s.count}
            for name, s in sorted(self._stages.items())
        }

    def publish(self, telemetry: Telemetry) -> None:
        for name, span in self._stages.items():
            telemetry.gauge(f"cpu_stage_{name}_s").set(span.cpu_s)
            telemetry.gauge(f"wall_stage_{name}_s").set(span.wall_s)
            telemetry.gauge(f"stage_{name}_count").set(float(span.count))


class SamplingProfiler:
    """Statistical stack sampler emitting collapsed flamegraph lines.

    Samples the *target thread* (default: the thread that constructed
    the profiler, i.e. the event loop) at ``interval_s`` from a daemon
    thread.  ``sys._current_frames`` gives a consistent snapshot of the
    target's stack without tracing overhead on the sampled code —
    steady-state cost is one dict build per sample, independent of the
    workload's call rate.

    ``write_collapsed`` emits ``root;caller;leaf count`` lines — the
    format ``flamegraph.pl`` and speedscope ingest directly.
    """

    def __init__(
        self,
        interval_s: float = 0.005,
        target_thread_id: Optional[int] = None,
    ) -> None:
        self.interval_s = interval_s
        self._target = (
            target_thread_id if target_thread_id is not None
            else threading.get_ident()
        )
        self._stacks: _Counter = _Counter()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples = 0

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self._target)
            if frame is None:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < 128:
                code = frame.f_code
                stack.append(f"{code.co_name} ({code.co_filename.rsplit('/', 1)[-1]}:{code.co_firstlineno})")
                frame = frame.f_back
                depth += 1
            self._stacks[";".join(reversed(stack))] += 1
            self.samples += 1

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines, hottest first."""
        return [
            f"{stack} {count}"
            for stack, count in self._stacks.most_common()
        ]

    def write_collapsed(self, path: str) -> int:
        """Write collapsed stacks to ``path``; returns the sample count."""
        with open(path, "w") as fh:
            for line in self.collapsed():
                fh.write(line + "\n")
        return self.samples
