"""Request-scoped tracing for the serve stack.

Message-lifecycle spans (:mod:`repro.obs.span`) stop at the replication
layer: they trace a ring message from ``broadcast`` to ``delivered``
but say nothing about the client request that caused it.  A
*request event* marks one stage of a client request's life::

    send -> recv -> enqueued -> proposed -> ordered -> applied
         -> responded -> acked

``send``/``acked`` are stamped client-side (node ``-1``); the rest are
stamped by the serving replica.  ``proposed`` carries the
``MessageId`` the session envelope was broadcast under, which joins a
request onto the message-lifecycle spans for the same payload — one
``repro obs`` timeline covers both layers.

Point markers record *how* a request was served rather than a stage
boundary: ``local_read`` / ``cached`` (the non-ordered serve paths),
``ordered_fallback`` (a read-only op pushed through the total order by
a lease or barrier rejection), and ``failover_resend`` (the client
re-sent pending requests after rotating servers).

:func:`request_breakdown` decomposes client-observed latency into
queue/replication/apply/respond stages — the serve-layer analogue of
the paper's §4.3.1 hop/sequencing/stability breakdown — and
:func:`crosscheck_request_latency` hard-gates the traced end-to-end
mean against the load generator's independently measured latencies,
the same 5% bar as :func:`repro.obs.analyze.crosscheck_latency`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import CheckFailure
from repro.types import MessageId

#: Stage events in causal order.  ``send``/``acked`` are client-side;
#: the rest are server-side.  Cached/local requests skip the ordered
#: stages (``enqueued`` .. ``applied``).
REQUEST_KINDS = (
    "send", "recv", "enqueued", "proposed", "ordered",
    "applied", "responded", "acked",
)

#: Point markers: serve-path taken / client failover activity.  They
#: never bound a stage; the breakdown only counts them.
REQUEST_MARKERS = ("local_read", "cached", "ordered_fallback", "failover_resend")

#: Causal rank for sorting a request's events when timestamps tie.
REQUEST_KIND_RANK: Dict[str, int] = {
    kind: rank for rank, kind in enumerate(REQUEST_KINDS)
}

#: Stage names of the request breakdown, in lifecycle order.
REQUEST_STAGES = ("queue", "replication", "apply", "respond")

#: Node id stamped on client-side events (clients are not ring nodes).
CLIENT_NODE = -1


@dataclass(frozen=True)
class RequestEvent:
    """One lifecycle event (or marker) for one client request.

    Keyed by ``(client, seq)`` — the same identity the exactly-once
    session layer dedups on — so retries and failover resends fold
    onto one request.  ``origin``/``local_seq`` are set on ``proposed``
    events only: the join key onto message-lifecycle spans.
    """

    time: float
    node: int
    kind: str
    client: str
    seq: int
    origin: Optional[int] = None
    local_seq: Optional[int] = None

    @property
    def message_id(self) -> Optional[MessageId]:
        if self.origin is None or self.local_seq is None:
            return None
        return MessageId(origin=self.origin, local_seq=self.local_seq)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "type": "req",
            "time": self.time,
            "node": self.node,
            "kind": self.kind,
            "client": self.client,
            "seq": self.seq,
        }
        if self.origin is not None:
            out["origin"] = self.origin
        if self.local_seq is not None:
            out["local_seq"] = self.local_seq
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RequestEvent":
        return cls(
            time=float(data["time"]),  # type: ignore[arg-type]
            node=int(data["node"]),  # type: ignore[arg-type]
            kind=str(data["kind"]),
            client=str(data["client"]),
            seq=int(data["seq"]),  # type: ignore[arg-type]
            origin=(
                int(data["origin"]) if data.get("origin") is not None  # type: ignore[arg-type]
                else None
            ),
            local_seq=(
                int(data["local_seq"]) if data.get("local_seq") is not None  # type: ignore[arg-type]
                else None
            ),
        )

    def __str__(self) -> str:
        join = ""
        if self.origin is not None:
            join = f" msg=({self.origin},{self.local_seq})"
        return (
            f"[{self.time:.6f}] n{self.node} {self.kind} "
            f"{self.client}#{self.seq}{join}"
        )


def request_sort_key(event: RequestEvent) -> tuple:
    """Sort key placing a request's events in causal lifecycle order."""
    return (
        event.time,
        REQUEST_KIND_RANK.get(event.kind, len(REQUEST_KINDS)),
        event.node,
    )


class RequestLog:
    """Append-only request-event log; same discipline as ``SpanLog``.

    Disabled by default — one attribute check per emission site, no
    allocation.  Sinks (a live node's span journal) see every record as
    it is emitted; an event that reaches neither the in-memory store
    (capacity full) nor any sink counts as dropped.
    """

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self._records: List[RequestEvent] = []
        self._capacity = capacity
        self._dropped = 0
        self._sinks: List[Callable[[RequestEvent], None]] = []

    def emit(
        self,
        time: float,
        node: int,
        kind: str,
        client: str,
        seq: int,
        origin: Optional[int] = None,
        local_seq: Optional[int] = None,
    ) -> None:
        """Record one request event if request tracing is enabled."""
        if not self.enabled:
            return
        event = RequestEvent(
            time=time, node=node, kind=kind, client=client, seq=seq,
            origin=origin, local_seq=local_seq,
        )
        if self._capacity is None or len(self._records) < self._capacity:
            self._records.append(event)
        elif not self._sinks:
            self._dropped += 1
        for sink in self._sinks:
            sink(event)

    def add_sink(self, sink: Callable[[RequestEvent], None]) -> None:
        self._sinks.append(sink)

    def records(self) -> List[RequestEvent]:
        return list(self._records)

    @property
    def dropped(self) -> int:
        return self._dropped

    def __len__(self) -> int:
        return len(self._records)


def requests_by_key(
    events: Iterable[RequestEvent],
) -> Dict[Tuple[str, int], List[RequestEvent]]:
    """Group request events by ``(client, seq)``, in lifecycle order."""
    grouped: Dict[Tuple[str, int], List[RequestEvent]] = {}
    for event in events:
        grouped.setdefault((event.client, event.seq), []).append(event)
    for group in grouped.values():
        group.sort(key=request_sort_key)
    return grouped


@dataclass
class RequestBreakdown:
    """Client-observed latency decomposed into serve-layer stages.

    The four stages cover *ordered-path* requests (the ones that rode
    the total order) and sum to their end-to-end latency exactly —
    every boundary is one shared event timestamp:

    * **queue** — client ``send`` until the envelope is ``proposed``
      (wire transit plus the server's dispatch/enqueue work);
    * **replication** — ``proposed`` until the total order delivers it
      back (``ordered``): the full broadcast lifecycle;
    * **apply** — ``ordered`` until the session machine ``applied`` it
      (decode + dedup + inner-machine CPU);
    * **respond** — ``applied`` until the client saw the ack.

    ``overall`` summarises end-to-end latency over *all* traced
    requests (local reads and cached answers included), which is the
    population the load generator measures — the cross-check target.
    """

    #: Ordered-path requests with a complete stage lifecycle.
    requests: int
    #: Traced requests skipped for an incomplete lifecycle.
    skipped: int
    stages: Dict[str, "Any"]
    #: End-to-end stats over the ordered-path requests above.
    end_to_end: "Any"
    #: End-to-end stats over all traced requests (every serve path).
    overall: "Any"
    #: All requests with both ``send`` and ``acked`` stamps.
    total: int
    #: Serve-path / failover marker counts.
    markers: Dict[str, int]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "skipped": self.skipped,
            "total": self.total,
            "stages": {name: s.to_dict() for name, s in self.stages.items()},
            "end_to_end": self.end_to_end.to_dict(),
            "overall": self.overall.to_dict(),
            "markers": dict(self.markers),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RequestBreakdown":
        from repro.obs.analyze import StageStats

        return cls(
            requests=data["requests"],
            skipped=data["skipped"],
            total=data["total"],
            stages={
                name: StageStats.from_dict(s)
                for name, s in data["stages"].items()
            },
            end_to_end=StageStats.from_dict(data["end_to_end"]),
            overall=StageStats.from_dict(data["overall"]),
            markers=dict(data["markers"]),
        )

    def render_table(self) -> str:
        header = f"{'stage':<12} {'mean ms':>9} {'p50 ms':>9} {'p99 ms':>9} {'share':>7}"
        lines = [header, "-" * len(header)]
        for name in REQUEST_STAGES:
            s = self.stages[name]
            lines.append(
                f"{name:<12} {s.mean_s * 1e3:>9.2f} {s.p50_s * 1e3:>9.2f} "
                f"{s.p99_s * 1e3:>9.2f} {s.share * 100:>6.1f}%"
            )
        e = self.end_to_end
        lines.append("-" * len(header))
        lines.append(
            f"{'ordered e2e':<12} {e.mean_s * 1e3:>9.2f} {e.p50_s * 1e3:>9.2f} "
            f"{e.p99_s * 1e3:>9.2f} {'100.0%':>7}"
        )
        o = self.overall
        lines.append(
            f"{'all paths':<12} {o.mean_s * 1e3:>9.2f} {o.p50_s * 1e3:>9.2f} "
            f"{o.p99_s * 1e3:>9.2f} {'':>7}"
        )
        marks = ", ".join(
            f"{name}={self.markers.get(name, 0)}" for name in REQUEST_MARKERS
        )
        lines.append(
            f"({self.requests} ordered of {self.total} traced requests, "
            f"{self.skipped} incomplete; {marks})"
        )
        return "\n".join(lines)


def request_breakdown(events: Iterable[RequestEvent]) -> RequestBreakdown:
    """Decompose traced requests into queue/replication/apply/respond.

    Retries fold by ``(client, seq)``: the *first* event of each kind
    wins, so a request resent after failover is measured from its
    original submission — exactly what the client observed.  Requests
    missing ``send`` or ``acked`` (in flight at shutdown) are skipped;
    ordered-path requests additionally need ``proposed``/``ordered``/
    ``applied`` to contribute stage samples.
    """
    from repro.metrics.stats import mean
    from repro.obs.analyze import _stats

    queue: List[float] = []
    replication: List[float] = []
    apply: List[float] = []
    respond: List[float] = []
    ordered_e2e: List[float] = []
    all_e2e: List[float] = []
    skipped = 0
    markers: Dict[str, int] = {name: 0 for name in REQUEST_MARKERS}

    for _key, group in requests_by_key(events).items():
        first: Dict[str, float] = {}
        for event in group:
            if event.kind in markers:
                markers[event.kind] += 1
            elif event.kind not in first:
                first[event.kind] = event.time
        if "send" not in first or "acked" not in first:
            skipped += 1
            continue
        all_e2e.append(first["acked"] - first["send"])
        if not all(k in first for k in ("proposed", "ordered", "applied")):
            continue  # local/cached path: no ordered stages to decompose
        if first["acked"] < first["applied"]:
            # The ack raced ahead of the ordered application: a failover
            # duplicate rode the total order after a cached/local answer
            # had already satisfied the client.  The client-observed
            # latency (counted above) was not produced by these stages,
            # so crediting them would yield negative respond times.
            continue
        # Boundaries are shared event timestamps, so the four components
        # sum to the ordered end-to-end value exactly.
        queue.append(first["proposed"] - first["send"])
        replication.append(first["ordered"] - first["proposed"])
        apply.append(first["applied"] - first["ordered"])
        respond.append(first["acked"] - first["applied"])
        ordered_e2e.append(first["acked"] - first["send"])

    if not all_e2e:
        raise CheckFailure(
            "no traced request completed a send/acked round trip; was the "
            "run traced with --trace-requests?"
        )
    if not ordered_e2e:
        raise CheckFailure(
            "no traced request took the ordered path (proposed/ordered/"
            "applied); nothing to decompose into stages"
        )

    mean_e2e = mean(ordered_e2e)
    return RequestBreakdown(
        requests=len(ordered_e2e),
        skipped=skipped,
        total=len(all_e2e),
        stages={
            "queue": _stats(queue, mean_e2e),
            "replication": _stats(replication, mean_e2e),
            "apply": _stats(apply, mean_e2e),
            "respond": _stats(respond, mean_e2e),
        },
        end_to_end=_stats(ordered_e2e, mean_e2e),
        overall=_stats(all_e2e, mean(all_e2e)),
        markers=markers,
    )


def crosscheck_request_latency(
    breakdown: RequestBreakdown,
    mean_latency_s: float,
    rel_tolerance: float = 0.05,
) -> None:
    """Assert traced latency matches the load generator's measurement.

    The serve-layer acceptance bar: the request-stage breakdown (whose
    stages sum to the traced end-to-end by construction) must explain
    the latency the load generator measured through its own
    timestamps, not merely co-exist with it.  Both populations are
    "every completed request", so their means must agree within
    ``rel_tolerance``.
    """
    traced = breakdown.overall.mean_s
    reference = max(mean_latency_s, 1e-9)
    drift = abs(traced - mean_latency_s) / reference
    if drift > rel_tolerance:
        raise CheckFailure(
            f"request traces give {traced * 1e3:.2f} ms mean end-to-end "
            f"but the load generator measured {mean_latency_s * 1e3:.2f} ms "
            f"({drift * 100:.1f}% apart > {rel_tolerance * 100:.0f}%)"
        )
