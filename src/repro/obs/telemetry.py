"""Runtime telemetry: counters, high-water gauges, and histograms.

The live runtime accumulates operational metrics the simulator cannot
see — reconnects, ``tx_ready`` backpressure stalls, send-queue depth
high-water marks, heartbeat RTTs, view-install durations.  A
:class:`Telemetry` registry holds them by name, snapshots to a plain
dict (for JSONL journals and ``BENCH_live.json``), and renders a
Prometheus-style text exposition for ``python -m repro obs``.

Instruments are plain Python objects with no locks: each live node is
single-threaded (one asyncio loop), and the simulator is sequential by
construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Instantaneous value with a high-water mark."""

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value


class Histogram:
    """Sample distribution (durations in seconds, depths, ...).

    Keeps raw samples — live runs are short and bounded, so memory is
    not a concern, and raw samples let the analyzer compute any
    percentile exactly via :func:`repro.metrics.stats.percentile`.
    """

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    def summary(self) -> Dict[str, float]:
        # Imported here, not at module level: the stats helpers live in
        # the metrics package, which imports the cluster, which imports
        # the protocol core — and the core imports ``repro.obs``.
        from repro.metrics.stats import mean, percentile

        if not self.samples:
            return {"count": 0}
        return {
            "count": len(self.samples),
            "sum": sum(self.samples),
            "min": min(self.samples),
            "max": max(self.samples),
            "mean": mean(self.samples),
            "p50": percentile(self.samples, 50.0),
            "p99": percentile(self.samples, 99.0),
        }


class Telemetry:
    """Named registry of counters, gauges, and histograms.

    Instruments are created on first use so emitting code never needs a
    registration step::

        telemetry.counter("transport_reconnects").inc()
        telemetry.histogram("heartbeat_rtt_s").observe(rtt)
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram()
        return instrument

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-dict snapshot for JSONL journals and bench payloads."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {
                name: {"value": g.value, "high_water": g.high_water}
                for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.summary() for name, h in sorted(self.histograms.items())
            },
        }


def render_prometheus(
    snapshots: Dict[int, Dict[str, object]],
    prefix: str = "repro",
    extra: Optional[Dict[str, float]] = None,
) -> str:
    """Render per-node telemetry snapshots as Prometheus text exposition.

    ``snapshots`` maps node id -> :meth:`Telemetry.snapshot` dict.
    Counters become ``<prefix>_<name>{node="i"}``; gauges emit value and
    ``_high_water``; histograms emit Prometheus summary series (count,
    sum, and quantile-labelled samples).  ``extra`` adds unlabelled
    top-level gauges (e.g. the analyzer's stage shares).
    """
    lines: List[str] = []
    names_seen: set = set()

    def header(name: str, metric_type: str) -> None:
        if name not in names_seen:
            names_seen.add(name)
            lines.append(f"# TYPE {name} {metric_type}")

    for node in sorted(snapshots):
        snap = snapshots[node]
        for name, value in sorted(dict(snap.get("counters", {})).items()):
            metric = f"{prefix}_{name}_total"
            header(metric, "counter")
            lines.append(f'{metric}{{node="{node}"}} {value}')
        for name, gauge in sorted(dict(snap.get("gauges", {})).items()):
            metric = f"{prefix}_{name}"
            header(metric, "gauge")
            lines.append(f'{metric}{{node="{node}"}} {gauge["value"]}')
            hw_metric = f"{prefix}_{name}_high_water"
            header(hw_metric, "gauge")
            lines.append(f'{hw_metric}{{node="{node}"}} {gauge["high_water"]}')
        for name, hist in sorted(dict(snap.get("histograms", {})).items()):
            metric = f"{prefix}_{name}"
            header(metric, "summary")
            count = hist.get("count", 0)
            lines.append(f'{metric}_count{{node="{node}"}} {count}')
            if count:
                lines.append(f'{metric}_sum{{node="{node}"}} {hist["sum"]}')
                for label, key in (("0.5", "p50"), ("0.99", "p99")):
                    if key in hist:
                        lines.append(
                            f'{metric}{{node="{node}",quantile="{label}"}} {hist[key]}'
                        )
    for name, value in sorted((extra or {}).items()):
        metric = f"{prefix}_{name}"
        header(metric, "gauge")
        lines.append(f"{metric} {value}")
    return "\n".join(lines) + "\n"
