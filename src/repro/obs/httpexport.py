"""Live metrics plane: a per-node HTTP ``/metrics`` + ``/healthz`` endpoint.

Until now every metric was post-mortem — JSONL journals merged after
the run.  :class:`MetricsServer` makes a running node scrapable: a
minimal asyncio HTTP/1.0-style server (stdlib only; the container has
no aiohttp) answering

* ``GET /metrics`` — Prometheus text exposition (version 0.0.4),
  rendered by the same :func:`repro.obs.telemetry.render_prometheus`
  the post-mortem path uses, so a live scrape and the final snapshot
  expose identical series names;
* ``GET /healthz`` — a JSON liveness/role summary (node id, leader,
  view, lease state, applied cursor).

Each request is answered and the connection closed — no keep-alive,
no pipelining; scrapers are low-rate.  The callables are invoked on
the node's event loop, so they read single-threaded state safely.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, Optional, Set, Tuple

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Cap on an inbound request head; scrape requests are tiny.
_MAX_REQUEST_BYTES = 8192


class MetricsServer:
    """One node's HTTP observability endpoint."""

    def __init__(
        self,
        node: int,
        snapshot_fn: Callable[[], Dict[str, Any]],
        health_fn: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self.node = node
        self._snapshot_fn = snapshot_fn
        self._health_fn = health_fn
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    async def start(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(self._handle, host, port)
        sockets = self._server.sockets or []
        self.port = sockets[0].getsockname()[1] if sockets else port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                ConnectionError):
            writer.close()
            return
        if len(head) > _MAX_REQUEST_BYTES:
            await self._respond(writer, 400, "text/plain", "request too large\n")
            return
        request_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = request_line.split()
        method, path = (parts[0], parts[1]) if len(parts) >= 2 else ("", "")
        path = path.split("?", 1)[0]
        if method not in ("GET", "HEAD"):
            await self._respond(writer, 405, "text/plain", "method not allowed\n")
            return
        try:
            if path == "/metrics":
                from repro.obs.telemetry import render_prometheus

                body = render_prometheus({self.node: self._snapshot_fn()})
                await self._respond(writer, 200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/healthz":
                health = self._health_fn() if self._health_fn is not None else {}
                health.setdefault("node", self.node)
                await self._respond(
                    writer, 200, "application/json",
                    json.dumps(health, sort_keys=True) + "\n",
                )
            else:
                await self._respond(writer, 404, "text/plain", "not found\n")
        except Exception as exc:  # scrape must never take the node down
            await self._respond(writer, 500, "text/plain", f"error: {exc}\n")

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, ctype: str, body: str
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 500: "Internal Server Error"}
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'Unknown')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def http_get(
    host: str, port: int, path: str, timeout_s: float = 5.0
) -> Tuple[int, str]:
    """Minimal HTTP GET for scraping a :class:`MetricsServer`.

    Returns ``(status_code, body)``.  Raises ``OSError`` /
    ``asyncio.TimeoutError`` on connection failure, like any client.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout_s
    )
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    parts = status_line.split()
    status = int(parts[1]) if len(parts) >= 2 and parts[1].isdigit() else 0
    return status, body.decode("utf-8", "replace")


async def fetch_metrics(host: str, port: int, timeout_s: float = 5.0) -> str:
    """Scrape ``/metrics``; returns the Prometheus text body."""
    status, body = await http_get(host, port, "/metrics", timeout_s)
    if status != 200:
        raise OSError(f"metrics scrape returned HTTP {status}")
    return body


def prometheus_metric_names(text: str, suffix: str = "_total") -> Set[str]:
    """Metric names (optionally filtered by suffix) in an exposition.

    Used by the serve runner's scrape-parity gate: every counter series
    a live scrape exposes must appear in the set the post-mortem
    snapshot renders.
    """
    names: Set[str] = set()
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name = line.split("{", 1)[0].split(" ", 1)[0]
        if name.endswith(suffix):
            names.add(name)
    return names
