"""Unified observability: message-lifecycle spans and runtime telemetry.

One instrumentation layer for both runtimes — the discrete-event
simulator and the live asyncio/TCP cluster emit the same per-message
lifecycle spans (``broadcast -> fwd_hop -> sequenced -> stored ->
stable -> delivered``) through the shared ``Clock`` protocol, and live
nodes add operational telemetry the simulator cannot see (reconnects,
backpressure stalls, heartbeat RTTs, view-install durations).

Everything is off by default and free when disabled; see DESIGN.md
§"Observability" and ``python -m repro obs``.

Only :mod:`repro.obs.span` is imported eagerly: the protocol core
imports it, so the package init must not pull in the analysis side
(whose stats helpers live next to the metrics collector, which imports
the cluster, which imports the protocol core).  The remaining names
resolve lazily on first attribute access.
"""

from typing import TYPE_CHECKING

from repro.obs.span import KIND_RANK, SPAN_KINDS, SpanEvent, SpanLog

if TYPE_CHECKING:  # pragma: no cover - typing-time only
    from repro.obs.analyze import (  # noqa: F401
        LinkUtilization,
        StageBreakdown,
        StageStats,
        crosscheck_latency,
        link_utilization,
        prometheus_snapshot,
        recovery_outage_from_spans,
        render_link_table,
        stage_breakdown,
    )
    from repro.obs.httpexport import (  # noqa: F401
        MetricsServer,
        fetch_metrics,
        http_get,
        prometheus_metric_names,
    )
    from repro.obs.journal import (  # noqa: F401
        SpanJournal,
        Timeline,
        load_span_journal,
        merge_span_journals,
        timeline_from_spanlog,
    )
    from repro.obs.profile import (  # noqa: F401
        CpuAccountant,
        EventLoopLagSampler,
        SamplingProfiler,
    )
    from repro.obs.reqtrace import (  # noqa: F401
        RequestBreakdown,
        RequestEvent,
        RequestLog,
        crosscheck_request_latency,
        request_breakdown,
    )
    from repro.obs.telemetry import (  # noqa: F401
        Counter,
        Gauge,
        Histogram,
        Telemetry,
        render_prometheus,
    )

_LAZY = {
    "LinkUtilization": "repro.obs.analyze",
    "StageBreakdown": "repro.obs.analyze",
    "StageStats": "repro.obs.analyze",
    "crosscheck_latency": "repro.obs.analyze",
    "link_utilization": "repro.obs.analyze",
    "prometheus_snapshot": "repro.obs.analyze",
    "recovery_outage_from_spans": "repro.obs.analyze",
    "render_link_table": "repro.obs.analyze",
    "stage_breakdown": "repro.obs.analyze",
    "MetricsServer": "repro.obs.httpexport",
    "fetch_metrics": "repro.obs.httpexport",
    "http_get": "repro.obs.httpexport",
    "prometheus_metric_names": "repro.obs.httpexport",
    "CpuAccountant": "repro.obs.profile",
    "EventLoopLagSampler": "repro.obs.profile",
    "SamplingProfiler": "repro.obs.profile",
    "RequestBreakdown": "repro.obs.reqtrace",
    "RequestEvent": "repro.obs.reqtrace",
    "RequestLog": "repro.obs.reqtrace",
    "crosscheck_request_latency": "repro.obs.reqtrace",
    "request_breakdown": "repro.obs.reqtrace",
    "SpanJournal": "repro.obs.journal",
    "Timeline": "repro.obs.journal",
    "load_span_journal": "repro.obs.journal",
    "merge_span_journals": "repro.obs.journal",
    "timeline_from_spanlog": "repro.obs.journal",
    "Counter": "repro.obs.telemetry",
    "Gauge": "repro.obs.telemetry",
    "Histogram": "repro.obs.telemetry",
    "Telemetry": "repro.obs.telemetry",
    "render_prometheus": "repro.obs.telemetry",
}

__all__ = [
    "KIND_RANK",
    "SPAN_KINDS",
    "SpanEvent",
    "SpanLog",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
