"""Span journals and the cross-node timeline merger.

Live nodes append every span event (and periodic telemetry snapshots)
to a per-node JSONL file, flushed line by line — the same
crash-surviving discipline as the chaos event journal, so a SIGKILLed
node's spans survive up to at worst one torn final line.  The merger
joins per-node files into one :class:`Timeline`: all events rebased to
a common origin and sorted, ready for ``python -m repro obs``.

The monotonic clock live nodes stamp spans with is system-wide on
Linux, so cross-process timestamps are directly comparable after a
single rebase.  Simulated runs skip the files entirely —
:func:`timeline_from_spanlog` wraps an in-memory ``SpanLog``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TextIO

from repro.obs.reqtrace import RequestEvent, request_sort_key
from repro.obs.span import SpanEvent, SpanLog, lifecycle_sort_key
from repro.types import MessageId

SPAN_JOURNAL_SCHEMA = "repro.span_journal/1"
TIMELINE_SCHEMA = "repro.timeline/1"


class SpanJournal:
    """Append-and-flush JSONL writer for one node's spans + telemetry.

    The first line is a ``span_meta`` header naming the node; a journal
    without it never reached the point of emitting spans and loaders
    reject it (mirrors the chaos journal's start-barrier rule).
    """

    def __init__(self, path: Optional[str], node: int, start_time: float = 0.0) -> None:
        self._fh: Optional[TextIO] = open(path, "w") if path else None
        self.node = node
        if self._fh is not None:
            self._write({
                "type": "span_meta",
                "schema": SPAN_JOURNAL_SCHEMA,
                "node": node,
                "start_time": start_time,
            })

    def _write(self, entry: Dict[str, Any]) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(entry) + "\n")
        self._fh.flush()

    def write_span(self, event: SpanEvent) -> None:
        self._write(event.to_dict())

    def write_request(self, event: RequestEvent) -> None:
        self._write(event.to_dict())

    def write_telemetry(self, time: float, snapshot: Dict[str, Any]) -> None:
        self._write({"type": "telemetry", "time": time, "snapshot": snapshot})

    def sink(self) -> Any:
        """A callable suitable for :meth:`SpanLog.add_sink`."""
        return self.write_span

    def request_sink(self) -> Any:
        """A callable suitable for :meth:`RequestLog.add_sink`."""
        return self.write_request

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def load_span_journal(path: str) -> Optional[Dict[str, Any]]:
    """Load one per-node span journal; torn-tail tolerant.

    Returns ``None`` for a missing file or one with no ``span_meta``
    header (the node never started emitting).  Otherwise returns
    ``{"node", "start_time", "events", "telemetry"}`` where ``events``
    is a list of :class:`SpanEvent` and ``telemetry`` the list of
    snapshot entries in write order.
    """
    entries: List[Dict[str, Any]] = []
    try:
        with open(path) as fh:
            for line in fh:
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    break  # torn tail line from a SIGKILL mid-write
    except OSError:
        return None
    meta = next((e for e in entries if e.get("type") == "span_meta"), None)
    if meta is None:
        return None
    events = [
        SpanEvent.from_dict(entry)
        for entry in entries
        if entry.get("type") == "span"
    ]
    requests = [
        RequestEvent.from_dict(entry)
        for entry in entries
        if entry.get("type") == "req"
    ]
    telemetry = [entry for entry in entries if entry.get("type") == "telemetry"]
    return {
        "node": meta["node"],
        "start_time": meta.get("start_time", 0.0),
        "events": events,
        "requests": requests,
        "telemetry": telemetry,
    }


@dataclass
class Timeline:
    """A merged, rebased, time-sorted cross-node span timeline.

    ``telemetry`` holds each node's *final* telemetry snapshot (the
    live counters at the end of the run); ``duration_s`` spans from the
    rebased origin to the last event, which is what the per-link
    utilization summary divides by.
    """

    events: List[SpanEvent] = field(default_factory=list)
    telemetry: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    duration_s: float = 0.0
    #: Request-scoped serve-layer events (``--trace-requests`` runs).
    requests: List[RequestEvent] = field(default_factory=list)
    #: Span events lost to a capacity cap at collection time.
    dropped: int = 0

    def messages(self) -> List[MessageId]:
        seen: Dict[MessageId, None] = {}
        for event in self.events:
            seen.setdefault(event.message_id, None)
        return list(seen)

    def lifecycle(self, message: MessageId) -> List[SpanEvent]:
        return sorted(
            (
                e for e in self.events
                if e.origin == message.origin and e.local_seq == message.local_seq
            ),
            key=lifecycle_sort_key,
        )

    def by_message(self) -> Dict[MessageId, List[SpanEvent]]:
        """All lifecycles at once (one pass, not one scan per message)."""
        grouped: Dict[MessageId, List[SpanEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.message_id, []).append(event)
        for events in grouped.values():
            events.sort(key=lifecycle_sort_key)
        return grouped

    def nodes(self) -> List[int]:
        ids = {e.node for e in self.events} | set(self.telemetry)
        return sorted(ids)

    def rings(self) -> List[int]:
        """Inner-ring ids present (multiring runs); empty otherwise."""
        return sorted({e.ring for e in self.events if e.ring is not None})

    def for_ring(self, ring: int) -> "Timeline":
        """The sub-timeline of one inner ring's span events."""
        return Timeline(
            events=[e for e in self.events if e.ring == ring],
            telemetry=self.telemetry,
            duration_s=self.duration_s,
        )

    def request_keys(self) -> List[tuple]:
        """Distinct ``(client, seq)`` request identities, sorted."""
        return sorted({(r.client, r.seq) for r in self.requests})

    # ------------------------------------------------------------------
    # Persistence (the merged-timeline artifact ``repro obs`` consumes)
    # ------------------------------------------------------------------
    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(json.dumps({
                "type": "timeline_meta",
                "schema": TIMELINE_SCHEMA,
                "duration_s": self.duration_s,
                "nodes": self.nodes(),
                "dropped": self.dropped,
            }) + "\n")
            for node in sorted(self.telemetry):
                fh.write(json.dumps({
                    "type": "telemetry",
                    "node": node,
                    "snapshot": self.telemetry[node],
                }) + "\n")
            for event in self.events:
                fh.write(json.dumps(event.to_dict()) + "\n")
            for request in self.requests:
                fh.write(json.dumps(request.to_dict()) + "\n")

    @classmethod
    def load_jsonl(cls, path: str) -> "Timeline":
        events: List[SpanEvent] = []
        requests: List[RequestEvent] = []
        telemetry: Dict[int, Dict[str, Any]] = {}
        duration = 0.0
        dropped = 0
        with open(path) as fh:
            for line in fh:
                try:
                    entry = json.loads(line)
                except ValueError:
                    break  # tolerate a torn tail here too
                kind = entry.get("type")
                if kind == "timeline_meta":
                    duration = float(entry.get("duration_s", 0.0))
                    dropped = int(entry.get("dropped", 0))
                elif kind == "telemetry":
                    telemetry[int(entry["node"])] = entry["snapshot"]
                elif kind == "span":
                    events.append(SpanEvent.from_dict(entry))
                elif kind == "req":
                    requests.append(RequestEvent.from_dict(entry))
        events.sort(key=lifecycle_sort_key)
        requests.sort(key=request_sort_key)
        if events and not duration:
            duration = events[-1].time - min(e.time for e in events)
        return cls(
            events=events, telemetry=telemetry, duration_s=duration,
            requests=requests, dropped=dropped,
        )


def _rebase(event: SpanEvent, t0: float) -> SpanEvent:
    if t0 == 0.0:
        return event
    return SpanEvent(
        time=event.time - t0,
        node=event.node,
        kind=event.kind,
        origin=event.origin,
        local_seq=event.local_seq,
        sequence=event.sequence,
        hop=event.hop,
        ring=event.ring,
    )


def rebase_request(event: RequestEvent, t0: float) -> RequestEvent:
    """Shift one request event onto the merged timeline's origin.

    Public (unlike the span ``_rebase``) because the serve runner must
    rebase *client-side* events it collected in the launcher process —
    the monotonic clock is system-wide on Linux, so subtracting the
    same ``t0`` as the node journals puts them on one axis.
    """
    if t0 == 0.0:
        return event
    return RequestEvent(
        time=event.time - t0,
        node=event.node,
        kind=event.kind,
        client=event.client,
        seq=event.seq,
        origin=event.origin,
        local_seq=event.local_seq,
    )


def merge_span_journals(
    paths: Dict[int, str], t0: Optional[float] = None
) -> Timeline:
    """Join per-node span journals into one cross-node timeline.

    ``t0`` is the rebase origin; pass the run's earliest node start so
    span times align with the merged ``ExperimentResult``.  Defaults to
    the earliest journal ``start_time``.  Journals that never started
    (missing/empty) are skipped — a crashed node contributes whatever
    it flushed before dying.
    """
    loaded = {}
    for node, path in paths.items():
        journal = load_span_journal(path)
        if journal is not None:
            loaded[node] = journal
    if not loaded:
        return Timeline()
    if t0 is None:
        t0 = min(journal["start_time"] for journal in loaded.values())
    events: List[SpanEvent] = []
    requests: List[RequestEvent] = []
    telemetry: Dict[int, Dict[str, Any]] = {}
    for node, journal in loaded.items():
        events.extend(_rebase(event, t0) for event in journal["events"])
        requests.extend(
            rebase_request(event, t0) for event in journal.get("requests", [])
        )
        if journal["telemetry"]:
            telemetry[node] = journal["telemetry"][-1]["snapshot"]
    events.sort(key=lifecycle_sort_key)
    requests.sort(key=request_sort_key)
    duration = max(
        (e.time for e in events),
        default=max((r.time for r in requests), default=0.0),
    )
    return Timeline(
        events=events, telemetry=telemetry, duration_s=duration,
        requests=requests,
    )


def timeline_from_spanlog(
    spans: SpanLog,
    duration_s: Optional[float] = None,
    telemetry: Optional[Dict[int, Dict[str, Any]]] = None,
) -> Timeline:
    """Wrap an in-memory (simulated) span log as a timeline."""
    events = sorted(spans.records(), key=lifecycle_sort_key)
    if duration_s is None:
        duration_s = max((e.time for e in events), default=0.0)
    return Timeline(
        events=events, telemetry=dict(telemetry or {}), duration_s=duration_s,
        dropped=spans.dropped,
    )
