"""Timeline analysis: latency-stage breakdown and link utilization.

The paper's latency story (§4.3.1) is stage-level: end-to-end latency
decomposes into the forward hops to the leader, the sequencing wait,
and the stability wait.  :func:`stage_breakdown` reproduces that
decomposition from a merged span timeline:

* **hop** — TO-broadcast until the leader assigns a sequence number
  (the ``FwdData`` arc plus the leader's queue);
* **sequencing** — sequence assignment until the message becomes
  *stable* at the last backup ``p_t`` (the ``SeqData`` ring transit);
* **stability** — stability until the last process app-delivers
  (stable/ack propagation plus hold-back release).

The three components sum to the end-to-end latency *by construction*
(each boundary is one span event), so the breakdown and the metrics
collector cannot tell different stories — and a cross-check against
``ExperimentResult.broadcasts`` submission timestamps enforces that the
two reports share one submission-time source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import CheckFailure
from repro.metrics.stats import mean, percentile
from repro.obs.journal import Timeline
from repro.obs.telemetry import render_prometheus
from repro.types import BroadcastRecord, MessageId

#: Stage names in lifecycle order.
STAGES = ("hop", "sequencing", "stability")

#: Allowed drift between a ``broadcast`` span and the authoritative
#: submission timestamp in ``ExperimentResult.broadcasts``.  Both are
#: stamped in the same event-loop iteration (the same sim instant in
#: simulation), so anything beyond bookkeeping jitter means the two
#: reports no longer share a submission-time source.
SUBMIT_DRIFT_TOLERANCE_S = 0.010


@dataclass(frozen=True)
class StageStats:
    """Distribution summary of one latency stage across messages."""

    mean_s: float
    p50_s: float
    p99_s: float
    #: This stage's share of mean end-to-end latency (0..1).
    share: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "share": self.share,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "StageStats":
        return cls(
            mean_s=data["mean_s"],
            p50_s=data["p50_s"],
            p99_s=data["p99_s"],
            share=data["share"],
        )


@dataclass
class StageBreakdown:
    """Latency-stage decomposition of a run."""

    messages: int
    #: Messages skipped for an incomplete lifecycle (e.g. in flight at
    #: a crash, or delivered only after the trace window closed).
    skipped: int
    stages: Dict[str, StageStats]
    end_to_end: StageStats

    def to_dict(self) -> Dict[str, Any]:
        return {
            "messages": self.messages,
            "skipped": self.skipped,
            "stages": {name: s.to_dict() for name, s in self.stages.items()},
            "end_to_end": self.end_to_end.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StageBreakdown":
        return cls(
            messages=data["messages"],
            skipped=data["skipped"],
            stages={
                name: StageStats.from_dict(s)
                for name, s in data["stages"].items()
            },
            end_to_end=StageStats.from_dict(data["end_to_end"]),
        )

    def render_table(self) -> str:
        header = f"{'stage':<12} {'mean ms':>9} {'p50 ms':>9} {'p99 ms':>9} {'share':>7}"
        lines = [header, "-" * len(header)]
        for name in STAGES:
            s = self.stages[name]
            lines.append(
                f"{name:<12} {s.mean_s * 1e3:>9.2f} {s.p50_s * 1e3:>9.2f} "
                f"{s.p99_s * 1e3:>9.2f} {s.share * 100:>6.1f}%"
            )
        e = self.end_to_end
        lines.append("-" * len(header))
        lines.append(
            f"{'end-to-end':<12} {e.mean_s * 1e3:>9.2f} {e.p50_s * 1e3:>9.2f} "
            f"{e.p99_s * 1e3:>9.2f} {'100.0%':>7}"
        )
        lines.append(f"({self.messages} messages, {self.skipped} incomplete)")
        return "\n".join(lines)


def _stats(samples: Sequence[float], mean_e2e: float) -> StageStats:
    return StageStats(
        mean_s=mean(samples),
        p50_s=percentile(samples, 50.0),
        p99_s=percentile(samples, 99.0),
        share=(mean(samples) / mean_e2e) if mean_e2e > 0 else 0.0,
    )


def stage_breakdown(
    timeline: Timeline,
    broadcasts: Optional[Iterable[BroadcastRecord]] = None,
    completions: Optional[Dict[MessageId, float]] = None,
    submit_tolerance_s: float = SUBMIT_DRIFT_TOLERANCE_S,
    strict_submissions: bool = True,
) -> StageBreakdown:
    """Decompose per-message latency into hop/sequencing/stability.

    ``broadcasts`` (when the caller has an ``ExperimentResult``) is the
    authoritative submission-time source — the same one
    :func:`repro.metrics.collector.collect_metrics` uses.  Each
    message's ``broadcast`` span is cross-checked against it and a
    :class:`~repro.errors.CheckFailure` raised on drift beyond
    ``submit_tolerance_s``, so the stage breakdown and the latency
    report cannot silently diverge.  ``completions`` likewise overrides
    the last ``delivered`` span (pass
    ``result.completion_times()`` to score only correct processes).
    Standalone timeline analysis (``python -m repro obs`` on a file)
    passes neither and trusts the spans.

    ``strict_submissions=False`` skips (instead of failing on) traced
    messages absent from ``broadcasts`` — multi-ring runs inject noop
    filler messages below the application, which the rings trace but
    the workload never submitted.
    """
    submit_times: Optional[Dict[MessageId, float]] = None
    if broadcasts is not None:
        submit_times = {
            record.message_id: record.submit_time for record in broadcasts
        }

    hop: List[float] = []
    sequencing: List[float] = []
    stability: List[float] = []
    end_to_end: List[float] = []
    skipped = 0

    for message_id, events in timeline.by_message().items():
        first: Dict[str, float] = {}
        last_delivered: Optional[float] = None
        for event in events:
            if event.kind == "delivered":
                if last_delivered is None or event.time > last_delivered:
                    last_delivered = event.time
            elif event.kind not in first:
                first[event.kind] = event.time

        completion = last_delivered
        if completions is not None:
            completion = completions.get(message_id, completion)
        if (
            "broadcast" not in first
            or "sequenced" not in first
            or "stable" not in first
            or completion is None
        ):
            skipped += 1
            continue

        submit = first["broadcast"]
        if submit_times is not None:
            authoritative = submit_times.get(message_id)
            if authoritative is None:
                if not strict_submissions:
                    skipped += 1
                    continue
                raise CheckFailure(
                    f"span timeline has {message_id} but "
                    "ExperimentResult.broadcasts does not: the stage "
                    "breakdown and the metrics report disagree on what "
                    "was submitted"
                )
            if abs(authoritative - submit) > submit_tolerance_s:
                raise CheckFailure(
                    f"{message_id}: broadcast span at {submit:.6f} but "
                    f"recorded submission at {authoritative:.6f} "
                    f"(drift {abs(authoritative - submit) * 1e3:.2f} ms > "
                    f"{submit_tolerance_s * 1e3:.1f} ms): submission "
                    "timestamps no longer share one source"
                )
            submit = authoritative

        # Boundaries are shared span events, so the three components
        # sum to the end-to-end value exactly.
        hop.append(first["sequenced"] - submit)
        sequencing.append(first["stable"] - first["sequenced"])
        stability.append(completion - first["stable"])
        end_to_end.append(completion - submit)

    if not end_to_end:
        raise CheckFailure(
            "no message in the timeline completed a full lifecycle "
            "(broadcast/sequenced/stable/delivered); was the run traced "
            "with spans enabled?"
        )

    mean_e2e = mean(end_to_end)
    return StageBreakdown(
        messages=len(end_to_end),
        skipped=skipped,
        stages={
            "hop": _stats(hop, mean_e2e),
            "sequencing": _stats(sequencing, mean_e2e),
            "stability": _stats(stability, mean_e2e),
        },
        end_to_end=_stats(end_to_end, mean_e2e),
    )


def ring_breakdowns(
    timeline: Timeline,
    broadcasts: Optional[Iterable[BroadcastRecord]] = None,
) -> Dict[int, StageBreakdown]:
    """Per-inner-ring stage breakdowns of a multi-ring timeline.

    Every FSR lifecycle span of a multi-ring run is tagged with the
    inner ring that carried the message, so each ring's sequencing
    pipeline can be profiled independently — an overloaded or recovering
    ring shows up as that ring's stages ballooning while its siblings
    stay flat.  Rings whose sub-timeline has no completed lifecycle
    (all noops, or all in flight at a crash) are omitted.  Empty for
    single-ring timelines (no ring tags).
    """
    out: Dict[int, StageBreakdown] = {}
    for ring in timeline.rings():
        try:
            out[ring] = stage_breakdown(
                timeline.for_ring(ring),
                broadcasts=broadcasts,
                strict_submissions=False,
            )
        except CheckFailure:
            continue
    return out


def crosscheck_latency(
    breakdown: StageBreakdown,
    mean_latency_s: float,
    rel_tolerance: float = 0.05,
) -> None:
    """Assert the stage sum matches the metrics collector's latency.

    The acceptance bar for the observability layer: hop + sequencing +
    stability must explain the measured end-to-end number, not merely
    co-exist with it.
    """
    stage_sum = sum(breakdown.stages[name].mean_s for name in STAGES)
    reference = max(mean_latency_s, 1e-9)
    drift = abs(stage_sum - mean_latency_s) / reference
    if drift > rel_tolerance:
        raise CheckFailure(
            f"stage breakdown sums to {stage_sum * 1e3:.2f} ms but the "
            f"metrics collector measured {mean_latency_s * 1e3:.2f} ms "
            f"end-to-end ({drift * 100:.1f}% apart > "
            f"{rel_tolerance * 100:.0f}%)"
        )


# ----------------------------------------------------------------------
# Per-link utilization
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LinkUtilization:
    """One ring link (node -> successor), from live telemetry."""

    node: int
    successor: int
    bytes_sent: int
    mbps: float
    tx_stalls: int
    queue_hwm_bytes: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "successor": self.successor,
            "bytes_sent": self.bytes_sent,
            "mbps": self.mbps,
            "tx_stalls": self.tx_stalls,
            "queue_hwm_bytes": self.queue_hwm_bytes,
        }


def link_utilization(timeline: Timeline) -> List[LinkUtilization]:
    """Per-link throughput/backpressure from telemetry snapshots.

    Nodes are assumed to be in ring order (live clusters number them
    so); the link leaving node ``i`` lands on the next telemetry-bearing
    node.  Empty when the timeline carries no telemetry (simulated runs
    report NIC utilization through the simulator's own NIC stats).
    """
    nodes = sorted(timeline.telemetry)
    if not nodes or timeline.duration_s <= 0:
        return []
    links: List[LinkUtilization] = []
    for index, node in enumerate(nodes):
        snap = timeline.telemetry[node]
        counters = dict(snap.get("counters", {}))
        gauges = dict(snap.get("gauges", {}))
        bytes_sent = int(counters.get("transport_bytes_sent", 0))
        links.append(
            LinkUtilization(
                node=node,
                successor=nodes[(index + 1) % len(nodes)],
                bytes_sent=bytes_sent,
                mbps=bytes_sent * 8.0 / timeline.duration_s / 1e6,
                tx_stalls=int(counters.get("transport_tx_stalls", 0)),
                queue_hwm_bytes=float(
                    dict(gauges.get("transport_queued_bytes", {})).get(
                        "high_water", 0.0
                    )
                ),
            )
        )
    return links


def render_link_table(links: List[LinkUtilization]) -> str:
    if not links:
        return "(no telemetry in timeline — simulated run?)"
    header = (
        f"{'link':<10} {'Mb/s':>8} {'bytes':>12} {'stalls':>7} {'queue hwm':>10}"
    )
    lines = [header, "-" * len(header)]
    for link in links:
        lines.append(
            f"{link.node}->{link.successor:<7} {link.mbps:>8.1f} "
            f"{link.bytes_sent:>12} {link.tx_stalls:>7} "
            f"{link.queue_hwm_bytes:>10.0f}"
        )
    return "\n".join(lines)


def prometheus_snapshot(
    timeline: Timeline,
    breakdown: Optional[StageBreakdown] = None,
    requests: Optional[Any] = None,
) -> str:
    """Prometheus text exposition: per-node telemetry + stage gauges.

    ``requests`` (a :class:`~repro.obs.reqtrace.RequestBreakdown`)
    adds the serve-layer request-stage gauges; ``spans_dropped``
    surfaces capacity-capped span loss so a truncated trace can never
    read as a complete one.
    """
    extra: Dict[str, float] = {"spans_dropped": float(timeline.dropped)}
    if breakdown is not None:
        for name in STAGES:
            extra[f"latency_stage_{name}_mean_seconds"] = (
                breakdown.stages[name].mean_s
            )
            extra[f"latency_stage_{name}_share"] = breakdown.stages[name].share
        extra["latency_end_to_end_mean_seconds"] = breakdown.end_to_end.mean_s
        extra["latency_end_to_end_p99_seconds"] = breakdown.end_to_end.p99_s
    if requests is not None:
        from repro.obs.reqtrace import REQUEST_STAGES

        for name in REQUEST_STAGES:
            extra[f"request_stage_{name}_mean_seconds"] = (
                requests.stages[name].mean_s
            )
            extra[f"request_stage_{name}_share"] = requests.stages[name].share
        extra["request_end_to_end_mean_seconds"] = requests.overall.mean_s
        extra["request_end_to_end_p99_seconds"] = requests.overall.p99_s
    return render_prometheus(timeline.telemetry, extra=extra)


# ----------------------------------------------------------------------
# Recovery outage from spans (chaos-live's measurement path)
# ----------------------------------------------------------------------

def recovery_outage_from_spans(
    timeline: Timeline,
    crash_times: Sequence[float],
    survivors: Iterable[int],
) -> Optional[float]:
    """Worst survivor gap in ``delivered`` spans straddling a crash, ms.

    The span-timeline version of
    :func:`repro.chaos.campaign.recovery_outage_ms`: instead of
    ad-hoc per-scenario timing over delivery logs, the outage is read
    off the same lifecycle timeline every other report uses, so outage
    stats and traces cannot disagree.  ``None`` when nobody crashed or
    no survivor delivered on both sides of a crash instant.
    """
    if not crash_times:
        return None
    per_node: Dict[int, List[float]] = {}
    for event in timeline.events:
        if event.kind == "delivered":
            per_node.setdefault(event.node, []).append(event.time)
    worst: Optional[float] = None
    for node in sorted(survivors):
        times = sorted(per_node.get(node, []))
        for crash_at in crash_times:
            before = [t for t in times if t <= crash_at]
            after = [t for t in times if t > crash_at]
            if before and after:
                gap_ms = (min(after) - max(before)) * 1e3
                worst = gap_ms if worst is None else max(worst, gap_ms)
    return worst
