"""Per-message lifecycle spans, shared by the simulator and the live runtime.

A *span event* marks one stage of a message's life on one node::

    broadcast -> fwd_hop(i) -> sequenced -> stored -> stable -> delivered

Events are keyed by the application-level :class:`~repro.types.MessageId`
(``origin``, ``local_seq``) so a message's spans join directly with
``ExperimentResult.broadcasts`` and the metrics collector's completion
times.  Timestamps come from whatever ``Clock`` the emitting runtime
uses — ``Simulator.now`` in simulation, ``loop.time()`` (CLOCK_MONOTONIC)
on live nodes — through one code path.

Like :class:`repro.sim.trace.TraceLog`, a disabled :class:`SpanLog`
costs one attribute check per emission site and allocates nothing, so
benchmark throughput is unaffected.  Call sites guard with
``if spans.enabled:`` *before* building arguments; ``emit`` re-checks
so direct calls stay safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.types import MessageId

#: Lifecycle stages in causal order.  ``fwd_hop`` may repeat (one per
#: non-leader hop on the way to the leader) and ``stored`` appears once
#: per backup; the rest appear once per message per emitting node.
SPAN_KINDS = ("broadcast", "fwd_hop", "sequenced", "stored", "stable", "delivered")

#: Causal rank of each kind — used to sort a message's events into
#: lifecycle order when wall-clock timestamps tie (or, cross-node, when
#: clocks are close enough to interleave).
KIND_RANK: Dict[str, int] = {kind: rank for rank, kind in enumerate(SPAN_KINDS)}


@dataclass(frozen=True)
class SpanEvent:
    """One lifecycle event for one message on one node.

    Kept flat (no nested detail dict) so it serialises to a single
    JSONL object and costs one allocation per event.
    """

    time: float
    node: int
    kind: str
    origin: int
    local_seq: int
    sequence: Optional[int] = None
    hop: Optional[int] = None
    #: Inner ring instance the event happened on (multi-ring only).
    ring: Optional[int] = None

    @property
    def message_id(self) -> MessageId:
        return MessageId(origin=self.origin, local_seq=self.local_seq)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "type": "span",
            "time": self.time,
            "node": self.node,
            "kind": self.kind,
            "origin": self.origin,
            "local_seq": self.local_seq,
        }
        if self.sequence is not None:
            out["sequence"] = self.sequence
        if self.hop is not None:
            out["hop"] = self.hop
        if self.ring is not None:
            out["ring"] = self.ring
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SpanEvent":
        return cls(
            time=float(data["time"]),  # type: ignore[arg-type]
            node=int(data["node"]),  # type: ignore[arg-type]
            kind=str(data["kind"]),
            origin=int(data["origin"]),  # type: ignore[arg-type]
            local_seq=int(data["local_seq"]),  # type: ignore[arg-type]
            sequence=(
                int(data["sequence"]) if data.get("sequence") is not None  # type: ignore[arg-type]
                else None
            ),
            hop=int(data["hop"]) if data.get("hop") is not None else None,  # type: ignore[arg-type]
            ring=int(data["ring"]) if data.get("ring") is not None else None,  # type: ignore[arg-type]
        )

    def __str__(self) -> str:
        extra = ""
        if self.sequence is not None:
            extra += f" seq={self.sequence}"
        if self.hop is not None:
            extra += f" hop={self.hop}"
        if self.ring is not None:
            extra += f" ring={self.ring}"
        return (
            f"[{self.time:.6f}] n{self.node} {self.kind} "
            f"({self.origin},{self.local_seq}){extra}"
        )


def lifecycle_sort_key(event: SpanEvent) -> tuple:
    """Sort key placing a message's events in causal lifecycle order."""
    return (event.time, KIND_RANK.get(event.kind, len(SPAN_KINDS)), event.node)


class SpanLog:
    """Append-only per-message lifecycle log with cheap filtering.

    Mirrors :class:`~repro.sim.trace.TraceLog`'s discipline: disabled by
    default, and a disabled log costs one attribute check per emission
    site.  Sinks (e.g. a live node's JSONL journal) see every record as
    it is emitted.
    """

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self._records: List[SpanEvent] = []
        self._capacity = capacity
        self._dropped = 0
        self._sinks: List[Callable[[SpanEvent], None]] = []

    def emit(
        self,
        time: float,
        node: int,
        kind: str,
        origin: int,
        local_seq: int,
        sequence: Optional[int] = None,
        hop: Optional[int] = None,
        ring: Optional[int] = None,
    ) -> None:
        """Record one lifecycle event if span logging is enabled."""
        if not self.enabled:
            return
        event = SpanEvent(
            time=time, node=node, kind=kind, origin=origin,
            local_seq=local_seq, sequence=sequence, hop=hop, ring=ring,
        )
        if self._capacity is None or len(self._records) < self._capacity:
            self._records.append(event)
        elif not self._sinks:
            # Only count a drop when the event reaches *no* destination:
            # live nodes run capacity=0 with a journal sink, which is
            # streaming, not dropping.
            self._dropped += 1
        for sink in self._sinks:
            sink(event)

    def add_sink(self, sink: Callable[[SpanEvent], None]) -> None:
        """Stream every future event to ``sink`` (e.g. a journal writer)."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def records(
        self,
        kind: Optional[str] = None,
        message: Optional[MessageId] = None,
        node: Optional[int] = None,
    ) -> List[SpanEvent]:
        """Return events, optionally filtered by kind/message/node."""
        return list(self._iter(kind, message, node))

    def count(
        self,
        kind: Optional[str] = None,
        message: Optional[MessageId] = None,
        node: Optional[int] = None,
    ) -> int:
        return sum(1 for _ in self._iter(kind, message, node))

    def lifecycle(self, message: MessageId) -> List[SpanEvent]:
        """All events for one message, in causal lifecycle order."""
        return sorted(self._iter(None, message, None), key=lifecycle_sort_key)

    def messages(self) -> List[MessageId]:
        """Distinct message ids, in first-appearance order."""
        seen: Dict[MessageId, None] = {}
        for event in self._records:
            seen.setdefault(event.message_id, None)
        return list(seen)

    @property
    def dropped(self) -> int:
        return self._dropped

    def _iter(
        self,
        kind: Optional[str],
        message: Optional[MessageId],
        node: Optional[int],
    ) -> Iterator[SpanEvent]:
        for event in self._records:
            if kind is not None and event.kind != kind:
                continue
            if message is not None and (
                event.origin != message.origin
                or event.local_seq != message.local_seq
            ):
                continue
            if node is not None and event.node != node:
                continue
            yield event

    def __len__(self) -> int:
        return len(self._records)

    def dump(self, limit: int = 200) -> str:
        tail = self._records[-limit:]
        lines = [str(event) for event in tail]
        if len(self._records) > limit:
            lines.insert(0, f"... ({len(self._records) - limit} earlier events elided)")
        return "\n".join(lines)
