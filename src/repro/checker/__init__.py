"""Correctness checkers for uniform total order broadcast.

Given an :class:`~repro.cluster.results.ExperimentResult`, the checkers
verify the four properties of the paper's Section 1 plus uniformity:

* validity, uniform agreement, uniform integrity, uniform total order.

Checkers raise :class:`~repro.errors.CheckFailure` naming the violated
property and the first offending message, so a failing property-based
test shrinks to a readable counterexample.
"""

from repro.checker.order import (
    check_agreement,
    check_all,
    check_integrity,
    check_sequence_consistency,
    check_total_order,
    check_uniformity,
    check_validity,
)
from repro.checker.fairness import sender_fairness
from repro.checker.wire_monitor import WireMonitor, attach_wire_monitor

__all__ = [
    "WireMonitor",
    "attach_wire_monitor",
    "check_agreement",
    "check_all",
    "check_integrity",
    "check_sequence_consistency",
    "check_total_order",
    "check_uniformity",
    "check_validity",
    "sender_fairness",
]
