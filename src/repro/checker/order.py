"""Broadcast-property verification over delivery logs.

Two families of checks:

* **order-only** checks (:func:`check_total_order`) compare the relative
  delivery order of common messages across process pairs — they apply
  to any protocol, whatever its internal sequencing;
* **sequence** checks (:func:`check_sequence_consistency`) additionally
  use the protocol-reported sequence numbers, catching bugs the
  pairwise check cannot see (e.g. a sequence number reused for two
  different messages at different processes).

All functions raise :class:`~repro.errors.CheckFailure` with a pointed
message; they return nothing on success so tests read naturally.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cluster.results import ExperimentResult
from repro.errors import CheckFailure
from repro.types import MessageId, ProcessId


def _delivered_ids(result: ExperimentResult, process: ProcessId) -> List[MessageId]:
    return [d.message_id for d in result.delivery_logs[process].deliveries]


def check_integrity(result: ExperimentResult) -> None:
    """Every process delivers each message at most once, and only
    messages that were actually broadcast (uniform integrity)."""
    broadcast_ids: Set[MessageId] = set(result.broadcast_origin)
    # Segmented payloads generate protocol-level ids beyond the app ids;
    # accept any id whose origin actually broadcast something.
    origins_that_sent = {mid.origin for mid in broadcast_ids}
    for process, log in result.delivery_logs.items():
        seen: Set[MessageId] = set()
        for delivery in log.deliveries:
            if delivery.message_id in seen:
                raise CheckFailure(
                    f"integrity: {delivery.message_id} delivered twice at "
                    f"process {process}"
                )
            seen.add(delivery.message_id)
            if delivery.message_id.origin not in origins_that_sent:
                raise CheckFailure(
                    f"integrity: {delivery.message_id} delivered at process "
                    f"{process} but its origin never broadcast"
                )


def check_total_order(result: ExperimentResult) -> None:
    """No two processes deliver common messages in different orders."""
    processes = sorted(result.delivery_logs)
    orders: Dict[ProcessId, Dict[MessageId, int]] = {}
    for process in processes:
        orders[process] = {
            mid: index for index, mid in enumerate(_delivered_ids(result, process))
        }
    for i, p in enumerate(processes):
        for q in processes[i + 1:]:
            common = [mid for mid in _delivered_ids(result, p) if mid in orders[q]]
            positions_q = [orders[q][mid] for mid in common]
            if positions_q != sorted(positions_q):
                # Find the first inversion for a pointed error message.
                for a in range(len(common) - 1):
                    if orders[q][common[a]] > orders[q][common[a + 1]]:
                        raise CheckFailure(
                            "total order: processes "
                            f"{p} and {q} disagree on {common[a]} vs "
                            f"{common[a + 1]}"
                        )


def check_sequence_consistency(result: ExperimentResult) -> None:
    """Sequence numbers map to the same message everywhere, and each
    process delivers in strictly increasing sequence order."""
    global_map: Dict[int, MessageId] = {}
    for process, log in result.delivery_logs.items():
        previous = None
        for delivery in log.deliveries:
            if previous is not None and delivery.sequence <= previous:
                raise CheckFailure(
                    f"sequence: process {process} delivered sequence "
                    f"{delivery.sequence} after {previous}"
                )
            previous = delivery.sequence
            existing = global_map.get(delivery.sequence)
            if existing is None:
                global_map[delivery.sequence] = delivery.message_id
            elif existing != delivery.message_id:
                raise CheckFailure(
                    f"sequence: number {delivery.sequence} maps to "
                    f"{existing} and {delivery.message_id}"
                )


def check_agreement(
    result: ExperimentResult,
    ignore: Iterable[ProcessId] = (),
) -> None:
    """All correct processes deliver the same set of messages.

    ``ignore`` excludes processes with legitimately partial logs (e.g.
    late joiners, which only deliver a suffix).
    """
    correct = sorted(result.correct_processes() - set(ignore))
    if not correct:
        return
    reference = set(_delivered_ids(result, correct[0]))
    for process in correct[1:]:
        delivered = set(_delivered_ids(result, process))
        if delivered != reference:
            only_ref = reference - delivered
            only_here = delivered - reference
            raise CheckFailure(
                f"agreement: process {process} differs from {correct[0]}; "
                f"missing {sorted(map(str, only_ref))[:5]}, "
                f"extra {sorted(map(str, only_here))[:5]}"
            )


def check_uniformity(result: ExperimentResult) -> None:
    """Uniform agreement: anything delivered by *any* process (crashed
    ones included) is delivered by every correct process."""
    correct = sorted(result.correct_processes())
    if not correct:
        return
    correct_sets = {
        process: set(_delivered_ids(result, process)) for process in correct
    }
    for process, log in result.delivery_logs.items():
        for delivery in log.deliveries:
            for peer in correct:
                if delivery.message_id not in correct_sets[peer]:
                    raise CheckFailure(
                        f"uniformity: {delivery.message_id} delivered at "
                        f"process {process} but never at correct process "
                        f"{peer}"
                    )


def check_validity(
    result: ExperimentResult,
    expect_delivery_of: Optional[Sequence[MessageId]] = None,
) -> None:
    """Messages broadcast by correct processes are delivered everywhere.

    By default checks every broadcast whose origin never crashed; pass
    ``expect_delivery_of`` to restrict (e.g. when the run was cut off).
    """
    correct = result.correct_processes()
    if expect_delivery_of is None:
        expect_delivery_of = [
            record.message_id
            for record in result.broadcasts
            if result.broadcast_origin[record.message_id] in correct
        ]
    for process in sorted(correct):
        # Application-level check: the reassembled message arrived.
        delivered = {d.message_id for d in result.app_deliveries[process]}
        for message_id in expect_delivery_of:
            if message_id not in delivered:
                raise CheckFailure(
                    f"validity: {message_id} (correct origin "
                    f"{result.broadcast_origin[message_id]}) never delivered "
                    f"at correct process {process}"
                )


def check_shard_interleave(result: ExperimentResult) -> None:
    """The multiplexed order respects the static slot-to-ring rule.

    Multi-ring runs tag every delivery with the inner ring that ordered
    it and the global multiplexer slot that released it.  The total
    order is only deterministic if every node fills slot ``s`` from ring
    ``s % shards`` — so a mis-interleaved log (right messages, wrong
    ring for a slot, or two nodes disagreeing on a slot's message) is a
    protocol bug even when the pairwise order checks happen to pass.

    No-op for single-ring runs (no ring tags, or ``shards <= 1``).
    """
    # Sim results carry a ClusterConfig (shards on the protocol config);
    # live results carry the LiveClusterSpec (shards on the spec itself).
    config = result.config
    shards = getattr(getattr(config, "protocol_config", None), "shards", None)
    if shards is None:
        shards = getattr(config, "shards", None)
    if shards is None or shards <= 1:
        return
    tagged = any(
        delivery.ring is not None
        for log in result.delivery_logs.values()
        for delivery in log.deliveries
    )
    if not tagged:
        return
    slot_map: Dict[int, MessageId] = {}
    for process, log in result.delivery_logs.items():
        previous_slot = None
        for delivery in log.deliveries:
            if delivery.ring is None or delivery.slot is None:
                raise CheckFailure(
                    f"shard interleave: process {process} delivered "
                    f"{delivery.message_id} without ring/slot tags in a "
                    f"{shards}-shard run"
                )
            if not 0 <= delivery.ring < shards:
                raise CheckFailure(
                    f"shard interleave: process {process} delivered "
                    f"{delivery.message_id} from ring {delivery.ring} "
                    f"(shards={shards})"
                )
            if delivery.slot % shards != delivery.ring:
                raise CheckFailure(
                    f"shard interleave: process {process} filled slot "
                    f"{delivery.slot} from ring {delivery.ring}; the "
                    f"interleaving rule demands ring {delivery.slot % shards}"
                )
            if previous_slot is not None and delivery.slot <= previous_slot:
                raise CheckFailure(
                    f"shard interleave: process {process} delivered slot "
                    f"{delivery.slot} after slot {previous_slot}"
                )
            previous_slot = delivery.slot
            existing = slot_map.get(delivery.slot)
            if existing is None:
                slot_map[delivery.slot] = delivery.message_id
            elif existing != delivery.message_id:
                raise CheckFailure(
                    f"shard interleave: slot {delivery.slot} maps to "
                    f"{existing} and {delivery.message_id}"
                )


def check_all(
    result: ExperimentResult,
    ignore_agreement: Iterable[ProcessId] = (),
) -> None:
    """Run every checker; the first violated property raises."""
    check_integrity(result)
    check_total_order(result)
    check_sequence_consistency(result)
    check_agreement(result, ignore=ignore_agreement)
    check_uniformity(result)
    check_validity(result)
    check_shard_interleave(result)
