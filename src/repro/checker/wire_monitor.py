"""Online FSR wire-invariant monitoring.

The delivery-log checkers (:mod:`repro.checker.order`) verify the
*outcome*; this monitor verifies the *mechanism* while it runs, by
snooping every FSR message a process emits and asserting the structural
invariants of PROTOCOL.md §2:

* sequence numbers leave the leader strictly increasing (per view);
* a ``SeqData`` or ack is only marked stable once it has passed the
  last backup ``p_t`` (equivalently: unstable copies are only ever sent
  by processes at positions ``0..t-1``, stable ones by ``t..n-1``);
* payload-bearing messages stop where they should: ``FwdData`` is never
  sent by the leader, ``SeqData`` never by the origin's predecessor;
* a stable ack is never forwarded by the consumer (position ``t - 1``).

Attach one monitor per cluster via :func:`attach_wire_monitor`; it
wraps each FSR process's port sends.  Violations raise
:class:`~repro.errors.CheckFailure` at the offending send, which makes
protocol bugs fail loudly in any test that uses the monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.fsr.messages import AckBatch, AckMsg, FwdData, SeqData
from repro.core.fsr.process import FSRProcess
from repro.errors import CheckFailure
from repro.types import ProcessId


@dataclass
class WireMonitorStats:
    """Counters of observed traffic, for assertions in tests."""

    fwd_sends: int = 0
    seq_sends: int = 0
    ack_sends: int = 0
    ack_batches: int = 0
    violations_checked: int = 0


class WireMonitor:
    """Invariant checker over one cluster's FSR traffic."""

    def __init__(self) -> None:
        self.stats = WireMonitorStats()
        #: Highest sequence emitted by the leader, per view id.
        self._leader_emitted: Dict[int, int] = {}
        self._processes: Dict[ProcessId, FSRProcess] = {}

    # ------------------------------------------------------------------
    def attach(self, process: FSRProcess) -> None:
        """Wrap ``process``'s port so every send is inspected."""
        self._processes[process.me] = process
        port = process.port
        original_send = port.send

        def checked_send(dst, message, size_bytes=None,
                         _process=process, _original=original_send):
            self.inspect(_process, dst, message)
            _original(dst, message, size_bytes)

        port.send = checked_send  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def inspect(self, process: FSRProcess, dst: ProcessId, message: Any) -> None:
        ring = process.ring
        if ring is None:
            return
        self.stats.violations_checked += 1
        sender_pos = ring.position_of(process.me)

        if isinstance(message, FwdData):
            self.stats.fwd_sends += 1
            for ack in message.piggybacked:
                self._check_ack(process, ring, sender_pos, ack)
            if process.me == ring.leader:
                raise CheckFailure(
                    f"wire: leader {process.me} forwarded un-sequenced "
                    f"{message.message_id} instead of sequencing it"
                )
        elif isinstance(message, SeqData):
            self.stats.seq_sends += 1
            for ack in message.piggybacked:
                self._check_ack(process, ring, sender_pos, ack)
            self._check_seq(process, ring, sender_pos, message)
        elif isinstance(message, AckBatch):
            self.stats.ack_batches += 1
            for ack in message.acks:
                self._check_ack(process, ring, sender_pos, ack)
        # Non-FSR traffic on the port (none today) is ignored.

    def _check_seq(self, process, ring, sender_pos: int, message: SeqData) -> None:
        # Stability: only positions t..n-1 may emit stable payloads;
        # only 0..t-1 may emit unstable ones.
        if message.stable and sender_pos < ring.t:
            raise CheckFailure(
                f"wire: position {sender_pos} sent stable SeqData "
                f"seq={message.sequence} before the last backup p_t"
            )
        if not message.stable and sender_pos >= ring.t:
            raise CheckFailure(
                f"wire: position {sender_pos} sent unstable SeqData "
                f"seq={message.sequence} at/after p_t"
            )
        # Termination: the origin's predecessor converts, never forwards.
        if ring.successor(process.me) == message.origin:
            raise CheckFailure(
                f"wire: {process.me} forwarded SeqData seq={message.sequence} "
                f"to its origin {message.origin} instead of emitting an ack"
            )
        # Leader's OWN emissions are sequenced at injection and queued
        # FIFO, so they leave strictly increasing per view.  (Forwarded
        # foreign SeqData may legitimately jump ahead — the fairness
        # scheduler reorders across origins — so it is not tracked.)
        if process.me == ring.leader and message.origin == process.me:
            view_id = message.view_id
            last = self._leader_emitted.get(view_id, 0)
            if message.sequence <= last:
                raise CheckFailure(
                    f"wire: leader re-emitted its own sequence "
                    f"{message.sequence} (last {last}) in view {view_id}"
                )
            self._leader_emitted[view_id] = message.sequence

    def _check_ack(self, process, ring, sender_pos: int, ack: AckMsg) -> None:
        self.stats.ack_sends += 1
        if ack.stable:
            # The consumer (position t-1) never forwards a stable ack.
            if (sender_pos + 1) % ring.n == ring.t:
                raise CheckFailure(
                    f"wire: consumer {process.me} (position {sender_pos}) "
                    f"forwarded stable ack seq={ack.sequence}"
                )
        else:
            # Unstable acks exist only on the backup arc heading to p_t.
            if sender_pos >= ring.t and ring.t > 0:
                raise CheckFailure(
                    f"wire: position {sender_pos} sent unstable ack "
                    f"seq={ack.sequence} at/after p_t"
                )


def attach_wire_monitor(cluster) -> WireMonitor:
    """Attach a :class:`WireMonitor` to every FSR process of ``cluster``.

    Must be called before ``cluster.start()`` so no send goes unseen.
    Multi-ring clusters get one monitor per inner ring: each ring is an
    independent FSR instance with its own leader and sequence stream, so
    sharing the leader-monotonicity tracker across rings would false-
    positive.  Other protocols are left unmonitored.
    """
    monitor = WireMonitor()
    ring_monitors: Dict[int, WireMonitor] = {}
    for node in cluster.nodes.values():
        protocol = node.protocol
        if isinstance(protocol, FSRProcess):
            monitor.attach(protocol)
            continue
        inner = getattr(protocol, "inner", None)
        if inner:
            for ring_index, process in enumerate(inner):
                if isinstance(process, FSRProcess):
                    ring_monitors.setdefault(
                        ring_index, WireMonitor()
                    ).attach(process)
    return monitor
