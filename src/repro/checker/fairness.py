"""Fairness measurement (paper §4.2.3).

The paper's fairness notion: when several processes TO-broadcast
continuously, each should get the same number of messages delivered per
unit time.  :func:`sender_fairness` quantifies this over a time window
with Jain's index on per-sender delivered counts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.cluster.results import ExperimentResult
from repro.errors import CheckFailure
from repro.metrics.stats import jain_index
from repro.types import ProcessId, SimTime


def sender_fairness(
    result: ExperimentResult,
    senders: Sequence[ProcessId],
    until: Optional[SimTime] = None,
) -> float:
    """Jain index of per-sender completed deliveries up to ``until``.

    Counting *completed* broadcasts before a cutoff (rather than at run
    end, where every backlog has drained) is what exposes unfair
    protocols: a starved sender's messages complete late.
    """
    if not senders:
        raise CheckFailure("fairness needs at least one sender")
    counts: Dict[ProcessId, int] = {pid: 0 for pid in senders}
    for record in result.broadcasts:
        origin = result.broadcast_origin[record.message_id]
        if origin not in counts:
            continue
        completion = result.completion_time(record.message_id)
        if completion is None:
            continue
        if until is not None and completion > until:
            continue
        counts[origin] += 1
    return jain_index([float(c) for c in counts.values()])
