"""The switched fabric, NIC, and host CPU model.

Resource model per node (see DESIGN.md §2 for the calibration story):

* **TX NIC** — serialises outgoing messages; a message of ``b`` bytes
  occupies the TX path for ``params.wire_time(b)`` seconds.
* **Switch** — non-blocking and cut-through at frame granularity: the
  destination NIC starts receiving ``params.first_frame_delay()`` after
  transmission starts, so per-hop latency is one wire time, not two.
* **RX NIC** — serialises incoming messages; simultaneous arrivals from
  several senders queue (this is the constraint that throttles
  sequencer-based protocols).
* **CPU** — one core serialises per-message software work: receive
  processing (``params.cpu_time(b)`` charged before the handler upcall)
  and send-side marshalling jobs submitted via
  :meth:`NetworkEndpoint.cpu_submit`.  Sharing one core is what gives
  every node the same per-message budget whether a message is its own
  or relayed — the property behind the paper's flat ~79 Mb/s.  The
  *application* submit path, however, is backpressured: at most one
  marshalling job occupies the CPU queue at a time and the rest wait in
  an application-side buffer, so a burst of queued sends can never
  delay receive processing (or membership control traffic) by more
  than one job.

Crashed nodes stop sending and receiving atomically: queued and
in-flight transfers involving them are discarded whole (a partially
transmitted message is never delivered).
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.message import Datagram, message_size
from repro.net.params import NetworkParams
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog
from repro.types import ProcessId, TimerHandle

#: Signature of the upcall a node registers to receive messages.
ReceiveHandler = Callable[[ProcessId, Any], None]


@dataclass
class CpuJobHandle:
    """Cancellation handle for a queued CPU job.

    Cancelling a queued job removes its cost entirely (the middleware
    drops the buffer without processing it); a job already executing is
    past cancellation.
    """

    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True


@dataclass
class NicStats:
    """Byte/message accounting for one node's NIC and CPU.

    ``tx_busy_s`` / ``rx_busy_s`` divided by elapsed time give link
    utilisation; the benchmark harness uses them to show where each
    protocol's bottleneck sits (the paper's central argument).
    """

    bytes_tx: int = 0
    bytes_rx: int = 0
    wire_bytes_tx: int = 0
    wire_bytes_rx: int = 0
    messages_tx: int = 0
    messages_rx: int = 0
    messages_lost: int = 0
    #: Arrivals discarded by a full (finite) switch buffer.
    messages_dropped: int = 0
    tx_busy_s: float = 0.0
    rx_busy_s: float = 0.0
    cpu_busy_s: float = 0.0
    max_tx_queue: int = 0
    max_rx_queue: int = 0
    max_cpu_queue: int = 0
    #: Peak depth of the application-side marshal buffer.
    max_tx_cpu_queue: int = 0


class _Nic:
    """Full-duplex NIC plus host CPU for one node (internal)."""

    def __init__(
        self,
        sim: Simulator,
        params: NetworkParams,
        node_id: ProcessId,
        network: "Network",
    ) -> None:
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.network = network
        self.handler: Optional[ReceiveHandler] = None
        self.crashed = False
        self.stats = NicStats()
        #: Multiplier on per-message CPU costs (chaos campaigns model a
        #: degraded host by raising it; 1.0 is nominal speed).
        self.cpu_scale = 1.0
        #: Fired whenever the TX queue drains; protocols use this to
        #: pace their send scheduling (lazy fairness decisions).
        self.tx_idle_callbacks: List[Callable[[], None]] = []

        self._tx_queue: Deque[Datagram] = deque()
        self._tx_busy = False
        self._rx_queue: Deque[Datagram] = deque()
        self._rx_busy = False
        #: Shared CPU: (cost, handle, action, is_marshal) entries.
        self._cpu_queue: Deque[
            Tuple[float, "CpuJobHandle", Callable[[], None], bool]
        ] = deque()
        self._cpu_busy = False
        #: Marshalling jobs waiting in the application-side buffer
        #: (at most one marshal job sits in the CPU queue at a time).
        self._marshal_waiting: Deque[
            Tuple[float, "CpuJobHandle", Callable[[], None]]
        ] = deque()
        self._marshal_in_core = False
        # Arrival events scheduled for in-flight transmissions from this
        # NIC, so a crash can retract messages not yet on the receiver.
        self._inflight: Dict[int, TimerHandle] = {}

    # ---------------------------- TX path ----------------------------
    def enqueue_tx(self, datagram: Datagram) -> None:
        if self.crashed:
            return
        self._tx_queue.append(datagram)
        self.stats.max_tx_queue = max(self.stats.max_tx_queue, len(self._tx_queue))
        if not self._tx_busy:
            self._start_tx()

    def _start_tx(self) -> None:
        if not self._tx_queue or self.crashed:
            return
        datagram = self._tx_queue.popleft()
        wire_time = self.params.wire_time(datagram.size_bytes)
        self._tx_busy = True
        self.stats.bytes_tx += datagram.size_bytes
        self.stats.wire_bytes_tx += self.params.framing.wire_bytes(datagram.size_bytes)
        self.stats.messages_tx += 1
        self.stats.tx_busy_s += wire_time

        lost = self.network._roll_loss(self.node_id, datagram.dst)
        if lost:
            self.stats.messages_lost += 1
        elif self.network._link_blocked(self.node_id, datagram.dst):
            # Partitioned link: the frame left this NIC but the cut is
            # beyond it — the network holds it until the link heals
            # (mirroring a stalled TCP connection, not a drop).
            self.network._hold(datagram)
        else:
            # Cut-through at frame granularity: the receiver starts
            # receiving after one frame (or after the whole message, if
            # the message is smaller than a frame).
            arrival_delay = self.network._arrival_delay(
                self.node_id,
                datagram.dst,
                min(
                    self.params.first_frame_delay(),
                    self.params.propagation_delay_s + wire_time,
                ),
            )
            handle = self.sim.schedule(
                arrival_delay, self.network._arrive, datagram
            )
            self._inflight[datagram.datagram_id] = handle
            self.sim.schedule(
                arrival_delay, self._inflight.pop, datagram.datagram_id, None
            )
        self.network.trace.emit(
            self.sim.now,
            "net",
            "tx_start",
            src=self.node_id,
            dst=datagram.dst,
            bytes=datagram.size_bytes,
            lost=lost,
        )
        self.sim.schedule(wire_time, self._tx_done)

    def _tx_done(self) -> None:
        self._tx_busy = False
        if self.crashed:
            return
        self._start_tx()
        if not self._tx_busy and not self._tx_queue:
            for callback in list(self.tx_idle_callbacks):
                callback()
                if self._tx_busy:
                    break

    @property
    def tx_idle(self) -> bool:
        return not self._tx_busy and not self._tx_queue

    # ---------------------------- RX path ----------------------------
    def enqueue_rx(self, datagram: Datagram) -> None:
        if self.crashed:
            return
        cap = self.params.switch_buffer_messages
        if cap is not None and len(self._rx_queue) >= cap:
            # Drop-tail at the (finite) switch buffer; the reliable
            # channel layer's ARQ recovers the loss.
            self.stats.messages_dropped += 1
            self.network.trace.emit(
                self.sim.now, "net", "drop_tail",
                src=datagram.src, dst=self.node_id,
            )
            return
        self._rx_queue.append(datagram)
        self.stats.max_rx_queue = max(self.stats.max_rx_queue, len(self._rx_queue))
        if not self._rx_busy:
            self._start_rx()

    def _start_rx(self) -> None:
        if not self._rx_queue or self.crashed:
            return
        datagram = self._rx_queue.popleft()
        service = self.params.wire_time(datagram.size_bytes)
        self._rx_busy = True
        self.stats.rx_busy_s += service
        self.sim.schedule(service, self._rx_done, datagram)

    def _rx_done(self, datagram: Datagram) -> None:
        self._rx_busy = False
        if self.crashed:
            return
        self.stats.bytes_rx += datagram.size_bytes
        self.stats.wire_bytes_rx += self.params.framing.wire_bytes(datagram.size_bytes)
        self.stats.messages_rx += 1
        self.enqueue_cpu(
            self.params.cpu_time(datagram.size_bytes), self._handle_upcall, datagram
        )
        self._start_rx()

    # ---------------------------- CPU path ---------------------------
    def enqueue_cpu(
        self, cost: float, action: Callable[..., None], *args: Any
    ) -> "CpuJobHandle":
        """Queue ``action(*args)`` behind ``cost`` seconds of CPU work."""
        handle = CpuJobHandle()
        if self.crashed:
            handle.cancelled = True
            return handle
        cost *= self.cpu_scale
        self._cpu_queue.append((cost, handle, lambda: action(*args), False))
        self.stats.max_cpu_queue = max(self.stats.max_cpu_queue, len(self._cpu_queue))
        if not self._cpu_busy:
            self._start_cpu()
        return handle

    def enqueue_tx_cpu(
        self, cost: float, action: Callable[..., None], *args: Any
    ) -> "CpuJobHandle":
        """Queue a send-side marshalling job (``cost`` seconds).

        Marshalling shares the same CPU as receive processing, but is
        backpressured: at most one marshal job occupies the CPU queue;
        further submissions wait in the application-side buffer.
        """
        handle = CpuJobHandle()
        if self.crashed:
            handle.cancelled = True
            return handle
        cost *= self.cpu_scale
        self._marshal_waiting.append((cost, handle, lambda: action(*args)))
        self.stats.max_tx_cpu_queue = max(
            self.stats.max_tx_cpu_queue, len(self._marshal_waiting)
        )
        self._promote_marshal()
        return handle

    def _promote_marshal(self) -> None:
        """Move the next live waiting marshal job into the CPU queue."""
        if self._marshal_in_core or self.crashed:
            return
        while self._marshal_waiting:
            cost, handle, action = self._marshal_waiting.popleft()
            if handle.cancelled:
                continue
            self._marshal_in_core = True
            self._cpu_queue.append((cost, handle, action, True))
            self.stats.max_cpu_queue = max(
                self.stats.max_cpu_queue, len(self._cpu_queue)
            )
            if not self._cpu_busy:
                self._start_cpu()
            return

    def _start_cpu(self) -> None:
        if self.crashed or self._cpu_busy:
            return
        while self._cpu_queue:
            cost, handle, action, is_marshal = self._cpu_queue.popleft()
            if handle.cancelled:
                if is_marshal:
                    self._marshal_in_core = False
                    self._promote_marshal()
                continue  # cancelled jobs cost nothing
            self._cpu_busy = True
            self.stats.cpu_busy_s += cost
            self.sim.schedule(cost, self._cpu_done, action, is_marshal)
            return

    def _cpu_done(self, action: Callable[[], None], is_marshal: bool) -> None:
        self._cpu_busy = False
        if self.crashed:
            return
        if is_marshal:
            self._marshal_in_core = False
            self._promote_marshal()
        action()
        self._start_cpu()

    def _handle_upcall(self, datagram: Datagram) -> None:
        self.network.trace.emit(
            self.sim.now,
            "net",
            "deliver",
            src=datagram.src,
            dst=self.node_id,
            bytes=datagram.size_bytes,
        )
        if self.handler is not None:
            self.handler(datagram.src, datagram.payload)

    # ---------------------------- Failure ----------------------------
    def crash(self) -> None:
        self.crashed = True
        self._tx_queue.clear()
        self._rx_queue.clear()
        self._cpu_queue.clear()
        self._marshal_waiting.clear()
        for handle in self._inflight.values():
            handle.cancel()
        self._inflight.clear()


class NetworkEndpoint:
    """A node's handle on the network: send messages, receive upcalls."""

    def __init__(self, network: "Network", node_id: ProcessId) -> None:
        self._network = network
        self.node_id = node_id

    def send(self, dst: ProcessId, message: Any, size_bytes: Optional[int] = None) -> None:
        """Send ``message`` to ``dst``.

        ``size_bytes`` overrides the size computed from the message,
        which is useful for tests; normal callers let the message's
        ``wire_size_bytes()`` speak for itself.
        """
        self._network.send(self.node_id, dst, message, size_bytes)

    def on_receive(self, handler: ReceiveHandler) -> None:
        """Register the upcall invoked (post-CPU) for each arrival."""
        self._network.set_handler(self.node_id, handler)

    def on_tx_idle(self, callback: Callable[[], None]) -> None:
        """Register a callback fired whenever the TX queue drains."""
        self._network._nic(self.node_id).tx_idle_callbacks.append(callback)

    def cpu_submit(
        self, size_bytes: int, callback: Callable[[], None]
    ) -> "CpuJobHandle":
        """Charge this node's CPU for marshalling ``size_bytes`` of
        payload it originates, running ``callback`` when the work
        completes.  Submissions are backpressured behind receive
        processing; the returned handle cancels the job (view changes
        drop queued outgoing buffers this way)."""
        nic = self._network._nic(self.node_id)
        return nic.enqueue_tx_cpu(
            self._network.params.cpu_time(size_bytes), callback
        )

    @property
    def tx_idle(self) -> bool:
        """True when the NIC can start transmitting immediately."""
        return self._network._nic(self.node_id).tx_idle

    @property
    def stats(self) -> NicStats:
        """Live NIC/CPU statistics for this node."""
        return self._network.stats_of(self.node_id)

    @property
    def crashed(self) -> bool:
        """Whether this node has been crashed by the failure injector."""
        return self._network.is_crashed(self.node_id)


class Network:
    """The switched LAN connecting all nodes of one simulation.

    Example::

        sim = Simulator()
        net = Network(sim, NetworkParams.fast_ethernet())
        a, b = net.attach(0), net.attach(1)
        b.on_receive(lambda src, msg: print(src, msg))
        a.send(1, b"hello")
        sim.run()
    """

    def __init__(
        self,
        sim: Simulator,
        params: NetworkParams,
        trace: Optional[TraceLog] = None,
        loss_rng: Optional[random.Random] = None,
        jitter_rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.params = params
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self._nics: Dict[ProcessId, _Nic] = {}
        self._loss_rng = loss_rng if loss_rng is not None else random.Random(0)
        self._jitter_rng = jitter_rng if jitter_rng is not None else random.Random(1)
        #: Chaos-campaign degradations: a phase-scoped loss-rate override
        #: (``None`` = use ``params.loss_rate``) and extra jitter added on
        #: top of ``params.propagation_jitter_s``.
        self._loss_override: Optional[float] = None
        self._extra_jitter_s: float = 0.0
        #: Per-directed-link degradations (hostile-network chaos): loss
        #: overrides, extra jitter, and blocked (partitioned) links with
        #: their held in-flight datagrams, released in order on heal.
        self._link_loss: Dict[Tuple[ProcessId, ProcessId], float] = {}
        self._link_jitter: Dict[Tuple[ProcessId, ProcessId], float] = {}
        self._link_blocks: Dict[Tuple[ProcessId, ProcessId], int] = {}
        self._held: Dict[Tuple[ProcessId, ProcessId], List[Datagram]] = {}
        #: Last scheduled arrival time per (src, dst): jitter must never
        #: reorder a flow (a LAN switch is FIFO per flow).
        self._last_arrival: Dict[Tuple[ProcessId, ProcessId], float] = {}
        #: Datagram ids are scoped to this network so two back-to-back
        #: simulations in one interpreter produce bit-identical runs.
        self._datagram_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def attach(self, node_id: ProcessId) -> NetworkEndpoint:
        """Create a NIC for ``node_id`` and return its endpoint."""
        if node_id in self._nics:
            raise NetworkError(f"node {node_id} is already attached")
        self._nics[node_id] = _Nic(self.sim, self.params, node_id, self)
        return NetworkEndpoint(self, node_id)

    def set_handler(self, node_id: ProcessId, handler: ReceiveHandler) -> None:
        self._nic(node_id).handler = handler

    def nodes(self) -> List[ProcessId]:
        """All attached node ids, in attach order."""
        return list(self._nics)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(
        self,
        src: ProcessId,
        dst: ProcessId,
        message: Any,
        size_bytes: Optional[int] = None,
    ) -> None:
        """Queue ``message`` for transmission from ``src`` to ``dst``."""
        if dst not in self._nics:
            raise NetworkError(f"destination node {dst} is not attached")
        src_nic = self._nic(src)
        if src_nic.crashed:
            return  # a crashed node's stray timers send into the void
        if src == dst:
            raise NetworkError("loopback sends are not modelled; handle locally")
        size = message_size(message) if size_bytes is None else size_bytes
        datagram = Datagram(
            src=src,
            dst=dst,
            payload=message,
            size_bytes=size,
            send_time=self.sim.now,
            datagram_id=next(self._datagram_ids),
        )
        src_nic.enqueue_tx(datagram)

    def _arrive(self, datagram: Datagram) -> None:
        nic = self._nics.get(datagram.dst)
        if nic is None or nic.crashed:
            return
        nic.enqueue_rx(datagram)

    def _roll_loss(self, src: ProcessId, dst: ProcessId) -> bool:
        rate = (
            self._loss_override
            if self._loss_override is not None
            else self.params.loss_rate
        )
        rate = max(rate, self._link_loss.get((src, dst), 0.0))
        if rate <= 0.0:
            return False
        return self._loss_rng.random() < rate

    def _arrival_delay(
        self, src: ProcessId, dst: ProcessId, base_delay: float
    ) -> float:
        """Apply per-message jitter, clamped to keep each flow FIFO."""
        jitter = (
            self.params.propagation_jitter_s
            + self._extra_jitter_s
            + self._link_jitter.get((src, dst), 0.0)
        )
        if jitter <= 0.0:
            return base_delay
        draw = self._jitter_rng.random() * jitter
        candidate = self.sim.now + base_delay + draw
        floor = self._last_arrival.get((src, dst), 0.0)
        candidate = max(candidate, floor + 1e-12)
        self._last_arrival[(src, dst)] = candidate
        return candidate - self.sim.now

    # ------------------------------------------------------------------
    # Degradation (chaos campaigns)
    # ------------------------------------------------------------------
    def set_loss_override(self, rate: Optional[float]) -> None:
        """Override the whole-message loss probability (``None`` restores
        ``params.loss_rate``).  Only meaningful when the reliable channel
        layer is active (``loss_rate > 0`` or ``force_reliable``),
        otherwise messages lost during the override are gone for good."""
        if rate is not None and not 0.0 <= rate < 1.0:
            raise NetworkError(f"loss override {rate} outside [0, 1)")
        self._loss_override = rate
        self.trace.emit(self.sim.now, "net", "loss_override", rate=rate)

    def set_extra_jitter(self, extra_s: float) -> None:
        """Add ``extra_s`` of per-message jitter on top of the configured
        ``propagation_jitter_s`` (0 restores nominal).  Arrivals stay
        FIFO per flow via the usual clamping."""
        if extra_s < 0:
            raise NetworkError("extra jitter cannot be negative")
        self._extra_jitter_s = extra_s
        self.trace.emit(self.sim.now, "net", "jitter_override", extra_s=extra_s)

    def set_cpu_scale(self, node_id: ProcessId, scale: float) -> None:
        """Scale ``node_id``'s per-message CPU costs by ``scale`` (a
        degraded host; 1.0 restores nominal speed).  Applies to jobs
        enqueued from now on; jobs already queued keep their cost."""
        if scale <= 0:
            raise NetworkError("cpu scale must be positive")
        self._nic(node_id).cpu_scale = scale
        self.trace.emit(self.sim.now, "net", "cpu_scale", node=node_id, scale=scale)

    # ------------------------------------------------------------------
    # Per-link degradation (hostile-network chaos)
    # ------------------------------------------------------------------
    def set_link_loss(
        self, src: ProcessId, dst: ProcessId, rate: Optional[float]
    ) -> None:
        """Loss probability for the directed link ``src -> dst`` alone
        (``None`` clears it).  Combines with any cluster-wide override
        by taking the worse of the two."""
        if rate is not None and not 0.0 <= rate < 1.0:
            raise NetworkError(f"link loss {rate} outside [0, 1)")
        if rate is None:
            self._link_loss.pop((src, dst), None)
        else:
            self._link_loss[(src, dst)] = rate
        self.trace.emit(
            self.sim.now, "net", "link_loss", src=src, dst=dst, rate=rate
        )

    def set_link_extra_jitter(
        self, src: ProcessId, dst: ProcessId, extra_s: float
    ) -> None:
        """Extra per-message jitter on the directed link ``src -> dst``
        (0 clears it).  FIFO per flow, as ever."""
        if extra_s < 0:
            raise NetworkError("extra jitter cannot be negative")
        if extra_s == 0.0:
            self._link_jitter.pop((src, dst), None)
        else:
            self._link_jitter[(src, dst)] = extra_s
        self.trace.emit(
            self.sim.now, "net", "link_jitter", src=src, dst=dst, extra_s=extra_s
        )

    def set_link_blocked(
        self, src: ProcessId, dst: ProcessId, blocked: bool
    ) -> None:
        """Partition the directed link ``src -> dst``: datagrams are
        held in transmission order and released when the last block is
        lifted (nested blocks stack).  A full partition blocks every
        cross link in both directions; heal releases the backlog, so
        ordering across the heal is exactly what a stalled-then-resumed
        TCP connection would deliver."""
        key = (src, dst)
        if blocked:
            self._link_blocks[key] = self._link_blocks.get(key, 0) + 1
        else:
            count = self._link_blocks.get(key, 0) - 1
            if count > 0:
                self._link_blocks[key] = count
            else:
                self._link_blocks.pop(key, None)
                self._release_held(key)
        self.trace.emit(
            self.sim.now, "net", "link_blocked", src=src, dst=dst,
            blocked=blocked,
        )

    def _link_blocked(self, src: ProcessId, dst: ProcessId) -> bool:
        return self._link_blocks.get((src, dst), 0) > 0

    def _hold(self, datagram: Datagram) -> None:
        self._held.setdefault((datagram.src, datagram.dst), []).append(datagram)

    def _release_held(self, key: Tuple[ProcessId, ProcessId]) -> None:
        held = self._held.pop(key, None)
        if not held:
            return
        src_nic = self._nics.get(key[0])
        if src_nic is None or src_nic.crashed:
            return  # the sender died mid-partition; its frames died too
        for datagram in held:
            delay = self._arrival_delay(
                datagram.src, datagram.dst, self.params.propagation_delay_s
            )
            handle = self.sim.schedule(delay, self._arrive, datagram)
            src_nic._inflight[datagram.datagram_id] = handle
            self.sim.schedule(
                delay, src_nic._inflight.pop, datagram.datagram_id, None
            )

    # ------------------------------------------------------------------
    # Failure + introspection
    # ------------------------------------------------------------------
    def crash(self, node_id: ProcessId) -> None:
        """Crash ``node_id``: it immediately stops sending and receiving."""
        self._nic(node_id).crash()
        for key in list(self._held):
            if key[0] == node_id:
                del self._held[key]
        self.trace.emit(self.sim.now, "net", "crash", node=node_id)

    def is_crashed(self, node_id: ProcessId) -> bool:
        return self._nic(node_id).crashed

    def stats_of(self, node_id: ProcessId) -> NicStats:
        return self._nic(node_id).stats

    def total_wire_bytes(self) -> int:
        """Sum of wire bytes transmitted by all NICs (load metric)."""
        return sum(nic.stats.wire_bytes_tx for nic in self._nics.values())

    def _nic(self, node_id: ProcessId) -> _Nic:
        try:
            return self._nics[node_id]
        except KeyError:
            raise NetworkError(f"node {node_id} is not attached") from None
