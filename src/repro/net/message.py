"""Wire message abstractions.

The network layer treats protocol messages opaquely: all it needs is a
size in bytes.  Protocol packages define their own dataclasses
implementing the :class:`WireMessage` protocol; :class:`Datagram` is the
envelope the network actually moves around.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.types import ProcessId, SimTime

#: Fallback id source for datagrams constructed directly (tests, ad-hoc
#: tools).  The :class:`~repro.net.network.Network` never uses it — it
#: assigns ids from its own per-instance counter, so back-to-back
#: simulations in one interpreter are bit-identical.
_datagram_ids = itertools.count(1)


@runtime_checkable
class WireMessage(Protocol):
    """Anything the network can carry: it must know its own size."""

    def wire_size_bytes(self) -> int:
        """Application-level size of this message in bytes (headers
        included, framing excluded — framing is the network's job)."""
        ...  # pragma: no cover - protocol definition


@dataclass
class Datagram:
    """One message in flight between two NICs.

    ``size_bytes`` is captured at send time so the transfer cost cannot
    change mid-flight even if the payload object is mutated (protocol
    implementations should not mutate sent messages, but the simulator
    does not rely on that discipline).
    """

    src: ProcessId
    dst: ProcessId
    payload: Any
    size_bytes: int
    send_time: SimTime
    datagram_id: int = field(default_factory=lambda: next(_datagram_ids))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("datagram size cannot be negative")


def message_size(message: Any) -> int:
    """Best-effort size of ``message`` in bytes.

    Accepts anything implementing :class:`WireMessage`, plus raw
    ``bytes`` and ``str`` for tests and examples.
    """
    if isinstance(message, (bytes, bytearray)):
        return len(message)
    if isinstance(message, str):
        return len(message.encode("utf-8"))
    sizer = getattr(message, "wire_size_bytes", None)
    if callable(sizer):
        return int(sizer())
    raise TypeError(
        f"cannot determine wire size of {type(message).__name__}; "
        "implement wire_size_bytes()"
    )
