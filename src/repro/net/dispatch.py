"""Layer demultiplexing over one channel stack.

A node runs several independent layers over the same NIC — heartbeats,
membership control traffic, and the total-order protocol itself.  Each
layer gets a named :class:`Port`; messages are wrapped in a two-byte
layer tag on the wire and routed to the right handler on arrival.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.net.channel import ChannelStack
from repro.net.message import message_size
from repro.types import ProcessId

#: Wire cost of the layer tag.
TAG_BYTES = 2

ReceiveHandler = Callable[[ProcessId, Any], None]


@dataclass
class _Enveloped:
    """A layer-tagged message on the wire."""

    layer: str
    inner: Any
    inner_size: int

    def wire_size_bytes(self) -> int:
        return self.inner_size + TAG_BYTES


class Port:
    """One layer's view of the node's network stack."""

    def __init__(self, demux: "LayerDemux", layer: str) -> None:
        self._demux = demux
        self.layer = layer

    @property
    def node_id(self) -> ProcessId:
        return self._demux.node_id

    def send(self, dst: ProcessId, message: Any, size_bytes: Optional[int] = None) -> None:
        """Send ``message`` to the same layer at ``dst``."""
        self._demux.send(self.layer, dst, message, size_bytes)

    def on_receive(self, handler: ReceiveHandler) -> None:
        """Register this layer's delivery upcall."""
        self._demux.register(self.layer, handler)


class LayerDemux:
    """Routes tagged messages between layers sharing one channel stack."""

    def __init__(self, stack: ChannelStack) -> None:
        self._stack = stack
        self._handlers: Dict[str, ReceiveHandler] = {}
        stack.on_receive(self._on_receive)

    @property
    def node_id(self) -> ProcessId:
        return self._stack.node_id

    def port(self, layer: str) -> Port:
        """Create the port for ``layer`` (one per layer name)."""
        if layer in self._handlers:
            raise ConfigurationError(f"layer {layer!r} already has a port")
        self._handlers[layer] = _ignore
        return Port(self, layer)

    def register(self, layer: str, handler: ReceiveHandler) -> None:
        if layer not in self._handlers:
            raise ConfigurationError(f"no port was created for layer {layer!r}")
        self._handlers[layer] = handler

    def send(
        self, layer: str, dst: ProcessId, message: Any, size_bytes: Optional[int]
    ) -> None:
        inner_size = message_size(message) if size_bytes is None else size_bytes
        self._stack.send(dst, _Enveloped(layer, message, inner_size))

    def _on_receive(self, src: ProcessId, message: Any) -> None:
        if not isinstance(message, _Enveloped):
            raise ConfigurationError(
                f"untagged message {type(message).__name__} reached LayerDemux"
            )
        handler = self._handlers.get(message.layer, _ignore)
        handler(src, message.inner)


def _ignore(_src: ProcessId, _message: Any) -> None:
    """Default handler: drop messages for layers with no receiver yet."""
