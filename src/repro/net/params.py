"""Network and host parameterisation.

All physical constants of the simulated cluster live here, so a single
:class:`NetworkParams` value fully describes a testbed.  The default,
:meth:`NetworkParams.fast_ethernet`, is calibrated against the paper's
Table 1: raw TCP goodput of ~94 Mb/s on 100 Mb/s switched Ethernet.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FramingModel:
    """How application bytes map onto wire bytes.

    A message of ``b`` bytes is carried in ``ceil(b / frame_payload)``
    frames, each adding ``frame_overhead`` wire bytes (link, IP, and
    transport headers plus inter-frame gap).  This reproduces the gap
    between the nominal 100 Mb/s line rate and the ~94 Mb/s goodput the
    paper measured with Netperf.
    """

    #: Application payload bytes carried per frame.
    frame_payload: int = 1448
    #: Extra wire bytes per frame (headers, preamble, CRC, IFG).
    frame_overhead: int = 90
    #: Name used in reports ("tcp", "udp", ...).
    name: str = "tcp"

    def __post_init__(self) -> None:
        if self.frame_payload <= 0:
            raise ConfigurationError("frame_payload must be positive")
        if self.frame_overhead < 0:
            raise ConfigurationError("frame_overhead must be non-negative")

    def wire_bytes(self, payload_bytes: int) -> int:
        """Total bytes on the wire for a ``payload_bytes`` message."""
        if payload_bytes < 0:
            raise ConfigurationError("payload size cannot be negative")
        if payload_bytes == 0:
            # Control messages with empty payload still cost one frame.
            return self.frame_overhead
        frames = -(-payload_bytes // self.frame_payload)  # ceil division
        return payload_bytes + frames * self.frame_overhead

    def goodput_fraction(self) -> float:
        """Asymptotic goodput / line-rate ratio for large messages."""
        return self.frame_payload / (self.frame_payload + self.frame_overhead)

    @classmethod
    def tcp_like(cls) -> "FramingModel":
        """TCP/IPv4 over Ethernet with timestamps (1448 B MSS)."""
        return cls(frame_payload=1448, frame_overhead=90, name="tcp")

    @classmethod
    def udp_like(cls) -> "FramingModel":
        """UDP/IPv4 over Ethernet (1472 B datagram payload per frame)."""
        return cls(frame_payload=1472, frame_overhead=94, name="udp")


@dataclass(frozen=True)
class NetworkParams:
    """Complete physical description of the simulated cluster.

    The defaults model the paper's testbed: 100 Mb/s switched Ethernet
    between dual-Itanium machines running a Java middleware (DREAM).
    The per-message CPU costs are the calibration knob that reproduces
    the paper's ~79 Mb/s protocol goodput against the ~94 Mb/s raw
    network ceiling; see DESIGN.md section 2.
    """

    #: Link rate of every NIC, bits per second (full duplex: this rate
    #: is available independently in each direction).
    bandwidth_bps: float = 100e6
    #: One-way propagation + switch forwarding latency, seconds.
    propagation_delay_s: float = 30e-6
    #: Framing overhead model (wire bytes per application byte).
    framing: FramingModel = field(default_factory=FramingModel.tcp_like)
    #: Fixed software cost charged per message received (seconds).
    cpu_per_message_s: float = 150e-6
    #: Per-byte software cost per message received (seconds/byte);
    #: models the middleware copy/marshalling path that dominates for
    #: 100 KB messages on the paper's 900 MHz hosts running a Java
    #: middleware.  Calibrated so FSR saturates near the paper's
    #: 79 Mb/s against the ~94 Mb/s raw network ceiling.
    cpu_per_byte_s: float = 98e-9
    #: Uniform extra propagation delay in [0, jitter] drawn per message
    #: (switch queueing noise).  Arrivals stay FIFO per sender/receiver
    #: pair — a LAN switch never reorders a flow — via clamping.
    propagation_jitter_s: float = 0.0
    #: Probability that a message transfer is lost (whole-message loss;
    #: the reliable channel layer retransmits).  0 disables loss and
    #: lets the channel layer skip acknowledgements entirely.
    loss_rate: float = 0.0
    #: Retransmission timeout used by reliable channels when loss_rate>0.
    #: This is the *base* timeout; consecutive unsuccessful retransmits
    #: back off exponentially (see the two knobs below), so a loss burst
    #: during recovery cannot turn into a retransmit storm.
    retransmit_timeout_s: float = 50e-3
    #: Multiplier applied to the retransmission timeout after each
    #: unsuccessful retransmit (1.0 restores the legacy fixed timeout).
    retransmit_backoff_factor: float = 2.0
    #: Ceiling on the backoff multiplier, as a multiple of the base
    #: timeout (the timeout never exceeds ``cap * retransmit_timeout_s``).
    retransmit_backoff_cap: float = 8.0
    #: Run the reliable-channel ARQ even when ``loss_rate`` is zero.
    #: Chaos campaigns set this so mid-run loss bursts (injected through
    #: :meth:`~repro.net.network.Network.set_loss_override`) find the
    #: ARQ already in place on a nominally loss-free network.
    force_reliable: bool = False
    #: Per-receiver switch buffer capacity, in messages; arrivals beyond
    #: it are dropped (drop-tail).  ``None`` models an ample-buffer
    #: switch, which is what the paper's testbed behaves like for these
    #: loads.  When set, pair with a non-zero ``loss_rate`` path (the
    #: ARQ recovers drops) or keep offered load under capacity.
    switch_buffer_messages: Optional[int] = None

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth_bps must be positive")
        if self.propagation_delay_s < 0:
            raise ConfigurationError("propagation_delay_s must be non-negative")
        if self.propagation_jitter_s < 0:
            raise ConfigurationError("propagation_jitter_s must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1)")
        if self.cpu_per_message_s < 0 or self.cpu_per_byte_s < 0:
            raise ConfigurationError("CPU costs must be non-negative")
        if self.retransmit_timeout_s <= 0:
            raise ConfigurationError("retransmit_timeout_s must be positive")
        if self.retransmit_backoff_factor < 1.0:
            raise ConfigurationError("retransmit_backoff_factor must be >= 1")
        if self.retransmit_backoff_cap < 1.0:
            raise ConfigurationError("retransmit_backoff_cap must be >= 1")
        if self.switch_buffer_messages is not None and self.switch_buffer_messages < 1:
            raise ConfigurationError("switch_buffer_messages must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def wire_time(self, payload_bytes: int) -> float:
        """Seconds a NIC is busy transmitting a ``payload_bytes`` message."""
        return self.framing.wire_bytes(payload_bytes) * 8.0 / self.bandwidth_bps

    def cpu_time(self, payload_bytes: int) -> float:
        """Per-hop software processing time for a message."""
        return self.cpu_per_message_s + self.cpu_per_byte_s * payload_bytes

    def first_frame_delay(self) -> float:
        """Time from TX start until the receiver NIC starts receiving.

        Models cut-through forwarding at frame granularity: propagation
        plus one full frame of store-and-forward delay in the switch.
        """
        frame_bytes = self.framing.frame_payload + self.framing.frame_overhead
        return self.propagation_delay_s + frame_bytes * 8.0 / self.bandwidth_bps

    def raw_goodput_bps(self) -> float:
        """Asymptotic point-to-point goodput (the Netperf number)."""
        return self.bandwidth_bps * self.framing.goodput_fraction()

    def retransmit_timeout_for(
        self, retries: int, outstanding_bytes: int = 0
    ) -> float:
        """ARQ timeout after ``retries`` consecutive unsuccessful
        retransmits: capped exponential backoff from the base timeout.

        ``retries=0`` (the first transmission, and the first retransmit
        armed from it) always uses the base timeout, so behaviour is
        unchanged until a retransmit itself goes unacknowledged.

        ``outstanding_bytes`` — the total size of the sender's unacked
        window — floors the timeout at the window's round-trip
        serialisation cost (TX wire time, RX wire time, receive CPU).
        An acknowledgement physically cannot arrive before the window
        has crossed the wire once, so a timeout below that floor only
        ever produces spurious go-back-N duplicates: with the
        multi-megabyte state transfers a view-change flush sends, a
        fixed small timeout re-queues the whole window faster than the
        NIC drains it and the TX queue grows without bound.  For
        ordinary data messages the floor is far below the base timeout
        and changes nothing.
        """
        scale = min(
            self.retransmit_backoff_factor ** max(retries, 0),
            self.retransmit_backoff_cap,
        )
        base = self.retransmit_timeout_s
        if outstanding_bytes > 0:
            rtt_floor = (
                2.0 * self.wire_time(outstanding_bytes)
                + self.cpu_time(outstanding_bytes)
            )
            base = max(base, rtt_floor)
        return base * scale

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def fast_ethernet(cls) -> "NetworkParams":
        """The paper's testbed: 100 Mb/s switched Ethernet (default)."""
        return cls()

    @classmethod
    def gigabit(cls) -> "NetworkParams":
        """A 1 Gb/s variant for scalability what-ifs."""
        return cls(bandwidth_bps=1e9, cpu_per_byte_s=8e-9)

    @classmethod
    def lossy_fast_ethernet(cls, loss_rate: float = 0.01) -> "NetworkParams":
        """Fast Ethernet with message loss, exercising channel ARQ."""
        return cls(loss_rate=loss_rate)

    def with_framing(self, framing: FramingModel) -> "NetworkParams":
        """Return a copy using a different framing model."""
        return replace(self, framing=framing)

    def with_loss(self, loss_rate: float) -> "NetworkParams":
        """Return a copy with the given whole-message loss probability."""
        return replace(self, loss_rate=loss_rate)
