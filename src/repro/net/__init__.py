"""Simulated switched-LAN substrate.

This package models the paper's cluster network (Section 3 of the
paper): homogeneous machines on a fully switched LAN with

* **full-duplex** NICs — a node can send and receive simultaneously,
* **separate collision domains** — traffic between one pair of nodes
  never interferes with traffic between a disjoint pair,
* **serialisation at the NIC** — a node sends at most one message at a
  time and receives at most one message at a time; concurrent arrivals
  queue in the switch.

These three constraints are exactly what make ring-based dissemination
fast (every NIC carries each payload once) and sequencer-based
dissemination slow (the sequencer's RX carries ``n-1`` copies), so the
model preserves the paper's throughput comparisons by construction.
"""

from repro.net.message import Datagram, WireMessage
from repro.net.network import Network, NetworkEndpoint, NicStats
from repro.net.params import FramingModel, NetworkParams
from repro.net.channel import ReliableChannel, ChannelStack

__all__ = [
    "Datagram",
    "WireMessage",
    "Network",
    "NetworkEndpoint",
    "NicStats",
    "FramingModel",
    "NetworkParams",
    "ReliableChannel",
    "ChannelStack",
]
