"""Reliable FIFO point-to-point channels.

The paper assumes reliable FIFO channels between correct processes (in
practice, TCP over the switched LAN).  On a loss-free simulated network
the raw NIC path already *is* reliable FIFO, so :class:`ChannelStack`
passes messages straight through with zero overhead.  When the network
is configured with a non-zero ``loss_rate`` the stack switches to a
go-back-N ARQ: per-peer sequence numbers, cumulative acknowledgements,
and timer-driven retransmission — so protocol layers above never see
loss, only delay.

Retransmission gives up after ``MAX_RETRIES`` attempts; by then the
peer is crashed and the failure detector / membership layer is
responsible for excluding it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.network import NetworkEndpoint
from repro.net.params import NetworkParams
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog
from repro.types import ProcessId, TimerHandle

#: Bytes of channel header prepended to every data message under ARQ.
CHANNEL_HEADER_BYTES = 12
#: Size of a standalone cumulative acknowledgement.
CHANNEL_ACK_BYTES = 12
#: Retransmission attempts before a peer is declared unreachable.
MAX_RETRIES = 30

ReceiveHandler = Callable[[ProcessId, Any], None]


@dataclass
class _ChanData:
    """ARQ envelope for one application message."""

    seq: int
    payload: Any
    payload_size: int

    def wire_size_bytes(self) -> int:
        return self.payload_size + CHANNEL_HEADER_BYTES


@dataclass
class _ChanAck:
    """Cumulative acknowledgement: everything <= ``cum_seq`` received."""

    cum_seq: int

    def wire_size_bytes(self) -> int:
        return CHANNEL_ACK_BYTES


@dataclass
class _SenderState:
    next_seq: int = 0
    #: Sent but unacknowledged, in seq order: (seq, envelope).
    unacked: List[Tuple[int, _ChanData]] = field(default_factory=list)
    retransmit_timer: Optional[TimerHandle] = None
    retries: int = 0
    gave_up: bool = False


@dataclass
class _ReceiverState:
    expected_seq: int = 0
    #: Out-of-order buffer: seq -> envelope.
    pending: Dict[int, _ChanData] = field(default_factory=dict)


class ReliableChannel:
    """Sender+receiver ARQ state for one direction of one peer pair."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: NetworkEndpoint,
        peer: ProcessId,
        params: NetworkParams,
        deliver: ReceiveHandler,
        trace: TraceLog,
    ) -> None:
        self.sim = sim
        self.endpoint = endpoint
        self.peer = peer
        self.params = params
        self.deliver = deliver
        self.trace = trace
        self.tx = _SenderState()
        self.rx = _ReceiverState()

    # ------------------------------ sending ------------------------------
    def send(self, message: Any, size_bytes: int) -> None:
        if self.tx.gave_up:
            return
        envelope = _ChanData(
            seq=self.tx.next_seq, payload=message, payload_size=size_bytes
        )
        self.tx.next_seq += 1
        self.tx.unacked.append((envelope.seq, envelope))
        self.endpoint.send(self.peer, envelope)
        self._arm_timer()

    def _arm_timer(self) -> None:
        if self.tx.retransmit_timer is not None or not self.tx.unacked:
            return
        # Capped exponential backoff: the first retransmit fires after
        # the base timeout; each further unsuccessful retransmit doubles
        # the wait (factor configurable) up to the configured cap, so a
        # loss burst never degenerates into a retransmit storm.  The
        # timeout is additionally floored at the outstanding window's
        # round-trip serialisation cost — no ack can arrive before the
        # window has even crossed the wire.
        outstanding = sum(env.wire_size_bytes() for _, env in self.tx.unacked)
        self.tx.retransmit_timer = self.sim.schedule(
            self.params.retransmit_timeout_for(self.tx.retries, outstanding),
            self._on_timeout,
        )

    def _on_timeout(self) -> None:
        self.tx.retransmit_timer = None
        if not self.tx.unacked or self.tx.gave_up:
            return
        self.tx.retries += 1
        if self.tx.retries > MAX_RETRIES:
            self.tx.gave_up = True
            self.trace.emit(
                self.sim.now, "chan", "gave_up", peer=self.peer,
                unacked=len(self.tx.unacked),
            )
            self.tx.unacked.clear()
            return
        # Go-back-N: retransmit everything outstanding, in order.
        for _seq, envelope in self.tx.unacked:
            self.endpoint.send(self.peer, envelope)
        self.trace.emit(
            self.sim.now, "chan", "retransmit", peer=self.peer,
            count=len(self.tx.unacked), attempt=self.tx.retries,
        )
        self._arm_timer()

    def on_ack(self, ack: _ChanAck) -> None:
        before = len(self.tx.unacked)
        self.tx.unacked = [
            (seq, env) for seq, env in self.tx.unacked if seq > ack.cum_seq
        ]
        if len(self.tx.unacked) < before:
            self.tx.retries = 0
        if not self.tx.unacked and self.tx.retransmit_timer is not None:
            self.tx.retransmit_timer.cancel()
            self.tx.retransmit_timer = None

    # ----------------------------- receiving -----------------------------
    def on_data(self, envelope: _ChanData) -> None:
        if envelope.seq >= self.rx.expected_seq:
            self.rx.pending.setdefault(envelope.seq, envelope)
        while self.rx.expected_seq in self.rx.pending:
            ready = self.rx.pending.pop(self.rx.expected_seq)
            self.rx.expected_seq += 1
            self.deliver(self.peer, ready.payload)
        # Cumulative ack for everything contiguously received.
        self.endpoint.send(self.peer, _ChanAck(cum_seq=self.rx.expected_seq - 1))

    def close(self) -> None:
        """Stop retransmitting to this peer (it left or crashed)."""
        self.tx.gave_up = True
        self.tx.unacked.clear()
        if self.tx.retransmit_timer is not None:
            self.tx.retransmit_timer.cancel()
            self.tx.retransmit_timer = None


class ChannelStack:
    """Per-node bundle of reliable channels to every peer.

    On loss-free networks this is a zero-overhead passthrough; with loss
    it transparently runs ARQ per peer.  Protocols use it exactly like a
    :class:`~repro.net.network.NetworkEndpoint`::

        stack = ChannelStack(sim, endpoint, params)
        stack.on_receive(my_handler)
        stack.send(dst, message)
    """

    def __init__(
        self,
        sim: Simulator,
        endpoint: NetworkEndpoint,
        params: NetworkParams,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.endpoint = endpoint
        self.params = params
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self._reliable = params.loss_rate > 0.0 or params.force_reliable
        self._handler: Optional[ReceiveHandler] = None
        self._channels: Dict[ProcessId, ReliableChannel] = {}
        endpoint.on_receive(self._on_raw_receive)

    @property
    def node_id(self) -> ProcessId:
        return self.endpoint.node_id

    def on_receive(self, handler: ReceiveHandler) -> None:
        """Register the in-order delivery upcall."""
        self._handler = handler

    def send(self, dst: ProcessId, message: Any, size_bytes: Optional[int] = None) -> None:
        """Send ``message`` reliably and in FIFO order to ``dst``."""
        if not self._reliable:
            self.endpoint.send(dst, message, size_bytes)
            return
        if size_bytes is None:
            from repro.net.message import message_size

            size_bytes = message_size(message)
        self._channel(dst).send(message, size_bytes)

    def close_peer(self, dst: ProcessId) -> None:
        """Drop retransmission state toward ``dst`` (peer excluded)."""
        channel = self._channels.get(dst)
        if channel is not None:
            channel.close()

    # ------------------------------------------------------------------
    def _channel(self, peer: ProcessId) -> ReliableChannel:
        channel = self._channels.get(peer)
        if channel is None:
            channel = ReliableChannel(
                self.sim, self.endpoint, peer, self.params, self._deliver, self.trace
            )
            self._channels[peer] = channel
        return channel

    def _on_raw_receive(self, src: ProcessId, message: Any) -> None:
        if not self._reliable:
            self._deliver(src, message)
            return
        channel = self._channel(src)
        if isinstance(message, _ChanAck):
            channel.on_ack(message)
        elif isinstance(message, _ChanData):
            channel.on_data(message)
        else:
            # Raw message from a peer not running ARQ (mixed configs in
            # tests): deliver as-is.
            self._deliver(src, message)

    def _deliver(self, src: ProcessId, message: Any) -> None:
        if self._handler is not None:
            self._handler(src, message)
