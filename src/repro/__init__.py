"""repro — reproduction of *High Throughput Total Order Broadcast for
Cluster Environments* (Guerraoui, Levy, Pochon, Quéma; DSN 2006).

The package implements the paper's FSR protocol, the cluster substrate
it needs (a discrete-event switched-LAN simulator, perfect failure
detection, virtual synchrony), the five baseline protocol classes the
paper surveys, the paper's round-based analysis model, and a benchmark
harness regenerating every table and figure of the evaluation.

Quickstart::

    from repro import ClusterConfig, FSRConfig, build_cluster
    from repro.workloads import KToNPattern, run_workload
    from repro.metrics import collect_metrics

    cluster = build_cluster(ClusterConfig(n=5, protocol="fsr",
                                          protocol_config=FSRConfig(t=1)))
    outcome = run_workload(cluster, KToNPattern.n_to_n(5, 50))
    print(collect_metrics(outcome).aggregate_throughput_mbps)

See README.md for the architecture tour and DESIGN.md for the
paper-to-module map.
"""

from repro.chaos import CampaignConfig, CampaignReport, FaultSchedule, run_campaign
from repro.cluster import Cluster, ClusterConfig, ExperimentResult, build_cluster
from repro.core.api import BroadcastListener, TotalOrderBroadcast
from repro.core.batching import BatchingBroadcast, BatchingConfig
from repro.core.fsr import FSRConfig, FSRProcess, Ring, Role
from repro.net import FramingModel, NetworkParams
from repro.protocols import PROTOCOLS
from repro.types import Delivery, MessageId, View

__version__ = "1.0.0"

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "FaultSchedule",
    "run_campaign",
    "Cluster",
    "ClusterConfig",
    "ExperimentResult",
    "build_cluster",
    "BroadcastListener",
    "TotalOrderBroadcast",
    "BatchingBroadcast",
    "BatchingConfig",
    "FSRConfig",
    "FSRProcess",
    "Ring",
    "Role",
    "FramingModel",
    "NetworkParams",
    "PROTOCOLS",
    "Delivery",
    "MessageId",
    "View",
    "__version__",
]
