"""Deterministic random-number streams.

Experiments must be reproducible run-to-run, yet different subsystems
(network jitter, workload arrival times, crash schedules) must not share
one stream — otherwise adding a random draw in one subsystem would
perturb every other.  :class:`RngRegistry` derives an independent,
stable :class:`random.Random` per named stream from a single root seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """A registry of named, independently seeded random streams.

    The stream for a given ``(root_seed, name)`` pair is stable across
    runs and across unrelated code changes: it is derived by hashing the
    name, not by draw order.

    Example::

        rngs = RngRegistry(seed=7)
        jitter = rngs.stream("net.jitter")
        arrivals = rngs.stream("workload.arrivals")
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) random stream for ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        derived = self._derive_seed(name)
        stream = random.Random(derived)
        self._streams[name] = stream
        return stream

    def _derive_seed(self, name: str) -> int:
        material = f"{self._seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, salt: str) -> "RngRegistry":
        """Return a registry whose streams are independent of this one.

        Useful for per-repetition reseeding inside a parameter sweep:
        ``registry.fork(f"rep{i}")``.
        """
        return RngRegistry(seed=self._derive_seed(f"fork:{salt}"))
