"""Discrete-event simulation engine.

The engine is deliberately minimal: a time-ordered event heap with
deterministic tie-breaking, cancellable timers, seeded random-number
streams, and a structured trace log.  Everything else in the library —
the network model, the failure detector, the protocols — is built as
callbacks scheduled on this engine.
"""

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog, TraceRecord

__all__ = ["Simulator", "RngRegistry", "TraceLog", "TraceRecord"]
