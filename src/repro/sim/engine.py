"""The discrete-event simulation core.

A :class:`Simulator` owns a heap of pending events.  Each event is a
``(time, sequence, callback)`` triple; the sequence number makes event
ordering total and therefore the whole simulation deterministic: two
runs with the same seed and the same schedule produce bit-identical
traces.

The engine knows nothing about networks or protocols.  Higher layers
schedule plain callables.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.types import SimTime, TimerHandle


class Simulator:
    """A deterministic single-threaded discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "one second in")
        sim.run()
        assert sim.now == 1.0
    """

    def __init__(self, start_time: SimTime = 0.0) -> None:
        self._now: SimTime = start_time
        self._heap: List[Tuple[SimTime, int, TimerHandle, Callable[..., None], tuple]] = []
        self._sequence = 0
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Time and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled entries included)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: SimTime, callback: Callable[..., None], *args: Any
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns a :class:`TimerHandle` whose :meth:`~TimerHandle.cancel`
        prevents execution.  Negative delays are rejected: discrete-event
        time never flows backwards.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: SimTime, callback: Callable[..., None], *args: Any
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        self._sequence += 1
        handle = TimerHandle(sequence=self._sequence)
        heapq.heappush(self._heap, (time, self._sequence, handle, callback, args))
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[SimTime] = None, max_events: Optional[int] = None) -> SimTime:
        """Run events until the heap drains, ``until`` passes, or the budget ends.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        When the run stops because of ``until``, the clock is advanced to
        ``until`` so successive bounded runs compose.  Returns the final
        simulated time.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                time, _seq, handle, callback, args = self._heap[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                if handle.cancelled:
                    continue
                if max_events is not None and executed >= max_events:
                    # Put the event back: budget exhausted before running it.
                    heapq.heappush(self._heap, (time, _seq, handle, callback, args))
                    break
                self._now = time
                callback(*args)
                executed += 1
                self._events_processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until and (
            not self._heap or self._heap[0][0] > until
        ):
            self._now = until
        return self._now

    def step(self) -> bool:
        """Execute exactly one (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        """
        while self._heap:
            time, _seq, handle, callback, args = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = time
            callback(*args)
            self._events_processed += 1
            return True
        return False

    def drain_cancelled(self) -> int:
        """Remove cancelled entries from the heap; returns how many were dropped.

        Long simulations that cancel many timers (for example heartbeat
        timeouts that are constantly reset) can call this to bound heap
        growth.  Purely an optimisation: correctness never depends on it.
        """
        before = len(self._heap)
        live = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(live)
        self._heap = live
        return before - len(self._heap)
