"""Structured trace logging for simulations.

Traces are the debugging backbone of the library: every subsystem emits
``(time, source, kind, detail)`` records into a shared
:class:`TraceLog`.  Tests assert on traces, and failed property-based
tests dump them to explain the shrunk counterexample.

Tracing is off by default (a disabled log costs one attribute check per
emit) so benchmark throughput is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.types import SimTime


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace event."""

    time: SimTime
    source: str
    kind: str
    detail: Dict[str, object]

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:.6f}] {self.source} {self.kind} {fields}"


class TraceLog:
    """An append-only in-memory trace with cheap filtering.

    Example::

        trace = TraceLog(enabled=True)
        trace.emit(0.5, "net", "send", src=0, dst=1, bytes=1500)
        assert trace.count(kind="send") == 1
    """

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._capacity = capacity
        self._dropped = 0
        self._sinks: List[Callable[[TraceRecord], None]] = []

    def emit(self, time: SimTime, source: str, kind: str, **detail: object) -> None:
        """Record one event if tracing is enabled."""
        if not self.enabled:
            return
        record = TraceRecord(time=time, source=source, kind=kind, detail=detail)
        if self._capacity is not None and len(self._records) >= self._capacity:
            self._dropped += 1
        else:
            self._records.append(record)
        for sink in self._sinks:
            sink(record)

    def add_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Stream every future record to ``sink`` (e.g. ``print``)."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def records(
        self, source: Optional[str] = None, kind: Optional[str] = None
    ) -> List[TraceRecord]:
        """Return records, optionally filtered by source and/or kind."""
        return list(self._iter(source, kind))

    def count(self, source: Optional[str] = None, kind: Optional[str] = None) -> int:
        """Count records matching the filters."""
        return sum(1 for _ in self._iter(source, kind))

    def last(
        self, source: Optional[str] = None, kind: Optional[str] = None
    ) -> Optional[TraceRecord]:
        """Return the most recent matching record, or ``None``."""
        matches = self.records(source, kind)
        return matches[-1] if matches else None

    @property
    def dropped(self) -> int:
        """Number of records dropped because the capacity was reached."""
        return self._dropped

    def _iter(self, source: Optional[str], kind: Optional[str]) -> Iterator[TraceRecord]:
        for record in self._records:
            if source is not None and record.source != source:
                continue
            if kind is not None and record.kind != kind:
                continue
            yield record

    def __len__(self) -> int:
        return len(self._records)

    def dump(self, limit: int = 200) -> str:
        """Render the last ``limit`` records as text (for test failures)."""
        tail = self._records[-limit:]
        lines = [str(record) for record in tail]
        if len(self._records) > limit:
            lines.insert(0, f"... ({len(self._records) - limit} earlier records elided)")
        return "\n".join(lines)
