"""Seeded link-level network emulation for the live runtime.

The simulator injects loss and jitter by construction; real sockets
need an emulation layer.  :class:`NetShaper` sits on the egress side of
``repro.live.transport.RingTransport`` — both the ring data path and
the control-plane mesh — and imposes per-directed-link delay/jitter,
probabilistic loss, reordering pressure, bandwidth caps, and full or
partial partitions on real TCP traffic.  It is driven by the same
:class:`repro.chaos.schedules.FaultEvent` vocabulary the simulator
honors, so one ``(scenario, seed)`` pair means the same storm on both
runtimes.

Semantics, and why they look the way they do over TCP:

* **Delay/jitter** — each frame's release time is stamped when it is
  *enqueued* (``plan``), not when it is written, so constant added
  delay shifts the pipeline without serializing it: throughput under
  pure delay is unchanged, exactly like propagation delay on a wire.
  Release times are clamped monotone per (link, channel): TCP is a
  FIFO byte stream, so an emulated frame cannot overtake its
  predecessor on the same connection.
* **Reordering** — true reordering is impossible through a TCP stream
  (the protocol stack beneath us would repair it), and the FSR
  automaton assumes FIFO channels anyway.  What reordering does to a
  kernel is delay-until-repair; the shaper models it as occasional
  delay spikes (one extra jitter magnitude), the same way the
  simulator's FIFO clamp converts jitter into burst tails.
* **Loss** — a dropped segment on a real LAN is retransmitted by TCP
  after an RTO; the connection sees delay, not absence.  The shaper
  rolls per-frame loss and converts it into bounded synthetic
  retransmit delay (geometric repeats, hard-capped at ``max_retx``),
  keeping the worst-case heartbeat gap *provably* below the adaptive
  failure detector's floor — the "sub-threshold faults never cause a
  view change" claim is by construction, not by luck.
* **Partitions** — a partitioned link holds frames entirely (the
  transport polls :meth:`is_blocked` before writing), so queues grow
  and backpressure engages exactly as a dead path would cause.  Heal
  releases the backlog in order.  A full ``partition`` event isolates
  its (minority) ``group`` in both directions because *each* side's
  shaper blocks its own egress toward the other side.

``delay_cap_s`` bounds the total emulated delay added to any one frame;
the live node derives it from the failure detector's floor so that no
schedule the generators emit can turn jitter into a false suspicion.

Determinism: every directed link draws from its own
``random.Random(f"netem:{scenario}:{seed}:{src}->{dst}")``, so a replay
of the same schedule shapes the same frames the same way regardless of
how other links interleave.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.schedules import FaultEvent
from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry


class _LinkState:
    """Active impairments for one directed link (me -> dst)."""

    __slots__ = (
        "delay_s", "jitter_s", "loss_rates", "rates_bps", "blocked",
        "busy_until", "rng",
    )

    def __init__(self, rng: random.Random) -> None:
        self.delay_s = 0.0
        self.jitter_s = 0.0
        self.loss_rates: List[float] = []
        self.rates_bps: List[float] = []
        self.blocked = 0
        self.busy_until: Dict[str, float] = {}
        self.rng = rng

    @property
    def loss(self) -> float:
        return max(self.loss_rates, default=0.0)

    @property
    def rate_bps(self) -> float:
        return min(self.rates_bps, default=0.0)

    def idle(self) -> bool:
        return (
            self.delay_s <= 0.0
            and self.jitter_s <= 0.0
            and not self.loss_rates
            and not self.rates_bps
            and self.blocked <= 0
        )


class NetShaper:
    """Egress shaper for one live node.

    One instance per node; the transport consults it for every outbound
    ring frame and control frame.  :meth:`arm` schedules the fault
    timeline on the node's scheduler, timed relative to protocol start
    (the same origin the schedule's event times use).
    """

    def __init__(
        self,
        node_id: int,
        n: int,
        events: Sequence[FaultEvent],
        scenario: str,
        seed: int,
        rto_s: float = 0.05,
        max_retx: int = 3,
        reorder_p: float = 0.05,
        delay_cap_s: Optional[float] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if not 0 <= node_id < n:
            raise ConfigurationError("shaper node_id out of range")
        self.node_id = node_id
        self.n = n
        self.scenario = scenario
        self.seed = seed
        self.rto_s = rto_s
        self.max_retx = max_retx
        self.reorder_p = reorder_p
        self.delay_cap_s = delay_cap_s
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._events: Tuple[FaultEvent, ...] = tuple(
            e for e in events if e.kind not in ("crash", "cpu_slow")
        )
        self._links: Dict[int, _LinkState] = {}
        self._last_release: Dict[Tuple[int, str], float] = {}
        self._armed = False

    # ------------------------------------------------------------------
    # Fault timeline.
    # ------------------------------------------------------------------
    def _event_dsts(self, event: FaultEvent) -> Tuple[int, ...]:
        """Destinations on MY egress this event impairs (may be none)."""
        me = self.node_id
        others = tuple(p for p in range(self.n) if p != me)
        if event.kind == "partition":
            group = set(event.group or ())
            if me in group:
                return tuple(p for p in others if p not in group)
            return tuple(p for p in others if p in group)
        if event.kind == "partial_partition":
            a, b = event.link  # type: ignore[misc]
            if me == a:
                return (b,)
            if me == b:
                return (a,)
            return ()
        if event.link is not None:
            src, dst = event.link
            return (dst,) if src == me else ()
        # Cluster-wide burst: all of my egress links.
        return others

    def _link(self, dst: int) -> _LinkState:
        state = self._links.get(dst)
        if state is None:
            state = _LinkState(random.Random(
                f"netem:{self.scenario}:{self.seed}:{self.node_id}->{dst}"
            ))
            self._links[dst] = state
        return state

    def arm(self, sched: object) -> None:
        """Schedule activate/deactivate callbacks for every event that
        touches this node's egress.  ``sched`` is any object with the
        ``schedule(delay_s, fn, *args)`` scheduler protocol (the live
        ``AsyncioScheduler``); call it at protocol start so event times
        line up with the schedule's origin."""
        if self._armed:
            raise ConfigurationError("shaper already armed")
        self._armed = True
        schedule = getattr(sched, "schedule")
        for event in self._events:
            if not self._event_dsts(event):
                continue
            schedule(max(event.time, 0.0), self._activate, event)
            schedule(event.time + event.duration_s, self._deactivate, event)

    def _activate(self, event: FaultEvent) -> None:
        for dst in self._event_dsts(event):
            state = self._link(dst)
            if event.kind in ("partition", "partial_partition"):
                state.blocked += 1
            elif event.kind in ("loss_burst", "asym_loss"):
                state.loss_rates.append(event.magnitude)
            elif event.kind == "jitter_burst":
                state.jitter_s += event.magnitude
            elif event.kind == "bandwidth_cap":
                state.rates_bps.append(event.magnitude)
        self.telemetry.counter("netem_events_applied").inc()
        self._update_gauges()

    def _deactivate(self, event: FaultEvent) -> None:
        for dst in self._event_dsts(event):
            state = self._link(dst)
            if event.kind in ("partition", "partial_partition"):
                state.blocked = max(0, state.blocked - 1)
            elif event.kind in ("loss_burst", "asym_loss"):
                if event.magnitude in state.loss_rates:
                    state.loss_rates.remove(event.magnitude)
            elif event.kind == "jitter_burst":
                state.jitter_s = max(0.0, state.jitter_s - event.magnitude)
            elif event.kind == "bandwidth_cap":
                if event.magnitude in state.rates_bps:
                    state.rates_bps.remove(event.magnitude)
        self._update_gauges()

    def _update_gauges(self) -> None:
        blocked = sum(1 for s in self._links.values() if s.blocked > 0)
        impaired = sum(1 for s in self._links.values() if not s.idle())
        self.telemetry.gauge("netem_links_blocked").set(blocked)
        self.telemetry.gauge("netem_links_impaired").set(impaired)

    # ------------------------------------------------------------------
    # Transport-facing queries.
    # ------------------------------------------------------------------
    def is_blocked(self, dst: int) -> bool:
        """True while the directed link me->dst is partitioned away."""
        state = self._links.get(dst)
        return state is not None and state.blocked > 0

    def plan(self, dst: int, nbytes: int, now: float, channel: str = "ring") -> float:
        """Release timestamp for a frame enqueued to ``dst`` at ``now``.

        Called at enqueue time so emulated propagation delay overlaps
        across in-flight frames instead of serializing them.  The
        result is monotone per (link, channel): a TCP stream cannot
        reorder.
        """
        state = self._links.get(dst)
        key = (dst, channel)
        if state is None or state.idle():
            release = max(now, self._last_release.get(key, 0.0))
            self._last_release[key] = release
            return release
        rng = state.rng
        added = state.delay_s
        if state.jitter_s > 0.0:
            added += rng.uniform(0.0, state.jitter_s)
            if rng.random() < self.reorder_p:
                # Reordering pressure: this frame got queued behind a
                # burst tail the FIFO clamp will smear over successors.
                added += state.jitter_s
        loss = state.loss
        if loss > 0.0:
            retx = 0
            while retx < self.max_retx and rng.random() < loss:
                retx += 1
            if retx:
                added += retx * self.rto_s
                self.telemetry.counter("netem_synthetic_retx").inc(retx)
        if self.delay_cap_s is not None:
            added = min(added, self.delay_cap_s)
        release = now + added
        rate = state.rate_bps
        if rate > 0.0:
            start = max(now, state.busy_until.get(channel, 0.0))
            tx_s = nbytes * 8.0 / rate
            state.busy_until[channel] = start + tx_s
            release = start + tx_s + added
        release = max(release, self._last_release.get(key, 0.0))
        self._last_release[key] = release
        if added > 0.0:
            self.telemetry.counter("netem_frames_shaped").inc()
            self.telemetry.histogram("netem_added_delay_s").observe(added)
        return release

    def active_summary(self) -> Dict[str, object]:
        """Current impairments, for journals and debugging."""
        links: Dict[str, Dict[str, object]] = {}
        for dst, state in sorted(self._links.items()):
            if state.idle():
                continue
            links[str(dst)] = {
                "delay_s": round(state.delay_s, 6),
                "jitter_s": round(state.jitter_s, 6),
                "loss": state.loss,
                "rate_bps": state.rate_bps,
                "blocked": state.blocked > 0,
            }
        return {"node": self.node_id, "links": links}
