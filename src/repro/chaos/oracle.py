"""The invariant oracle: everything a chaos run must satisfy.

After every campaign run the oracle applies the full battery from
:mod:`repro.checker` — validity, uniform agreement, uniform integrity,
uniform total order, sequence consistency, uniformity — plus the two
liveness obligations the delivery-log checkers cannot see:

* the run *drained*: every correct process delivered every message
  broadcast by a correct process within the time bound, and
* no online monitor (the FSR wire monitor, which snoops every send for
  structural violations) aborted the run.

Unlike the checkers, which raise on the first violated property, the
oracle collects *all* violations: a red seed's report names every
broken invariant, which matters when a single bug (say, a skipped
stability bit) breaks uniformity and agreement at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.checker.order import (
    check_agreement,
    check_integrity,
    check_sequence_consistency,
    check_shard_interleave,
    check_total_order,
    check_uniformity,
    check_validity,
)
from repro.cluster.results import ExperimentResult
from repro.errors import CheckFailure

#: The safety battery, in the order violations are reported.
SAFETY_CHECKS: Tuple[Tuple[str, Callable[[ExperimentResult], None]], ...] = (
    ("integrity", check_integrity),
    ("total_order", check_total_order),
    ("sequence_consistency", check_sequence_consistency),
    ("agreement", check_agreement),
    ("uniformity", check_uniformity),
    ("validity", check_validity),
    ("shard_interleave", check_shard_interleave),
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with the checker's pointed message."""

    invariant: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {"invariant": self.invariant, "message": self.message}


@dataclass
class Verdict:
    """The oracle's judgement of one run."""

    ok: bool
    violations: List[Violation] = field(default_factory=list)
    #: True when the schedule deliberately broke a model assumption
    #: (``fd_unsound``): violations are documentation, not failures.
    expected_unsound: bool = False

    def summary(self) -> str:
        if self.ok:
            return "ok"
        head = "unsound" if self.expected_unsound else "FAIL"
        return f"{head}: " + "; ".join(
            f"{v.invariant}: {v.message}" for v in self.violations
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "expected_unsound": self.expected_unsound,
            "violations": [v.to_dict() for v in self.violations],
        }


def judge_run(
    result: ExperimentResult,
    drained: bool,
    wire_error: Optional[str] = None,
    run_error: Optional[str] = None,
    expected_unsound: bool = False,
) -> Verdict:
    """Judge one finished (or aborted) run.

    ``drained`` reports whether the liveness predicate (all correct
    senders' messages delivered everywhere) held within the run's time
    budget; ``wire_error`` carries a wire-monitor abort and
    ``run_error`` any other exception that killed the run.
    """
    violations: List[Violation] = []
    if wire_error is not None:
        violations.append(Violation("wire", wire_error))
    if run_error is not None:
        violations.append(Violation("run", run_error))
    for name, check in SAFETY_CHECKS:
        try:
            check(result)
        except CheckFailure as failure:
            violations.append(Violation(name, str(failure)))
    # Liveness is only judged on runs that weren't aborted mid-flight:
    # an aborted run obviously never drained, and the abort is already
    # reported as its own violation.
    if not drained and wire_error is None and run_error is None:
        violations.append(Violation(
            "liveness",
            "run did not drain: some correct process never delivered all "
            "correct senders' messages within the time budget",
        ))
    return Verdict(
        ok=not violations,
        violations=violations,
        expected_unsound=expected_unsound,
    )
