"""Live chaos campaigns: real SIGKILLs against a real TCP cluster.

The simulator campaign (:mod:`repro.chaos.campaign`) injects crashes by
silencing a simulated NIC.  This driver runs the *same* seeded
:class:`~repro.chaos.schedules.FaultSchedule`\\ s against the asyncio
runtime: it spawns one ``live-node`` OS process per FSR process via
:class:`~repro.live.runner.LiveCluster` (live membership enabled — a
heartbeat failure detector and ``GroupMembership``'s flush/install
protocol run over the transport's control plane), then delivers each
scheduled crash as a genuine ``SIGKILL`` at its fault time.

Verification is the same invariant battery the simulator campaign uses
(:func:`repro.chaos.oracle.judge_run`, which wraps
``checker.order.check_all``) applied to the merged per-node logs.  The
twist is the killed nodes: a SIGKILLed process cannot report its
deliveries, so every node journals broadcasts and deliveries to an
append-and-flush JSONL file as they happen; the journal survives the
kill and stands in for the node's record.  Without it, uniform
integrity ("only broadcast messages are delivered") and uniformity
("anything a crashed node delivered, every survivor delivers") would be
unverifiable exactly where they matter.

Timebase: every node stamps events with ``CLOCK_MONOTONIC``, which on
Linux is system-wide, so the parent's ``time.monotonic()`` kill
timestamps land on the same axis as the nodes' logs and the standard
``recovery_outage_ms`` metric applies unchanged.

Crash scenarios are portable directly; network-degradation scenarios
(``degraded_network``, ``hostile_network``) are portable through the
egress :class:`~repro.chaos.netem.NetShaper` each node arms at protocol
start — the launcher passes the schedule's link-level events into every
node's config, and the shaper imposes delay/jitter, synthetic loss,
bandwidth caps, and partitions on the real TCP traffic.  Shaped runs
switch the failure detector to the adaptive (EWMA) variant and turn on
membership's primary-partition guard, and the battery additionally
checks that no *survivor* was evicted without an excuse: an eviction
that is neither a SIGKILL nor an expected partition casualty is a false
suspicion and fails the seed.  CPU-slow events stay simulator-only.
The schedule's ``detector`` field is otherwise ignored: a live run
always runs a real detector, because there is no oracle to whisper
crash times.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.chaos.oracle import Verdict, Violation, judge_run
from repro.chaos.schedules import (
    FaultEvent,
    FaultSchedule,
    ScheduleContext,
    generate_schedule,
)
from repro.errors import ConfigurationError, NetworkError
from repro.live.runner import (
    LiveCluster,
    LiveClusterSpec,
    load_journal_record,
    merge_node_records,
)
from repro.obs.analyze import recovery_outage_from_spans
from repro.obs.journal import Timeline, merge_span_journals
from repro.types import ProcessId

#: Scenarios portable to the live runtime: crash scenarios directly,
#: network-degradation scenarios via the egress shaper.
LIVE_SCENARIOS: Tuple[str, ...] = (
    "crash_storm",
    "role_targeted",
    "view_change_crossfire",
    "repeated_leader_crash",
    "degraded_network",
    "hostile_network",
)

#: Scenarios whose schedules carry link-level events the shaper enforces.
_NETEM_SCENARIOS = ("degraded_network", "hostile_network")

#: How often the start-barrier poller re-reads journals.
_START_POLL_S = 0.02
#: How often the parent-side quiescence monitor samples journals.
_QUIESCE_POLL_S = 0.05
#: Extra wait past the last kill before quiescence may be declared:
#: covers the heartbeat-timeout detection latency plus one flush, so
#: the final view change (whose recovery propagates the last stability
#: watermark to laggards) always runs before nodes are stopped.
_DETECTION_SLACK_S = 0.6
#: How long terminated survivors get to write their records.
_SHUTDOWN_GRACE_S = 15.0


@dataclass(frozen=True)
class LiveChaosConfig:
    """Everything one live chaos campaign needs.

    Defaults are sized for a localhost cluster: real processes, real
    sockets, ~1 s failure detection — so the fault window and flush
    window are three orders of magnitude wider than the simulator
    campaign's, and the seed count is smaller because each run costs
    seconds of wall clock, not milliseconds.
    """

    seeds: int = 25
    base_seed: int = 0
    scenarios: Tuple[str, ...] = ("crash_storm", "repeated_leader_crash")
    n: int = 5
    t: int = 2
    senders: int = 2
    message_bytes: int = 20_000
    window: int = 2
    #: Senders stop submitting this long after the start barrier.
    duration_s: float = 2.5
    settle_s: float = 0.3
    quiet_s: float = 0.6
    max_run_s: float = 30.0
    connect_timeout_s: float = 10.0
    host: str = "127.0.0.1"
    heartbeat_interval_s: float = 0.1
    heartbeat_timeout_s: float = 1.0
    #: Wall-clock window (seconds after the last node's start barrier)
    #: the generators aim faults into; inside ``duration_s`` so kills
    #: land under load.
    fault_window: Tuple[float, float] = (0.4, 1.6)
    #: Approximate live flush duration handed to the generators.
    flush_window_s: float = 0.3
    #: Detector for crash-only scenarios ("heartbeat" or "adaptive").
    #: Shaped (netem) scenarios always run ``shaped_detector_mode``:
    #: their generators bound sub-threshold faults against the adaptive
    #: floor, and the false-suspicion gate below is the claim under test.
    detector_mode: str = "heartbeat"
    #: Detector for shaped (netem) runs.  "adaptive" is the claim under
    #: test; "heartbeat" exists for the EXPERIMENTS.md ablation that
    #: counts a fixed bound's false suspicions under the same noise.
    shaped_detector_mode: str = "adaptive"

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ConfigurationError("a campaign needs at least one seed")
        if not self.scenarios:
            raise ConfigurationError("a campaign needs at least one scenario")
        for scenario in self.scenarios:
            if scenario not in LIVE_SCENARIOS:
                raise ConfigurationError(
                    f"scenario {scenario!r} is not live-portable; live "
                    f"campaigns support: {', '.join(LIVE_SCENARIOS)}"
                )
        if self.n - self.t < 2:
            raise ConfigurationError(
                "live chaos needs n - t >= 2 so a ring survives worst case"
            )
        if not 1 <= self.senders <= self.n:
            raise ConfigurationError(
                f"senders={self.senders} out of range for n={self.n}"
            )
        if not self.fault_window[0] < self.fault_window[1] <= self.duration_s:
            raise ConfigurationError(
                "fault_window must be inside the traffic window "
                "(0, duration_s]"
            )
        if self.max_run_s < self.duration_s + self.heartbeat_timeout_s + 8.0:
            raise ConfigurationError(
                "max_run_s too tight: needs duration_s + detection + "
                "shutdown headroom"
            )
        for mode in (self.detector_mode, self.shaped_detector_mode):
            if mode not in ("heartbeat", "adaptive"):
                raise ConfigurationError(
                    f"unknown detector mode {mode!r}; "
                    "use 'heartbeat' or 'adaptive'"
                )
        if any(s in _NETEM_SCENARIOS for s in self.scenarios):
            # Shaped runs enable the primary-partition guard, which
            # only ever installs strict-majority views — so the t-kill
            # worst case must still leave a majority standing.
            if 2 * (self.n - self.t) <= self.n:
                raise ConfigurationError(
                    "netem scenarios need 2*(n - t) > n: the quorum "
                    "guard must be satisfiable after t kills"
                )

    def schedule_context(self) -> ScheduleContext:
        return ScheduleContext(
            n=self.n,
            t=self.t,
            detection_delay_s=self.heartbeat_timeout_s,
            window=self.fault_window,
            flush_window_s=self.flush_window_s,
            heartbeat_interval_s=self.heartbeat_interval_s,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            # Bias degradations toward single directed links (a flaky
            # cable, not weather): cluster-wide bursts stay possible,
            # and the shaper applies those to every egress link.
            link_faults=True,
        )

    def cluster_spec(
        self, schedule: Optional[FaultSchedule] = None
    ) -> LiveClusterSpec:
        netem = tuple(schedule.netem_events()) if schedule is not None else ()
        return LiveClusterSpec(
            processes=self.n,
            senders=self.senders,
            t=self.t,
            message_bytes=self.message_bytes,
            duration_s=self.duration_s,
            window=self.window,
            host=self.host,
            settle_s=self.settle_s,
            quiet_s=self.quiet_s,
            max_run_s=self.max_run_s,
            connect_timeout_s=self.connect_timeout_s,
            sim_compare=False,
            view_changes=True,
            heartbeat_interval_s=self.heartbeat_interval_s,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            detector_mode=(
                self.shaped_detector_mode if netem else self.detector_mode
            ),
            netem_events=[e.to_dict() for e in netem],
            netem_scenario=schedule.scenario if schedule is not None else "",
            netem_seed=schedule.seed if schedule is not None else 0,
            run_seed=schedule.seed if schedule is not None else 0,
            # The guard is what keeps a partitioned minority from
            # installing its own view and splitting the sequence; only
            # needed when links can actually partition.
            require_quorum=bool(netem),
            # Span journals survive SIGKILL like the event journals do,
            # and the recovery-outage metric is read off the merged span
            # timeline rather than ad-hoc per-scenario timing.
            spans=True,
        )


# ----------------------------------------------------------------------
# Single-schedule execution
# ----------------------------------------------------------------------

def _await_starts(
    cluster: LiveCluster, timeout_s: float
) -> Dict[ProcessId, float]:
    """Wait until every node's journal reports its start barrier.

    The ``start`` journal line doubles as the ready signal: it is the
    first flushed line after the node passes the connectivity barrier
    and begins the workload, so fault times measured from it line up
    with the schedule generators' traffic window.
    """
    deadline = time.monotonic() + timeout_s
    starts: Dict[ProcessId, float] = {}
    while len(starts) < len(cluster.members):
        for pid, proc in cluster.procs.items():
            if pid not in starts and proc.poll() is not None:
                raise NetworkError(
                    f"node {pid} exited {proc.returncode} before its "
                    "start barrier"
                )
        for pid, path in cluster.journal_paths.items():
            if pid in starts:
                continue
            record = load_journal_record(pid, path)
            if record is not None:
                starts[pid] = record["start_time"]
        if len(starts) == len(cluster.members):
            break
        if time.monotonic() > deadline:
            missing = sorted(set(cluster.members) - set(starts))
            raise NetworkError(
                f"nodes {missing} never reached the start barrier within "
                f"{timeout_s:.0f}s"
            )
        time.sleep(_START_POLL_S)
    return starts


def _await_quiescence(
    cluster: LiveCluster,
    cfg: LiveChaosConfig,
    base: float,
    kills: Dict[ProcessId, float],
    netem_end_s: float = 0.0,
) -> bool:
    """Block until the surviving cluster looks done; True on timeout.

    Survivor nodes never self-exit under live membership (a locally
    silent ring can hide an undetected crash whose view change is still
    pending), so the launcher decides: the run is quiescent once the
    traffic deadline has passed, every executed kill has had time to be
    detected and flushed (heartbeat timeout + interval + slack), and no
    survivor journal has grown for ``quiet_s``.  Journals record every
    broadcast, delivery, and view install — exactly the events whose
    absence means the run drained.
    """
    detection_s = (
        cfg.heartbeat_timeout_s + cfg.heartbeat_interval_s + _DETECTION_SLACK_S
    )
    ready_at = base + cfg.duration_s
    if kills:
        ready_at = max(ready_at, max(kills.values()) + detection_s)
    if netem_end_s > 0.0:
        # A shaped run is not judged mid-storm: a healing partition
        # still has a detection-plus-flush tail (evictions, backlog
        # release) before the cluster can genuinely drain.
        ready_at = max(ready_at, base + netem_end_s + detection_s)
    cutoff = base + cfg.max_run_s - 5.0
    survivors = [pid for pid in cluster.members if pid not in kills]
    last_sizes: Dict[ProcessId, int] = {}
    last_growth = time.monotonic()
    while True:
        now = time.monotonic()
        if now >= cutoff:
            return True
        sizes = {}
        for pid in survivors:
            try:
                sizes[pid] = os.path.getsize(cluster.journal_paths[pid])
            except OSError:
                sizes[pid] = -1
        if sizes != last_sizes:
            last_sizes = sizes
            last_growth = now
        if now >= ready_at and now - last_growth >= cfg.quiet_s:
            return False
        time.sleep(_QUIESCE_POLL_S)


@dataclass
class LiveSeedOutcome:
    """One live seed's schedule, verdict, and diagnostics."""

    seed: int
    scenario: str
    schedule: FaultSchedule
    verdict: Verdict
    wall_s: float
    outage_ms: Optional[float] = None
    #: Actual (rebased) kill time per SIGKILLed node.
    killed: Dict[ProcessId, float] = field(default_factory=dict)
    #: Survivors the final view excluded (treated as crashed by the
    #: battery: view-synchrony makes no promises to the evicted).
    excluded: List[ProcessId] = field(default_factory=list)
    #: Excluded survivors that were neither SIGKILLed nor the minority
    #: side of a long partition — i.e. evictions the failure detector
    #: had no excuse for.  Any entry fails the seed.
    false_suspicions: List[ProcessId] = field(default_factory=list)
    #: Minority members of partitions long enough to be detected; their
    #: eviction is the *correct* outcome, not a false suspicion.
    expected_casualties: List[ProcessId] = field(default_factory=list)
    timed_out: bool = False

    @property
    def failed(self) -> bool:
        if self.false_suspicions:
            return True
        return not self.verdict.ok and not self.verdict.expected_unsound

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "scenario": self.scenario,
            "schedule": self.schedule.to_dict(),
            "verdict": self.verdict.to_dict(),
            "wall_s": round(self.wall_s, 3),
            "outage_ms": (
                None if self.outage_ms is None else round(self.outage_ms, 3)
            ),
            "killed": {
                str(pid): round(at, 4) for pid, at in sorted(self.killed.items())
            },
            "excluded": list(self.excluded),
            "false_suspicions": list(self.false_suspicions),
            "expected_casualties": list(self.expected_casualties),
            "timed_out": self.timed_out,
        }


def run_live_schedule(
    schedule: FaultSchedule, config: Optional[LiveChaosConfig] = None
) -> LiveSeedOutcome:
    """Execute one fault schedule against a real localhost cluster."""
    cfg = config if config is not None else LiveChaosConfig()
    spec = cfg.cluster_spec(schedule)
    started_wall = time.perf_counter()
    crashes = sorted(schedule.crashes(), key=lambda e: e.time)
    netem_end_s = max(
        (e.time + e.duration_s for e in schedule.netem_events()), default=0.0
    )

    run_error: Optional[str] = None
    parent_timeout = False
    kills: Dict[ProcessId, float] = {}
    records: Dict[ProcessId, Dict[str, object]] = {}
    with tempfile.TemporaryDirectory(prefix="repro-chaos-live-") as workdir:
        cluster = LiveCluster(spec, workdir, journals=True)
        try:
            starts = _await_starts(
                cluster, spec.connect_timeout_s + spec.settle_s + 15.0
            )
            base = max(starts.values())
            for event in crashes:
                delay = base + event.time - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                cluster.kill(event.process)
                kills[event.process] = time.monotonic()
            parent_timeout = _await_quiescence(
                cluster, cfg, base, kills, netem_end_s=netem_end_s
            )
            cluster.terminate(skip=set(kills))
            cluster.wait(_SHUTDOWN_GRACE_S, skip=set(kills))
            cluster.raise_on_failures(skip=set(kills))
            records = cluster.collect(skip=set(kills))
        except NetworkError as error:
            run_error = f"{type(error).__name__}: {error}"
        finally:
            cluster.shutdown()
        # Killed nodes answer from beyond the grave: their flushed
        # journals are read *inside* the tempdir context.
        for pid, kill_time in kills.items():
            journal = load_journal_record(pid, cluster.journal_paths[pid])
            if journal is not None:
                journal["end_time"] = kill_time
                records[pid] = journal
        # Span journals (all nodes, killed included) merge on the same
        # rebase origin the record merger uses.
        timeline: Optional[Timeline] = None
        if records:
            t0 = min(record["start_time"] for record in records.values())
            timeline = merge_span_journals(cluster.span_paths, t0=t0)

    survivors = sorted(set(cluster.members) - set(kills))
    crashed_times = dict(kills)
    excluded: List[ProcessId] = []
    final_views = [
        records[pid].get("final_view")
        for pid in survivors
        if pid in records and records[pid].get("final_view")
    ]
    if final_views:
        latest = max(final_views, key=lambda view: view["view_id"])
        for pid in survivors:
            if pid in records and pid not in latest["members"]:
                excluded.append(pid)
                crashed_times[pid] = records[pid]["end_time"]
    # An eviction needs an excuse: a SIGKILL (not in ``excluded`` by
    # construction) or membership on the minority side of a partition
    # long enough for detection.  Anything else is a false suspicion —
    # the adaptive detector's timeout was beaten by sub-threshold noise.
    expected_casualties = sorted(
        set(schedule.partition_casualties(cfg.heartbeat_timeout_s))
        - set(kills)
    )
    false_suspicions = sorted(set(excluded) - set(expected_casualties))
    timed_out = parent_timeout or any(
        records[pid].get("timed_out", False)
        for pid in survivors
        if pid in records
    )

    result = None
    if records:
        try:
            result, _ = merge_node_records(spec, records, crashed=crashed_times)
        except NetworkError as error:
            run_error = run_error or f"{type(error).__name__}: {error}"
    if result is not None:
        drained = run_error is None and not timed_out
        verdict = judge_run(
            result,
            drained=drained,
            run_error=run_error,
            expected_unsound=schedule.fd_unsound,
        )
        killed_rebased = {
            pid: max(0.0, at - t0) for pid, at in kills.items()
        }
        # Outage is measured against the *executed* kills at their
        # actual (rebased) times, not the planned instants — read off
        # the span timeline, the same lifecycle record every other
        # report uses.  The delivery-log path stays as a fallback for
        # runs whose span journals were lost.
        if timeline is not None and timeline.events:
            outage_ms = recovery_outage_from_spans(
                timeline,
                crash_times=sorted(killed_rebased.values()),
                survivors=sorted(result.correct_processes()),
            )
        else:
            executed = replace(
                schedule,
                events=tuple(
                    FaultEvent(
                        "crash",
                        round(at, 4),
                        process=pid,
                        note="executed",
                    )
                    for pid, at in sorted(killed_rebased.items())
                ),
            )
            from repro.chaos.campaign import recovery_outage_ms

            outage_ms = recovery_outage_ms(result, executed)
    else:
        verdict = Verdict(
            ok=False,
            violations=[Violation(
                "run", run_error or "no node produced any record"
            )],
            expected_unsound=schedule.fd_unsound,
        )
        outage_ms = None
        killed_rebased = {}

    return LiveSeedOutcome(
        seed=schedule.seed,
        scenario=schedule.scenario,
        schedule=schedule,
        verdict=verdict,
        wall_s=time.perf_counter() - started_wall,
        outage_ms=outage_ms,
        killed=killed_rebased,
        excluded=excluded,
        false_suspicions=false_suspicions,
        expected_casualties=expected_casualties,
        timed_out=timed_out,
    )


# ----------------------------------------------------------------------
# Campaign loop + report
# ----------------------------------------------------------------------

@dataclass
class LiveCampaignReport:
    """Everything a finished live campaign leaves behind."""

    config: LiveChaosConfig
    outcomes: List[LiveSeedOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failures(self) -> List[LiveSeedOutcome]:
        return [o for o in self.outcomes if o.failed]

    def mean_outage_ms(self) -> Optional[float]:
        outages = [o.outage_ms for o in self.outcomes if o.outage_ms is not None]
        if not outages:
            return None
        return sum(outages) / len(outages)

    def scenario_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-scenario seeds/failures/outage rollup (the recovery
        numbers the benchmark record reports per scenario)."""
        rollup: Dict[str, Dict[str, object]] = {}
        for outcome in self.outcomes:
            row = rollup.setdefault(
                outcome.scenario,
                {
                    "seeds": 0, "failures": 0, "kills": 0,
                    "false_suspicions": 0, "outages": [],
                },
            )
            row["seeds"] += 1
            row["kills"] += len(outcome.killed)
            row["false_suspicions"] += len(outcome.false_suspicions)
            if outcome.failed:
                row["failures"] += 1
            if outcome.outage_ms is not None:
                row["outages"].append(outcome.outage_ms)
        for row in rollup.values():
            outages = row.pop("outages")
            row["mean_outage_ms"] = (
                round(sum(outages) / len(outages), 3) if outages else None
            )
            row["max_outage_ms"] = (
                round(max(outages), 3) if outages else None
            )
        return rollup

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": {
                "seeds": self.config.seeds,
                "base_seed": self.config.base_seed,
                "scenarios": list(self.config.scenarios),
                "n": self.config.n,
                "t": self.config.t,
                "senders": self.config.senders,
                "message_bytes": self.config.message_bytes,
                "duration_s": self.config.duration_s,
                "heartbeat_timeout_s": self.config.heartbeat_timeout_s,
                "detector_mode": self.config.detector_mode,
            },
            "ok": self.ok,
            "seeds_run": len(self.outcomes),
            "failures": len(self.failures),
            "mean_recovery_outage_ms": (
                None
                if self.mean_outage_ms() is None
                else round(self.mean_outage_ms(), 3)
            ),
            "scenarios": self.scenario_summary(),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def write_json(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def bench_record(self) -> Dict[str, object]:
        """The ``BENCH_chaos_live.json`` payload."""
        return {
            "bench": "chaos_live_campaign",
            "seeds_run": len(self.outcomes),
            "failures": len(self.failures),
            "false_suspicions": sum(
                len(o.false_suspicions) for o in self.outcomes
            ),
            "mean_recovery_outage_ms": (
                None
                if self.mean_outage_ms() is None
                else round(self.mean_outage_ms(), 3)
            ),
            "scenarios": self.scenario_summary(),
        }

    def write_bench(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.bench_record(), handle, indent=2)
            handle.write("\n")


LiveProgressCallback = Callable[[LiveSeedOutcome], None]


def run_live_campaign(
    config: Optional[LiveChaosConfig] = None,
    progress: Optional[LiveProgressCallback] = None,
    **overrides,
) -> LiveCampaignReport:
    """Run a live chaos campaign and return its report.

    Seed-to-schedule mapping is identical to the simulator campaign
    (round-robin over scenarios, schedules derived from
    ``(scenario, seed)``), so a failing live seed can be replayed on
    the simulator with the same schedule for comparison.
    """
    if config is not None and overrides:
        raise ConfigurationError(
            "pass either a config object or overrides, not both"
        )
    cfg = config if config is not None else LiveChaosConfig(**overrides)
    ctx = cfg.schedule_context()
    report = LiveCampaignReport(config=cfg)
    for index in range(cfg.seeds):
        scenario = cfg.scenarios[index % len(cfg.scenarios)]
        seed = cfg.base_seed + index
        schedule = generate_schedule(scenario, seed, ctx)
        outcome = run_live_schedule(schedule, cfg)
        report.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return report
