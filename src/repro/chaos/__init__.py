"""Chaos campaigns: randomized fault schedules, invariant gating, and
failing-schedule minimization.

The paper's correctness claims (uniform total order under any ``<= t``
crashes, §4.2.1) live or die on compound-fault recovery behaviour, not
the steady state.  This package searches that fault space:

* :mod:`repro.chaos.schedules` — seeded, model-aware generators that
  compose crash storms, role-targeted kills, crashes inside view-change
  windows, repeated leader assassination, and bounded network/host
  degradations (plus an opt-in mode that violates the perfect-FD
  assumption to document what breaks);
* :mod:`repro.chaos.campaign` — drives N seeded runs through the
  cluster harness and judges each with the full invariant oracle;
* :mod:`repro.chaos.live` — drives the *same* seeded schedules against
  a real localhost cluster (one OS process per node, asyncio TCP),
  delivering crashes as genuine ``SIGKILL``\\ s and judging the merged
  crash-surviving journals with the same oracle;
* :mod:`repro.chaos.oracle` — safety (validity, agreement, integrity,
  total order, uniformity, wire invariants) plus liveness (the run
  drains) as one verdict;
* :mod:`repro.chaos.shrink` — delta-debugging of failing schedules into
  minimal reproducers fit for regression tests.

Quickstart::

    from repro.chaos import CampaignConfig, run_campaign
    report = run_campaign(CampaignConfig(seeds=50))
    assert report.ok, report.failures[0].verdict.summary()

or from the command line: ``python -m repro chaos --seeds 50``
(simulator) / ``python -m repro chaos --live`` (real SIGKILLs).
"""

from repro.chaos.campaign import (
    CampaignConfig,
    CampaignReport,
    SeedOutcome,
    apply_schedule,
    recovery_outage_ms,
    run_campaign,
    run_schedule,
)
from repro.chaos.live import (
    LIVE_SCENARIOS,
    LiveCampaignReport,
    LiveChaosConfig,
    LiveSeedOutcome,
    run_live_campaign,
    run_live_schedule,
)
from repro.chaos.oracle import Verdict, Violation, judge_run
from repro.chaos.schedules import (
    DEFAULT_SCENARIOS,
    SCENARIOS,
    UNSOUND_SCENARIOS,
    FaultEvent,
    FaultSchedule,
    ScheduleContext,
    generate_schedule,
)
from repro.chaos.shrink import shrink_schedule

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "DEFAULT_SCENARIOS",
    "FaultEvent",
    "FaultSchedule",
    "LIVE_SCENARIOS",
    "LiveCampaignReport",
    "LiveChaosConfig",
    "LiveSeedOutcome",
    "run_live_campaign",
    "run_live_schedule",
    "SCENARIOS",
    "ScheduleContext",
    "SeedOutcome",
    "UNSOUND_SCENARIOS",
    "Verdict",
    "Violation",
    "apply_schedule",
    "generate_schedule",
    "judge_run",
    "recovery_outage_ms",
    "run_campaign",
    "run_schedule",
    "shrink_schedule",
]
