"""Campaign runner: N seeded fault schedules, one oracle verdict each.

``run_campaign`` is the subsystem's front door: it generates one
schedule per seed (round-robin over the configured scenarios), drives
each through the full simulated stack via :func:`run_schedule`, judges
the outcome with the invariant oracle, delta-debugs any failing
schedule down to a minimal reproducer, and returns a
:class:`CampaignReport` that serialises to JSON (plus the
``BENCH_chaos.json`` record the perf trajectory tracks).

A campaign is deterministic for a fixed ``base_seed``: schedules derive
from ``(scenario, seed)`` pairs, and every randomised subsystem inside
a run hangs off the cluster's seeded RNG registry.
"""

from __future__ import annotations

import json
import time as _time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos.oracle import Verdict, judge_run
from repro.chaos.schedules import (
    DEFAULT_SCENARIOS,
    FaultEvent,
    FaultSchedule,
    ScheduleContext,
    generate_schedule,
)
from repro.chaos.shrink import shrink_schedule
from repro.checker.wire_monitor import attach_wire_monitor
from repro.cluster.config import ClusterConfig
from repro.cluster.harness import Cluster, build_cluster
from repro.cluster.results import ExperimentResult
from repro.core.fsr.config import FSRConfig
from repro.errors import CheckFailure, ConfigurationError, SimulationError
from repro.net.params import NetworkParams
from repro.protocols.multiring.config import MultiRingConfig


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one chaos campaign needs.

    The workload and network defaults are tuned so a single run takes a
    fraction of a wall-clock second: traffic saturates a 6-process ring
    for ~0.1 simulated seconds, which is the window the schedule
    generators aim their faults into.
    """

    seeds: int = 50
    base_seed: int = 0
    scenarios: Tuple[str, ...] = DEFAULT_SCENARIOS
    n: int = 6
    t: int = 2
    protocol: str = "fsr"
    #: Ring count for ``protocol="multiring"`` campaigns; ignored for
    #: every other protocol.
    shards: int = 2
    #: Workload: every process broadcasts ``per_sender`` messages of
    #: ``message_bytes`` right after the settle phase.
    per_sender: int = 6
    message_bytes: int = 50_000
    detection_delay_s: float = 20e-3
    #: Attach the FSR wire monitor so structural violations abort the
    #: offending run at the exact send (FSR clusters only).
    wire_monitor: bool = True
    #: Simulated-time liveness budget per run.
    max_time_s: float = 60.0
    settle_s: float = 0.05
    #: Delta-debug failing schedules down to minimal reproducers.
    shrink_failures: bool = True
    #: Maximum oracle re-runs the shrinker may spend per failure.
    shrink_budget: int = 48
    #: Fault window and model knobs handed to the schedule generators.
    window: Tuple[float, float] = (0.06, 0.16)
    flush_window_s: float = 8e-3
    #: Heartbeat bounds for schedules that run a real (message-driven)
    #: detector.  The default timeout is deliberately generous: with the
    #: saturating campaign workload, heartbeats queue behind ~4 ms data
    #: frames and worst-case silences reach ~0.2 s — a timeout near that
    #: false-suspects live peers and (without a quorum) can split
    #: membership.  Scenarios using the oracle ignore these.
    heartbeat_interval_s: float = 10e-3
    heartbeat_timeout_s: float = 0.8
    #: Let generators scope bursts to single directed links.
    link_faults: bool = False

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ConfigurationError("a campaign needs at least one seed")
        if not self.scenarios:
            raise ConfigurationError("a campaign needs at least one scenario")
        if self.per_sender < 1:
            raise ConfigurationError("per_sender must be positive")

    def schedule_context(self) -> ScheduleContext:
        return ScheduleContext(
            n=self.n,
            t=self.t,
            detection_delay_s=self.detection_delay_s,
            window=self.window,
            flush_window_s=self.flush_window_s,
            heartbeat_interval_s=self.heartbeat_interval_s,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            link_faults=self.link_faults,
            shards=self.shards if self.protocol == "multiring" else 1,
        )

    def network_params(self, schedule: FaultSchedule) -> NetworkParams:
        """Fast-calibrated fabric; ARQ forced on when loss is injected."""
        return NetworkParams(
            bandwidth_bps=100e6,
            propagation_delay_s=10e-6,
            cpu_per_message_s=20e-6,
            cpu_per_byte_s=5e-9,
            retransmit_timeout_s=10e-3,
            force_reliable=schedule.needs_arq(),
        )


# ----------------------------------------------------------------------
# Single-run execution
# ----------------------------------------------------------------------

def _schedule_block(sim, net, src, dst, start: float, end: float) -> None:
    sim.schedule_at(start, net.set_link_blocked, src, dst, True)
    sim.schedule_at(end, net.set_link_blocked, src, dst, False)


def apply_schedule(cluster: Cluster, schedule: FaultSchedule) -> None:
    """Arm every fault of ``schedule`` on a built (unstarted ok) cluster."""
    sim, net = cluster.sim, cluster.network
    for event in schedule.events:
        end = event.time + event.duration_s
        if event.kind == "crash":
            cluster.schedule_crash(event.process, event.time)
        elif event.kind == "loss_burst":
            if event.link is not None:
                src, dst = event.link
                sim.schedule_at(
                    event.time, net.set_link_loss, src, dst, event.magnitude
                )
                sim.schedule_at(end, net.set_link_loss, src, dst, None)
            else:
                sim.schedule_at(
                    event.time, net.set_loss_override, event.magnitude
                )
                sim.schedule_at(end, net.set_loss_override, None)
        elif event.kind == "jitter_burst":
            if event.link is not None:
                src, dst = event.link
                sim.schedule_at(
                    event.time, net.set_link_extra_jitter, src, dst,
                    event.magnitude,
                )
                sim.schedule_at(end, net.set_link_extra_jitter, src, dst, 0.0)
            else:
                sim.schedule_at(event.time, net.set_extra_jitter, event.magnitude)
                sim.schedule_at(end, net.set_extra_jitter, 0.0)
        elif event.kind == "asym_loss":
            src, dst = event.link
            sim.schedule_at(
                event.time, net.set_link_loss, src, dst, event.magnitude
            )
            sim.schedule_at(end, net.set_link_loss, src, dst, None)
        elif event.kind == "partition":
            group = set(event.group or ())
            others = [p for p in range(schedule.n) if p not in group]
            for a in sorted(group):
                for b in others:
                    _schedule_block(sim, net, a, b, event.time, end)
                    _schedule_block(sim, net, b, a, event.time, end)
        elif event.kind == "partial_partition":
            a, b = event.link
            _schedule_block(sim, net, a, b, event.time, end)
            _schedule_block(sim, net, b, a, event.time, end)
        elif event.kind == "bandwidth_cap":
            raise ConfigurationError(
                "bandwidth_cap is live-only (the simulator models link "
                "rate via NetworkParams.bandwidth_bps)"
            )
        elif event.kind == "cpu_slow":
            sim.schedule_at(
                event.time, net.set_cpu_scale, event.process, event.magnitude
            )
            sim.schedule_at(
                event.time + event.duration_s, net.set_cpu_scale, event.process, 1.0
            )
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ConfigurationError(f"unknown fault kind {event.kind!r}")


def run_schedule(
    schedule: FaultSchedule, config: Optional[CampaignConfig] = None
) -> Tuple[Verdict, ExperimentResult]:
    """Execute one fault schedule end to end and judge it.

    Builds a fresh cluster seeded from the schedule, attaches the wire
    monitor, submits the standard saturating workload, arms the faults,
    runs until the liveness predicate holds (or the budget expires), and
    returns the oracle's verdict together with the frozen result.
    """
    cfg = config if config is not None else CampaignConfig()
    if cfg.protocol == "fsr":
        protocol_config = FSRConfig(t=schedule.t)
    elif cfg.protocol == "multiring":
        protocol_config = MultiRingConfig(
            shards=cfg.shards, fsr=FSRConfig(t=schedule.t)
        )
    else:
        protocol_config = None
    cluster_config = ClusterConfig(
        n=schedule.n,
        protocol=cfg.protocol,
        protocol_config=protocol_config,
        network=cfg.network_params(schedule),
        seed=schedule.seed,
        detector=schedule.detector,
        detection_delay_s=cfg.detection_delay_s,
        heartbeat_interval_s=cfg.heartbeat_interval_s,
        heartbeat_timeout_s=cfg.heartbeat_timeout_s,
        # Any run with a real (message-driven) detector can false-suspect
        # under pathological silence, and partitions make suspicion
        # symmetric; the primary-partition guard keeps a minority from
        # installing its own view and splitting the sequence.
        require_quorum=schedule.detector != "oracle",
    )
    cluster = build_cluster(cluster_config)
    if cfg.wire_monitor:
        attach_wire_monitor(cluster)

    cluster.start()
    # Arm faults at time zero: generated schedules aim inside the
    # traffic window, but shrunk candidates may round a fault into the
    # settle phase, and those must replay rather than error out.
    apply_schedule(cluster, schedule)
    cluster.run(until=cfg.settle_s)
    for pid in range(schedule.n):
        if cluster.network.is_crashed(pid):
            continue  # crashed during settle (shrunk schedules only)
        for _ in range(cfg.per_sender):
            cluster.broadcast(pid, size_bytes=cfg.message_bytes)

    planned_crashes = {e.process for e in schedule.crashes()}
    # A long-lived full partition strands its minority outside the
    # primary component: those processes stop delivering (like crashed
    # ones) and the liveness obligation falls on the majority alone.
    casualties = (
        set(schedule.partition_casualties(cluster_config.heartbeat_timeout_s))
        - planned_crashes
    )
    excluded = planned_crashes | casualties
    survivors = [p for p in range(schedule.n) if p not in excluded]
    expected = cfg.per_sender * len(survivors)

    def drained() -> bool:
        return all(
            sum(
                1
                for d in cluster.nodes[p].app_deliveries
                if d.origin not in excluded
            ) >= expected
            for p in survivors
        )

    wire_error: Optional[str] = None
    run_error: Optional[str] = None
    completed = False
    try:
        cluster.run_until(drained, step_s=0.02, max_time_s=cfg.max_time_s)
        # Settle: let trailing acks/flushes land before judging.
        cluster.run(until=cluster.sim.now + 2 * cfg.detection_delay_s + 0.05)
        completed = True
    except CheckFailure as failure:  # wire monitor abort
        wire_error = str(failure)
    except SimulationError:  # liveness budget expired
        completed = False
    except Exception as error:  # pragma: no cover - defensive
        run_error = f"{type(error).__name__}: {error}"

    result = cluster.results()
    # Partition casualties are judged like crashed processes (their log
    # must be a consistent prefix, but they owe no further deliveries);
    # mark them at end-of-run, the same convention the live campaign
    # uses for view-excluded survivors.
    for pid in sorted(casualties):
        if pid not in result.crashed:
            result.crashed[pid] = result.duration_s
    verdict = judge_run(
        result,
        drained=completed,
        wire_error=wire_error,
        run_error=run_error,
        expected_unsound=schedule.fd_unsound,
    )
    return verdict, result


def recovery_outage_ms(
    result: ExperimentResult, schedule: FaultSchedule
) -> Optional[float]:
    """Worst survivor delivery gap straddling any executed crash, in ms.

    ``None`` when the schedule crashed nobody (or no survivor delivered
    on both sides of a crash instant).
    """
    crash_times = [
        e.time for e in schedule.crashes() if e.process in result.crashed
    ]
    if not crash_times:
        return None
    worst: Optional[float] = None
    for process in sorted(result.correct_processes()):
        times = sorted(d.time for d in result.delivery_logs[process].deliveries)
        for crash_at in crash_times:
            before = [t for t in times if t <= crash_at]
            after = [t for t in times if t > crash_at]
            if before and after:
                gap_ms = (min(after) - max(before)) * 1e3
                worst = gap_ms if worst is None else max(worst, gap_ms)
    return worst


# ----------------------------------------------------------------------
# Campaign loop + report
# ----------------------------------------------------------------------

@dataclass
class SeedOutcome:
    """One seed's schedule, verdict, and diagnostics."""

    seed: int
    scenario: str
    schedule: FaultSchedule
    verdict: Verdict
    sim_duration_s: float
    wall_s: float
    outage_ms: Optional[float] = None
    #: Shrunk reproducer, present only for gating (sound) failures.
    minimal: Optional[FaultSchedule] = None

    @property
    def failed(self) -> bool:
        """True when this seed gates the campaign red."""
        return not self.verdict.ok and not self.verdict.expected_unsound

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seed": self.seed,
            "scenario": self.scenario,
            "schedule": self.schedule.to_dict(),
            "verdict": self.verdict.to_dict(),
            "sim_duration_s": round(self.sim_duration_s, 6),
            "wall_s": round(self.wall_s, 3),
            "outage_ms": None if self.outage_ms is None else round(self.outage_ms, 3),
        }
        if self.minimal is not None:
            out["minimal_reproducer"] = self.minimal.to_dict()
        return out


@dataclass
class CampaignReport:
    """Everything a finished campaign leaves behind."""

    config: CampaignConfig
    outcomes: List[SeedOutcome] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failures(self) -> List[SeedOutcome]:
        return [o for o in self.outcomes if o.failed]

    @property
    def unsound_outcomes(self) -> List[SeedOutcome]:
        return [o for o in self.outcomes if o.verdict.expected_unsound]

    def mean_outage_ms(self) -> Optional[float]:
        outages = [o.outage_ms for o in self.outcomes if o.outage_ms is not None]
        if not outages:
            return None
        return sum(outages) / len(outages)

    def scenario_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-scenario seeds/failures/mean-outage rollup."""
        rollup: Dict[str, Dict[str, object]] = {}
        for outcome in self.outcomes:
            row = rollup.setdefault(
                outcome.scenario, {"seeds": 0, "failures": 0, "outages": []}
            )
            row["seeds"] += 1
            if outcome.failed:
                row["failures"] += 1
            if outcome.outage_ms is not None:
                row["outages"].append(outcome.outage_ms)
        for row in rollup.values():
            outages = row.pop("outages")
            row["mean_outage_ms"] = (
                round(sum(outages) / len(outages), 3) if outages else None
            )
        return rollup

    # ------------------------------------------------------------------
    def fingerprint(self) -> List[Tuple[int, str, bool, float]]:
        """Wall-clock-free digest for determinism assertions."""
        return [
            (o.seed, o.scenario, o.verdict.ok, round(o.sim_duration_s, 9))
            for o in self.outcomes
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": {
                "seeds": self.config.seeds,
                "base_seed": self.config.base_seed,
                "scenarios": list(self.config.scenarios),
                "n": self.config.n,
                "t": self.config.t,
                "protocol": self.config.protocol,
                "shards": self.config.shards,
                "per_sender": self.config.per_sender,
                "message_bytes": self.config.message_bytes,
            },
            "ok": self.ok,
            "seeds_run": len(self.outcomes),
            "failures": len(self.failures),
            "unsound_runs": len(self.unsound_outcomes),
            "mean_recovery_outage_ms": (
                None
                if self.mean_outage_ms() is None
                else round(self.mean_outage_ms(), 3)
            ),
            "scenarios": self.scenario_summary(),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def write_json(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def bench_record(self) -> Dict[str, object]:
        """The ``BENCH_chaos.json`` payload for the perf trajectory."""
        return {
            "bench": "chaos_campaign",
            "seeds_run": len(self.outcomes),
            "failures": len(self.failures),
            "unsound_runs": len(self.unsound_outcomes),
            "mean_recovery_outage_ms": (
                None
                if self.mean_outage_ms() is None
                else round(self.mean_outage_ms(), 3)
            ),
            "scenarios": {
                name: {"seeds": row["seeds"], "failures": row["failures"]}
                for name, row in self.scenario_summary().items()
            },
        }

    def write_bench(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.bench_record(), handle, indent=2)
            handle.write("\n")


ProgressCallback = Callable[[SeedOutcome], None]


def run_campaign(
    config: Optional[CampaignConfig] = None,
    progress: Optional[ProgressCallback] = None,
    **overrides,
) -> CampaignReport:
    """Run a full chaos campaign and return its report.

    Either pass a prebuilt :class:`CampaignConfig` or keyword overrides
    for one (``run_campaign(seeds=200, t=2)``).  ``progress`` is invoked
    once per finished seed (the CLI uses it for live output).
    """
    if config is not None and overrides:
        raise ConfigurationError("pass either a config object or overrides, not both")
    cfg = config if config is not None else CampaignConfig(**overrides)
    ctx = cfg.schedule_context()
    report = CampaignReport(config=cfg)
    for index in range(cfg.seeds):
        scenario = cfg.scenarios[index % len(cfg.scenarios)]
        seed = cfg.base_seed + index
        schedule = generate_schedule(scenario, seed, ctx)
        started = _time.perf_counter()
        verdict, result = run_schedule(schedule, cfg)
        outcome = SeedOutcome(
            seed=seed,
            scenario=scenario,
            schedule=schedule,
            verdict=verdict,
            sim_duration_s=result.duration_s,
            wall_s=_time.perf_counter() - started,
            outage_ms=recovery_outage_ms(result, schedule),
        )
        if outcome.failed and cfg.shrink_failures:
            outcome.minimal = shrink_schedule(
                schedule,
                lambda candidate: not run_schedule(candidate, cfg)[0].ok,
                budget=cfg.shrink_budget,
            )
        report.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return report
