"""Seeded, model-aware fault-schedule generators.

A :class:`FaultSchedule` is a declarative description of everything a
chaos run does to a cluster: process crashes, loss/jitter burst phases,
and per-node CPU slowdowns.  Generators compose these into the
interleavings nobody writes by hand — crash storms inside one flush
window, crashes timed into a view change triggered by an earlier crash,
repeated leader assassination, degradation phases overlapping recovery.

Generators are *model-aware*: they know the failure detector's
detection delay and the approximate flush duration, so "crash during
the view change" lands inside the actual view-change window rather than
at a random instant.  They are also *bounded*: sound scenarios never
schedule more than ``t`` crashes, and degradations stay strictly within
the failure detector's operating envelope (with the oracle detector,
suspicion is fed by the injector, so no degradation can forge one; with
the heartbeat detector the generators keep slowdowns far below the
suspicion timeout).  The single exception is the opt-in
:func:`fd_violation` scenario, which deliberately stalls a node past
the heartbeat timeout to document what the protocol does when the
perfect-failure-detector assumption is broken.

Determinism: ``generate_schedule(scenario, seed, ctx)`` derives its RNG
from the ``(scenario, seed)`` pair via :class:`random.Random`'s string
seeding (SHA-512 based, stable across processes), so a campaign with a
fixed base seed is bit-reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Fault kinds understood by the campaign runner.
FAULT_KINDS = (
    "crash",
    "loss_burst",
    "jitter_burst",
    "cpu_slow",
    "partition",
    "partial_partition",
    "asym_loss",
    "bandwidth_cap",
)

#: Kinds that may (loss/jitter bursts, bandwidth caps) or must
#: (asym_loss, partial_partition) carry a directed ``link``.
LINK_KINDS = (
    "loss_burst",
    "jitter_burst",
    "asym_loss",
    "partial_partition",
    "bandwidth_cap",
)


@dataclass(frozen=True)
class FaultEvent:
    """One fault: a crash, or a timed degradation phase.

    ``process`` targets crashes and CPU slowdowns; burst phases apply to
    the whole fabric unless ``link`` scopes them to one directed edge
    ``(src, dst)``.  ``magnitude`` is kind-specific: loss probability
    for ``loss_burst``/``asym_loss``, extra jitter seconds for
    ``jitter_burst``, CPU cost multiplier for ``cpu_slow``, link rate
    in bits/s for ``bandwidth_cap``.
    ``partition`` isolates the (minority) ``group`` from the rest of the
    cluster in both directions for ``duration_s``; ``partial_partition``
    severs only the single ``link`` pair.  ``note`` records the
    generator's intent ("leader", "minority_island", ...) for readable
    reports.
    """

    kind: str
    time: float
    process: Optional[int] = None
    duration_s: float = 0.0
    magnitude: float = 0.0
    note: str = ""
    #: Directed edge ``(src, dst)`` for link-scoped faults.  For
    #: ``partial_partition`` the cut applies in both directions.
    link: Optional[Tuple[int, int]] = None
    #: Minority side of a full ``partition``.
    group: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ConfigurationError("fault time cannot be negative")
        if self.kind in ("crash", "cpu_slow") and self.process is None:
            raise ConfigurationError(f"{self.kind} fault needs a target process")
        if self.kind != "crash" and self.duration_s <= 0:
            raise ConfigurationError(f"{self.kind} fault needs a positive duration")
        if self.kind in ("asym_loss", "partial_partition") and self.link is None:
            raise ConfigurationError(f"{self.kind} fault needs a link (src, dst)")
        if self.kind == "partition" and not self.group:
            raise ConfigurationError("partition fault needs a non-empty group")
        if self.link is not None:
            if self.kind not in LINK_KINDS:
                raise ConfigurationError(f"{self.kind} fault cannot carry a link")
            if len(self.link) != 2 or self.link[0] == self.link[1]:
                raise ConfigurationError("link must be a (src, dst) pair, src != dst")

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "time": self.time}
        if self.process is not None:
            out["process"] = self.process
        if self.duration_s:
            out["duration_s"] = self.duration_s
        if self.magnitude:
            out["magnitude"] = self.magnitude
        if self.note:
            out["note"] = self.note
        if self.link is not None:
            out["link"] = list(self.link)
        if self.group is not None:
            out["group"] = list(self.group)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        link = data.get("link")
        group = data.get("group")
        return cls(
            kind=str(data["kind"]),
            time=float(data["time"]),  # type: ignore[arg-type]
            process=None if data.get("process") is None else int(data["process"]),  # type: ignore[arg-type]
            duration_s=float(data.get("duration_s", 0.0)),  # type: ignore[arg-type]
            magnitude=float(data.get("magnitude", 0.0)),  # type: ignore[arg-type]
            note=str(data.get("note", "")),
            link=None if link is None else (int(link[0]), int(link[1])),  # type: ignore[index]
            group=None if group is None else tuple(int(p) for p in group),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A complete, replayable fault scenario for one cluster run."""

    scenario: str
    seed: int
    n: int
    t: int
    events: Tuple[FaultEvent, ...] = ()
    #: Failure detector the run must use ("oracle" or "heartbeat").
    detector: str = "oracle"
    #: True for scenarios that deliberately break the perfect-FD
    #: assumption; the oracle reports what fails without failing the
    #: campaign (these runs document a limit, they don't test a claim).
    fd_unsound: bool = False

    # ------------------------------------------------------------------
    def crashes(self) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind == "crash")

    def degradations(self) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind != "crash")

    def needs_arq(self) -> bool:
        """Whether the run must force reliable channels (loss injected)."""
        return any(e.kind in ("loss_burst", "asym_loss") for e in self.events)

    def netem_events(self) -> Tuple[FaultEvent, ...]:
        """The events a link shaper delivers (everything but crashes and
        CPU slowdowns, which are process faults, not network faults)."""
        return tuple(
            e for e in self.events if e.kind not in ("crash", "cpu_slow")
        )

    def partition_casualties(self, detection_s: float) -> Tuple[int, ...]:
        """Processes a long-lived full partition is expected to exclude.

        A ``partition`` whose duration exceeds the detector's suspicion
        bound strands its (minority) ``group`` outside the primary
        component: the majority installs a view without them, and — with
        permanent suspicions — the heal does not re-admit them.  Those
        processes are judged like crashed ones (prefix consistency, no
        liveness obligation).  Blip partitions that heal before any
        suspicion can fire expect no casualties.
        """
        out: set = set()
        for event in self.events:
            if (
                event.kind == "partition"
                and event.group
                and event.duration_s >= detection_s
            ):
                out.update(event.group)
        return tuple(sorted(out))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "n": self.n,
            "t": self.t,
            "detector": self.detector,
            "fd_unsound": self.fd_unsound,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSchedule":
        return cls(
            scenario=str(data["scenario"]),
            seed=int(data["seed"]),  # type: ignore[arg-type]
            n=int(data["n"]),  # type: ignore[arg-type]
            t=int(data["t"]),  # type: ignore[arg-type]
            detector=str(data.get("detector", "oracle")),
            fd_unsound=bool(data.get("fd_unsound", False)),
            events=tuple(
                FaultEvent.from_dict(e)  # type: ignore[arg-type]
                for e in data.get("events", ())
            ),
        )

    def reproducer(self) -> str:
        """Python snippet reconstructing this schedule verbatim.

        A red campaign's shrunk schedule is printed in this form so it
        can be pasted straight into a regression test (see
        ``tests/integration/test_crash_during_view_change.py``).
        """
        lines = [
            "FaultSchedule.from_dict({",
            f"    \"scenario\": {self.scenario!r}, \"seed\": {self.seed},",
            f"    \"n\": {self.n}, \"t\": {self.t}, \"detector\": {self.detector!r},",
        ]
        if self.fd_unsound:
            lines.append("    \"fd_unsound\": True,")
        lines.append("    \"events\": [")
        for event in self.events:
            lines.append(f"        {event.to_dict()!r},")
        lines.append("    ],")
        lines.append("})")
        return "\n".join(lines)


@dataclass(frozen=True)
class ScheduleContext:
    """The cluster model a generator shapes its schedule around."""

    n: int = 6
    t: int = 2
    #: Crash-to-suspicion delay of the detector (view change starts
    #: roughly this long after a crash).
    detection_delay_s: float = 20e-3
    #: Interval of simulated time during which workload traffic is in
    #: flight; faults land here so they actually interleave with load.
    window: Tuple[float, float] = (0.06, 0.16)
    #: Approximate duration of one flush round (crash-during-view-change
    #: scenarios aim inside ``detection + U(0, flush_window)``).
    flush_window_s: float = 8e-3
    #: Hardest CPU slowdown a *sound* scenario may apply.  With the
    #: heartbeat detector, suspicion fires after ``heartbeat_timeout_s``
    #: without a processed heartbeat; the cap keeps worst-case heartbeat
    #: service time far below that, preserving FD accuracy.
    max_slowdown: float = 3.0
    heartbeat_interval_s: float = 10e-3
    heartbeat_timeout_s: float = 200e-3
    #: True when the consumer can impose per-directed-link faults (the
    #: live NetShaper, or the simulator's per-link overrides).  With it
    #: set, ``degraded_network`` scopes most bursts to single links
    #: instead of the whole fabric, and ``hostile_network`` is allowed.
    link_faults: bool = False
    #: Concurrent rings of the multi-ring protocol (1 = single ring).
    #: The ``ring_crash`` scenario uses it to aim at one ring's whole
    #: sequencer chain.
    shards: int = 1

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError("chaos needs at least two processes")
        if not 0 <= self.t < self.n:
            raise ConfigurationError("need 0 <= t < n")
        if self.window[0] >= self.window[1]:
            raise ConfigurationError("empty fault window")


def _uniform(rng: random.Random, lo: float, hi: float) -> float:
    return round(lo + rng.random() * (hi - lo), 4)


def _random_link(rng: random.Random, n: int) -> Tuple[int, int]:
    src = rng.randrange(n)
    dst = rng.randrange(n - 1)
    if dst >= src:
        dst += 1
    return (src, dst)


# ----------------------------------------------------------------------
# Generators.  Each takes (rng, ctx) and returns a list of FaultEvents
# (plus optional schedule-level overrides via _SCENARIO_FLAGS).
# ----------------------------------------------------------------------

def crash_storm(rng: random.Random, ctx: ScheduleContext) -> List[FaultEvent]:
    """Up to ``t`` crashes; half the time packed into one flush window."""
    if ctx.t == 0:
        return []
    k = rng.randint(1, ctx.t)
    victims = rng.sample(range(ctx.n), k)
    clustered = rng.random() < 0.5
    base = _uniform(rng, *ctx.window)
    events = []
    for victim in victims:
        if clustered:
            at = round(base + rng.random() * ctx.flush_window_s, 4)
        else:
            at = _uniform(rng, *ctx.window)
        events.append(FaultEvent(
            "crash", at, process=victim,
            note="storm" if clustered else "scattered",
        ))
    return sorted(events, key=lambda e: e.time)


def role_targeted(rng: random.Random, ctx: ScheduleContext) -> List[FaultEvent]:
    """Crashes aimed at the protocol's load-bearing roles: the leader
    ``p_0``, the last backup ``p_t`` (where stability is decided), and
    intermediate backups — the processes whose loss exercises the
    recovery merge hardest."""
    if ctx.t == 0:
        return []
    roles = {0: "leader", ctx.t: "last_backup"}
    for backup in range(1, ctx.t):
        roles[backup] = f"backup_p{backup}"
    k = rng.randint(1, ctx.t)
    victims = rng.sample(sorted(roles), min(k, len(roles)))
    clustered = rng.random() < 0.5
    base = _uniform(rng, *ctx.window)
    events = []
    for victim in victims:
        if clustered:
            at = round(base + rng.random() * ctx.flush_window_s, 4)
        else:
            at = _uniform(rng, *ctx.window)
        events.append(FaultEvent("crash", at, process=victim, note=roles[victim]))
    return sorted(events, key=lambda e: e.time)


def view_change_crossfire(
    rng: random.Random, ctx: ScheduleContext
) -> List[FaultEvent]:
    """A first crash triggers a view change; later crashes are timed
    inside the resulting detection + flush windows (including the
    coordinator-during-flush case the recovery proof sweats over)."""
    if ctx.t == 0:
        return []
    pool = list(range(ctx.n))
    first = pool.pop(rng.randrange(len(pool)))
    t1 = _uniform(rng, ctx.window[0], (ctx.window[0] + ctx.window[1]) / 2)
    events = [FaultEvent("crash", t1, process=first, note="trigger")]
    extra = rng.randint(0, ctx.t - 1) if ctx.t > 1 else 0
    at = t1
    for _ in range(extra):
        victim = pool.pop(rng.randrange(len(pool)))
        at = round(
            at + ctx.detection_delay_s + rng.random() * ctx.flush_window_s, 4
        )
        events.append(FaultEvent(
            "crash", at, process=victim, note="during_view_change",
        ))
    return events


def repeated_leader_crash(
    rng: random.Random, ctx: ScheduleContext
) -> List[FaultEvent]:
    """Assassinate each successive leader: ``p_0`` of view 0, then the
    lowest survivor that leads the next view, and so on — the worst
    case for back-to-back recoveries."""
    if ctx.t == 0:
        return []
    k = ctx.t if ctx.t == 1 else rng.randint(2, ctx.t)
    at = _uniform(rng, ctx.window[0], (ctx.window[0] + ctx.window[1]) / 2)
    events = []
    for leader in range(k):
        events.append(FaultEvent(
            "crash", at, process=leader, note=f"leader_of_view_{leader}",
        ))
        # Let the previous view change complete (detection + flush),
        # then strike again somewhere in the recovered steady state.
        at = round(
            at
            + ctx.detection_delay_s
            + ctx.flush_window_s
            + rng.random() * 3 * ctx.flush_window_s,
            4,
        )
    return events


def degraded_network(
    rng: random.Random, ctx: ScheduleContext
) -> List[FaultEvent]:
    """Loss bursts, jitter bursts, and per-node CPU slowdowns — kept
    strictly within the failure detector's bound — optionally overlapped
    with a crash so degradation coincides with recovery.

    With ``ctx.link_faults`` (live runs, or sim runs with per-link
    overrides) bursts usually carry an explicit directed ``link``:
    a flaky cable degrades one edge, not the whole switch.
    """
    events: List[FaultEvent] = []
    lo, hi = ctx.window

    def _burst_link() -> Optional[Tuple[int, int]]:
        if ctx.link_faults and rng.random() < 0.7:
            return _random_link(rng, ctx.n)
        return None

    if rng.random() < 0.8:
        link = _burst_link()
        events.append(FaultEvent(
            "loss_burst", _uniform(rng, lo, hi),
            duration_s=round(0.02 + rng.random() * 0.03, 4),
            magnitude=round(0.05 + rng.random() * 0.25, 3),
            note="flaky_link" if link else "loss_burst",
            link=link,
        ))
    if rng.random() < 0.6:
        link = _burst_link()
        events.append(FaultEvent(
            "jitter_burst", _uniform(rng, lo, hi),
            duration_s=round(0.02 + rng.random() * 0.03, 4),
            magnitude=round(0.2e-3 + rng.random() * 1.8e-3, 6),
            note="congested_link" if link else "switch_queueing_noise",
            link=link,
        ))
    if rng.random() < 0.6:
        events.append(FaultEvent(
            "cpu_slow", _uniform(rng, lo, hi),
            process=rng.randrange(ctx.n),
            duration_s=round(0.03 + rng.random() * 0.05, 4),
            magnitude=round(1.5 + rng.random() * (ctx.max_slowdown - 1.5), 2),
            note="degraded_host",
        ))
    if ctx.t >= 1 and rng.random() < 0.5:
        events.append(FaultEvent(
            "crash", _uniform(rng, lo, hi),
            process=rng.randrange(ctx.n), note="crash_under_degradation",
        ))
    if not events:  # never generate an empty scenario
        events.append(FaultEvent(
            "loss_burst", _uniform(rng, lo, hi),
            duration_s=0.03, magnitude=0.1, note="loss_burst",
        ))
    return sorted(events, key=lambda e: e.time)


def hostile_network(
    rng: random.Random, ctx: ScheduleContext
) -> List[FaultEvent]:
    """Hostile-but-survivable networks: link jitter storms, lossy links,
    partition blips, hard minority partitions, and crashes under jitter.

    Each seed draws ONE pattern, so every run has a single analyzable
    expectation (the patterns compose badly: loss retransmit delay plus
    jitter plus a partition blip could add up past the detector floor,
    and the campaign's "zero false suspicions under sub-threshold
    jitter" claim needs the bound to hold by construction):

    - ``jitter_storm`` / ``kill_under_jitter``: per-link and cluster
      jitter strictly below the adaptive detector's floor — no view
      change may result (except for the scheduled kill).
    - ``lossy_links``: probabilistic loss on directed links.  Over TCP
      the shaper models loss as bounded synthetic retransmit delay, so
      the worst heartbeat gap stays under the floor.
    - ``blip_partition``: a full partition that heals before any
      suspicion can accrue — the run must come out with zero view
      changes.
    - ``hard_partition``: a strict-minority island cut off for longer
      than the suspicion ceiling; the majority must exclude it and keep
      ordering, and the heal must not split the sequence.  The minority
      stays strictly below ``n/2`` so the quorum guard leaves exactly
      one primary component (equal splits would deadlock: suspicions
      are permanent, so neither side could ever form a quorum).
    - ``partial_partition``: one severed pair, both endpoints ranked
      below the top two members — neither endpoint can ever believe
      itself coordinator, so dueling concurrent flushes (the classic
      split-membership trap of partial cuts) are impossible by
      construction.
    """
    from repro.failure.detector import adaptive_floor_s

    floor_s = adaptive_floor_s(ctx.heartbeat_interval_s, ctx.heartbeat_timeout_s)
    jitter_cap = 0.35 * max(
        floor_s - ctx.heartbeat_interval_s, ctx.heartbeat_interval_s
    )
    lo, hi = ctx.window
    span = hi - lo

    patterns = ["jitter_storm", "lossy_links"]
    if (ctx.n - 1) // 2 >= 1:
        patterns += ["blip_partition", "hard_partition"]
    if ctx.n >= 4:
        patterns.append("partial_partition")
    if ctx.t >= 1:
        patterns.append("kill_under_jitter")
    pattern = rng.choice(patterns)
    events: List[FaultEvent] = []

    def _jitter(at: float, link: Optional[Tuple[int, int]], note: str) -> FaultEvent:
        return FaultEvent(
            "jitter_burst", at,
            duration_s=round((0.2 + rng.random() * 0.3) * span, 4),
            magnitude=round((0.3 + 0.7 * rng.random()) * jitter_cap, 6),
            note=note, link=link,
        )

    if pattern == "jitter_storm":
        for _ in range(rng.randint(2, 4)):
            link = _random_link(rng, ctx.n) if rng.random() < 0.7 else None
            events.append(_jitter(
                _uniform(rng, lo, hi), link,
                "link_jitter" if link else "fabric_jitter",
            ))
    elif pattern == "lossy_links":
        for _ in range(rng.randint(1, 3)):
            at = _uniform(rng, lo, hi)
            duration = round((0.2 + rng.random() * 0.3) * span, 4)
            magnitude = round(0.08 + rng.random() * 0.22, 3)
            if rng.random() < 0.5:
                events.append(FaultEvent(
                    "asym_loss", at, duration_s=duration, magnitude=magnitude,
                    link=_random_link(rng, ctx.n), note="one_way_loss",
                ))
            else:
                link = _random_link(rng, ctx.n) if rng.random() < 0.7 else None
                events.append(FaultEvent(
                    "loss_burst", at, duration_s=duration, magnitude=magnitude,
                    link=link, note="flaky_link" if link else "fabric_loss",
                ))
    elif pattern == "blip_partition":
        minority = rng.sample(range(ctx.n), rng.randint(1, (ctx.n - 1) // 2))
        events.append(FaultEvent(
            "partition", _uniform(rng, lo, hi),
            duration_s=round(0.5 * floor_s * (0.5 + 0.5 * rng.random()), 4),
            group=tuple(sorted(minority)), note="heals_before_suspicion",
        ))
    elif pattern == "hard_partition":
        minority = rng.sample(range(ctx.n), rng.randint(1, (ctx.n - 1) // 2))
        events.append(FaultEvent(
            "partition", _uniform(rng, lo, (lo + hi) / 2),
            duration_s=round(
                ctx.heartbeat_timeout_s * (1.8 + 0.6 * rng.random()), 4
            ),
            group=tuple(sorted(minority)), note="minority_island",
        ))
    elif pattern == "partial_partition":
        a, b = rng.sample(range(2, ctx.n), 2)
        long_cut = rng.random() < 0.5
        duration = (
            round(ctx.heartbeat_timeout_s * (1.8 + 0.6 * rng.random()), 4)
            if long_cut
            else round(0.5 * floor_s * (0.5 + 0.5 * rng.random()), 4)
        )
        events.append(FaultEvent(
            "partial_partition", _uniform(rng, lo, (lo + hi) / 2),
            duration_s=duration, link=(a, b),
            note="severed_pair" if long_cut else "severed_pair_blip",
        ))
    else:  # kill_under_jitter
        kill_at = _uniform(rng, lo + 0.3 * span, hi)
        jitter_at = round(max(lo, kill_at - 0.3 * span), 4)
        burst = _jitter(jitter_at, None, "jitter_during_recovery")
        # Stretch the burst over detection and recovery of the kill.
        burst = FaultEvent(
            "jitter_burst", jitter_at,
            duration_s=round(
                kill_at - jitter_at + 2.0 * ctx.heartbeat_timeout_s, 4
            ),
            magnitude=burst.magnitude, note=burst.note,
        )
        events.append(burst)
        if rng.random() < 0.5:
            events.append(_jitter(
                _uniform(rng, lo, hi), _random_link(rng, ctx.n), "link_jitter",
            ))
        events.append(FaultEvent(
            "crash", kill_at, process=rng.randrange(ctx.n),
            note="crash_under_jitter",
        ))
    return sorted(events, key=lambda e: e.time)


def ring_crash(rng: random.Random, ctx: ScheduleContext) -> List[FaultEvent]:
    """Decapitate one inner ring of a multi-ring deployment.

    Kills the head of ring ``i``'s sequencer chain — its leader and the
    leading backups — inside one flush window, so the whole chain of a
    single ring goes down at once.  Tolerance-bounded: at most
    ``min(t, n - 1)`` crashes (killing the full ``t + 1``-member chain
    would exceed what any ``t``-resilient protocol promises).  The
    multiplexer must stall only the dead ring's buckets; after the view
    installs, the epoch rotation re-aims those buckets at a surviving
    chain and the order must hold across the reassignment.

    With ``shards == 1`` this degenerates to clustered role-targeted
    leader+backup kills — still a valid (single-ring) schedule.
    """
    if ctx.t == 0:
        return []
    from repro.protocols.multiring.buckets import offset_for_ring

    ring = rng.randrange(max(1, ctx.shards))
    offset = offset_for_ring(ring, ctx.n, max(1, ctx.shards))
    kills = min(ctx.t, ctx.n - 1)
    base = _uniform(rng, *ctx.window)
    events = []
    for position in range(kills):
        victim = (offset + position) % ctx.n
        events.append(FaultEvent(
            "crash",
            round(base + rng.random() * ctx.flush_window_s, 4),
            process=victim,
            note=f"ring{ring}_chain_p{position}",
        ))
    return sorted(events, key=lambda e: e.time)


def fd_violation(rng: random.Random, ctx: ScheduleContext) -> List[FaultEvent]:
    """OPT-IN, UNSOUND: stall one node's CPU far past the heartbeat
    timeout, so live peers get falsely suspected — a deliberate breach
    of the perfect-failure-detector assumption (paper §3).  Runs using
    this scenario are reported as ``fd_unsound`` and their violations
    document what breaks; they never gate a campaign."""
    victim = rng.randrange(ctx.n)
    # Make per-message service time exceed the suspicion timeout, so
    # heartbeats queue behind data and the victim's FD goes inaccurate.
    magnitude = round(
        4.0 * ctx.heartbeat_timeout_s / max(ctx.heartbeat_interval_s, 1e-6), 1
    )
    return [FaultEvent(
        "cpu_slow", _uniform(rng, *ctx.window),
        process=victim,
        duration_s=round(4 * ctx.heartbeat_timeout_s, 4),
        magnitude=magnitude,
        note="beyond_fd_bound",
    )]


#: Sound scenarios: safe to gate a campaign on (faults stay within the
#: model's assumptions, so every invariant must hold on every seed).
SCENARIOS: Dict[str, Callable[[random.Random, ScheduleContext], List[FaultEvent]]] = {
    "crash_storm": crash_storm,
    "role_targeted": role_targeted,
    "view_change_crossfire": view_change_crossfire,
    "repeated_leader_crash": repeated_leader_crash,
    "degraded_network": degraded_network,
    "hostile_network": hostile_network,
    "ring_crash": ring_crash,
}

#: Unsound scenarios: opt-in, violate a stated model assumption.
UNSOUND_SCENARIOS = {
    "fd_violation": fd_violation,
}

#: Scenarios that need a real (message-driven) failure detector: the
#: oracle is fed by the crash injector and cannot observe a partition,
#: so partition runs would neither exclude the minority nor drain.
_SCENARIO_DETECTOR = {
    "hostile_network": "heartbeat",
}

#: Default sim-campaign rotation.  ``hostile_network`` is opt-in there:
#: it targets the live runtime (heartbeat detector, long real-time
#: partitions) and is exercised by ``python -m repro chaos --live``.
#: ``ring_crash`` is opt-in too: it targets the multi-ring protocol
#: (``python -m repro chaos --shards S`` adds it).
DEFAULT_SCENARIOS: Tuple[str, ...] = tuple(
    name for name in SCENARIOS if name not in ("hostile_network", "ring_crash")
)

#: Rotation for multi-ring campaigns: the default battery plus the
#: whole-ring decapitation scenario.
MULTIRING_SCENARIOS: Tuple[str, ...] = DEFAULT_SCENARIOS + ("ring_crash",)


def generate_schedule(
    scenario: str, seed: int, ctx: ScheduleContext
) -> FaultSchedule:
    """Deterministically generate one schedule for ``(scenario, seed)``."""
    unsound = scenario in UNSOUND_SCENARIOS
    try:
        generator = UNSOUND_SCENARIOS[scenario] if unsound else SCENARIOS[scenario]
    except KeyError:
        known = sorted(SCENARIOS) + sorted(UNSOUND_SCENARIOS)
        raise ConfigurationError(
            f"unknown chaos scenario {scenario!r}; known: {', '.join(known)}"
        ) from None
    rng = random.Random(f"{scenario}:{seed}")
    events = generator(rng, ctx)
    detector = _SCENARIO_DETECTOR.get(scenario, "heartbeat" if unsound else "oracle")
    return FaultSchedule(
        scenario=scenario,
        seed=seed,
        n=ctx.n,
        t=ctx.t,
        events=tuple(events),
        detector=detector,
        fd_unsound=unsound,
    )
