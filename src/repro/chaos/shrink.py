"""Delta-debugging minimization of failing fault schedules.

A red campaign seed typically carries more faults than the bug needs.
:func:`shrink_schedule` reduces a failing schedule while the oracle
still fails, in two passes:

1. **Event reduction** (ddmin): try the empty schedule first (if the
   failure reproduces with no faults at all, the bug is fault-
   independent and the minimal reproducer says so), then repeatedly try
   dropping complement chunks of halving size, finally single events,
   until no single event can be removed.
2. **Time rounding**: snap each surviving event's time to the coarsest
   earlier round value (1, then 2, then 3 decimals) that keeps the
   failure, so reproducers read ``0.1`` instead of ``0.1037``.

The predicate re-runs a full simulation per candidate, so the search is
budgeted (``budget`` oracle runs); within budget the result is
1-minimal with respect to event removal.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable, List, Sequence

from repro.chaos.schedules import FaultEvent, FaultSchedule

#: Predicate: does this candidate schedule still fail the oracle?
FailurePredicate = Callable[[FaultSchedule], bool]


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def exhausted(self) -> bool:
        return self.spent >= self.limit


def shrink_schedule(
    schedule: FaultSchedule,
    still_fails: FailurePredicate,
    budget: int = 64,
) -> FaultSchedule:
    """Return a smaller schedule on which ``still_fails`` still holds.

    ``still_fails(schedule)`` is assumed true on entry (the caller just
    watched it fail); the original is returned unchanged if no smaller
    failing candidate is found within ``budget`` predicate evaluations.
    """
    tokens = _Budget(budget)

    def check(events: Sequence[FaultEvent]) -> bool:
        if tokens.exhausted():
            return False
        tokens.spent += 1
        return still_fails(replace(schedule, events=tuple(events)))

    events = _reduce_events(list(schedule.events), check)
    events = _round_times(events, check)
    return replace(schedule, events=tuple(events))


def _reduce_events(
    events: List[FaultEvent],
    check: Callable[[Sequence[FaultEvent]], bool],
) -> List[FaultEvent]:
    if events and check([]):
        # Failure independent of every fault: the minimal reproducer is
        # the bare workload (a protocol bug, not a recovery bug).
        return []
    granularity = 2
    while len(events) >= 2:
        chunk = math.ceil(len(events) / granularity)
        reduced = False
        for start in range(0, len(events), chunk):
            candidate = events[:start] + events[start + chunk:]
            if candidate and check(candidate):
                events = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk <= 1:
                break  # 1-minimal: no single event can be dropped
            granularity = min(len(events), granularity * 2)
    return events


def _round_times(
    events: List[FaultEvent],
    check: Callable[[Sequence[FaultEvent]], bool],
) -> List[FaultEvent]:
    for index, event in enumerate(events):
        for decimals in (1, 2, 3):
            scale = 10 ** decimals
            rounded = math.floor(event.time * scale) / scale
            if rounded >= event.time:
                continue  # already round (or would move later)
            candidate = list(events)
            candidate[index] = replace(event, time=rounded)
            if check(candidate):
                events = candidate
                break  # keep the coarsest rounding that still fails
    return events
