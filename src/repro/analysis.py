"""Closed-form performance predictions for the simulated cluster.

The discrete-event model is simple enough that its steady-state
behaviour has closed forms; this module states them, and the test suite
holds the simulator to them (``tests/integration/test_analysis.py``).
Having the formulas in code also makes the calibration story auditable:
DESIGN.md §2 claims the host model was fitted to two numbers (Table 1's
94 Mb/s and Figure 8's 79 Mb/s) — these functions are that fit.

All formulas concern the saturated steady state with uniform
``message_bytes`` payloads and FSR's defaults (piggy-backed acks, whose
per-byte cost is negligible at these sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fsr.messages import DATA_HEADER_BYTES, SEQ_EXTRA_BYTES
from repro.core.fsr.ring import Ring
from repro.errors import ConfigurationError
from repro.net.params import NetworkParams


def raw_goodput_bps(params: NetworkParams) -> float:
    """Table 1: point-to-point streaming goodput (framing-limited)."""
    return params.raw_goodput_bps()


def per_hop_period_s(
    params: NetworkParams, message_bytes: int, n: int = 5, t: int = 1
) -> float:
    """Steady-state time one node needs per relayed message.

    Each node processes every message exactly once — its own on the
    send-marshalling path, everyone else's on the receive path — and
    the NIC transfers overlap with processing, so the per-node period
    is the larger of the CPU pass and the wire time.

    When the CPU (not the wire) is the bottleneck the TX path has idle
    slots, so acknowledgments ship standalone rather than piggy-backed;
    a stable ack makes about ``n/2 + t`` hops per message, i.e. each
    node receives ``0.5 + t/n`` ack messages per delivered message,
    each costing the fixed per-message CPU charge.  (Wire-bound
    configurations piggy-back instead and the term vanishes.)
    """
    wire = params.wire_time(message_bytes + DATA_HEADER_BYTES + SEQ_EXTRA_BYTES)
    cpu = params.cpu_time(message_bytes)
    if cpu >= wire:
        cpu += params.cpu_per_message_s * (0.5 + t / n)
    return max(wire, cpu)


def fsr_max_throughput_bps(
    params: NetworkParams, message_bytes: int, n: int = 5, t: int = 1
) -> float:
    """Figure 8/9: FSR's saturated aggregate goodput.

    Essentially independent of ``n``, ``t``, and the number of senders:
    the ring hands each node each payload exactly once, so the per-node
    period is the system's period (``n``/``t`` only enter through the
    small standalone-ack correction in :func:`per_hop_period_s`).
    """
    if message_bytes <= 0:
        raise ConfigurationError("message_bytes must be positive")
    return message_bytes * 8.0 / per_hop_period_s(params, message_bytes, n, t)


def fsr_contention_free_latency_s(
    params: NetworkParams,
    n: int,
    t: int,
    sender_position: int,
    message_bytes: int,
    ack_bytes: int = 64,
) -> float:
    """Figure 6: latency of a single broadcast on an idle cluster.

    The payload makes ``n - 1`` store-and-forward hops, each costing a
    wire transfer, the cut-through first-frame delay, and one CPU pass;
    the remaining hops of the paper's ``L(i)`` round count are tiny ack
    messages.
    """
    ring = Ring(members=tuple(range(n)), t=min(t, n - 1))
    total_hops = ring.latency_rounds(sender_position)
    payload_hops = max(0, n - 1)
    ack_hops = max(0, total_hops - payload_hops)

    payload_wire = params.wire_time(message_bytes + DATA_HEADER_BYTES + SEQ_EXTRA_BYTES)
    payload_hop = (
        payload_wire
        + min(params.first_frame_delay(),
              params.propagation_delay_s + payload_wire)
        + params.cpu_time(message_bytes)
    )
    ack_wire = params.wire_time(ack_bytes)
    ack_hop = (
        ack_wire
        + min(params.first_frame_delay(),
              params.propagation_delay_s + ack_wire)
        + params.cpu_time(ack_bytes)
    )
    # The origin also pays one marshalling pass before the first hop.
    marshal = params.cpu_time(message_bytes)
    return marshal + payload_hops * payload_hop + ack_hops * ack_hop


def fixed_sequencer_max_throughput_bps(
    params: NetworkParams, n: int, message_bytes: int
) -> float:
    """§2.1: the sequencer's TX must carry every payload ``n - 1``
    times, so aggregate goodput collapses as ``raw / (n - 1)`` once
    that exceeds the per-host CPU budget."""
    if n < 2:
        raise ConfigurationError("needs at least two processes")
    wire = params.wire_time(message_bytes) * (n - 1)
    cpu = params.cpu_time(message_bytes)
    return message_bytes * 8.0 / max(wire, cpu)


def privilege_max_throughput_bps(
    params: NetworkParams, n: int, message_bytes: int
) -> float:
    """§2.3: only the token holder transmits, and each broadcast costs
    it ``n - 1`` unicasts — sender serialisation gives the same
    ``raw / (n - 1)`` collapse as the fixed sequencer."""
    return fixed_sequencer_max_throughput_bps(params, n, message_bytes)


@dataclass(frozen=True)
class ThroughputPrediction:
    """Bundle of predictions for one configuration (for reports)."""

    raw_mbps: float
    fsr_mbps: float
    fixed_sequencer_mbps: float

    @classmethod
    def for_paper_setup(
        cls, params: NetworkParams, n: int = 5, message_bytes: int = 100_000
    ) -> "ThroughputPrediction":
        return cls(
            raw_mbps=raw_goodput_bps(params) / 1e6,
            fsr_mbps=fsr_max_throughput_bps(params, message_bytes) / 1e6,
            fixed_sequencer_mbps=fixed_sequencer_max_throughput_bps(
                params, n, message_bytes
            ) / 1e6,
        )
