"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still distinguishing configuration mistakes from runtime protocol
violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An experiment, network, or protocol was configured inconsistently.

    Raised eagerly at construction time (never mid-simulation) so that a
    bad parameter sweep fails before burning simulation time.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an impossible internal state."""


class NetworkError(ReproError):
    """A message could not be transferred by the simulated network."""


class ProtocolError(ReproError):
    """A protocol automaton received input that violates its contract.

    Protocol errors indicate a bug in a protocol implementation (for
    example a sequence number regressing), never an expected runtime
    condition such as a crashed peer.
    """


class MembershipError(ReproError):
    """The group membership / virtual synchrony layer was misused."""


class CodecError(ReproError):
    """A wire frame could not be encoded or decoded.

    Raised by the live runtime's binary codec on unrepresentable field
    values at encode time, and on truncated, oversized, or malformed
    frames at decode time.  A decoder never raises anything else for bad
    input: transports treat :class:`CodecError` as "corrupt peer stream,
    drop the connection".
    """


class CheckFailure(ReproError):
    """A correctness checker found a violated broadcast property.

    The message carries a human-readable explanation naming the property
    (validity, agreement, integrity, total order, or uniformity) and the
    first offending message.
    """
