"""Shared value types used across the library.

The simulator, the protocols, and the checkers all exchange a small set
of identifiers and records.  Keeping them in one dependency-free module
avoids import cycles between subsystems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol, Tuple

#: Identifier of a process (a ring position in the initial view).
ProcessId = int

#: Simulated time, in seconds.
SimTime = float

#: Monotonically increasing view number assigned by the membership layer.
ViewId = int

#: Sequence number assigned by a sequencer to order deliveries.
SequenceNumber = int


class Timer(Protocol):
    """Cancellation handle returned by :meth:`Scheduler.schedule`."""

    def cancel(self) -> None:
        """Prevent the scheduled callback from running (idempotent)."""
        ...  # pragma: no cover - protocol definition


class Clock(Protocol):
    """A source of monotonically non-decreasing time in seconds.

    In the discrete-event world this is *simulated* time; in the live
    asyncio runtime it is the event loop's monotonic clock.  Protocol
    code must never care which one it is reading.
    """

    @property
    def now(self) -> "SimTime":
        """Current time in seconds."""
        ...  # pragma: no cover - protocol definition


class Scheduler(Clock, Protocol):
    """The runtime surface protocol automata are written against.

    This is the exact ``Simulator``-shaped subset the protocol stack
    (FSR, the membership layer) actually uses: read the clock, schedule
    a callback after a delay, cancel it.  Both the discrete-event
    :class:`~repro.sim.engine.Simulator` and the live
    :class:`~repro.live.scheduler.AsyncioScheduler` satisfy it, which is
    what lets the *same* protocol code run simulated and over real TCP.
    """

    def schedule(
        self, delay: "SimTime", callback: Callable[..., None], *args: Any
    ) -> Timer:
        """Run ``callback(*args)`` ``delay`` seconds from now."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True, order=True)
class MessageId:
    """Globally unique identifier of one TO-broadcast message.

    A message is identified by its origin process and a per-origin
    counter.  The identifier never changes, even when the message is
    re-broadcast during view-change recovery, which is what makes
    duplicate suppression after a crash possible.
    """

    origin: ProcessId
    local_seq: int

    def __str__(self) -> str:
        return f"m{self.origin}.{self.local_seq}"


@dataclass(frozen=True)
class Delivery:
    """One TO-delivery event observed at one process.

    Delivery logs — lists of :class:`Delivery` per process — are the
    common currency between the cluster harness, the metrics collector,
    and the correctness checkers.
    """

    #: Process at which the delivery happened.
    process: ProcessId
    #: Identity of the delivered message.
    message_id: MessageId
    #: Sequence number under which the message was delivered.
    sequence: SequenceNumber
    #: Simulated time of the delivery.
    time: SimTime
    #: Payload size in bytes (the payload itself is not retained).
    size_bytes: int = 0
    #: Inner ring instance that ordered this message (multi-ring only).
    ring: Optional[int] = None
    #: Global multiplexer slot that released it (multi-ring only).
    slot: Optional[int] = None

    def key(self) -> Tuple[ProcessId, int]:
        """Return the (origin, local_seq) pair identifying the message."""
        return (self.message_id.origin, self.message_id.local_seq)


@dataclass(frozen=True)
class BroadcastRecord:
    """One TO-broadcast request as submitted by the application."""

    message_id: MessageId
    size_bytes: int
    submit_time: SimTime


@dataclass
class ProcessSet:
    """An ordered set of live processes forming a ring.

    The order of ``members`` *is* the ring order: ``members[0]`` is the
    leader, ``members[1:t+1]`` are the backups.
    """

    members: Tuple[ProcessId, ...]

    def __post_init__(self) -> None:
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"duplicate members in process set: {self.members}")

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self.members

    def __iter__(self):
        return iter(self.members)

    def position_of(self, pid: ProcessId) -> int:
        """Return the ring position of ``pid`` (0 is the leader)."""
        return self.members.index(pid)

    def successor_of(self, pid: ProcessId) -> ProcessId:
        """Return the clockwise ring successor of ``pid``."""
        pos = self.position_of(pid)
        return self.members[(pos + 1) % len(self.members)]

    def predecessor_of(self, pid: ProcessId) -> ProcessId:
        """Return the clockwise ring predecessor of ``pid``."""
        pos = self.position_of(pid)
        return self.members[(pos - 1) % len(self.members)]

    def at_position(self, position: int) -> ProcessId:
        """Return the process at ``position`` (taken modulo the size)."""
        return self.members[position % len(self.members)]


@dataclass(frozen=True)
class View:
    """One installed membership view.

    Views are produced by the virtual synchrony layer.  A view is
    immutable; membership changes install a new view with ``view_id``
    incremented.
    """

    view_id: ViewId
    members: Tuple[ProcessId, ...]

    def __post_init__(self) -> None:
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"duplicate members in view: {self.members}")

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self.members

    def process_set(self) -> ProcessSet:
        """Return the ring-ordered process set of this view."""
        return ProcessSet(self.members)

    def leader(self) -> ProcessId:
        """Return the leader (ring position 0) of this view."""
        if not self.members:
            raise ValueError("empty view has no leader")
        return self.members[0]


@dataclass
class CrashEvent:
    """A scheduled crash of one process, used by the failure injector."""

    process: ProcessId
    time: SimTime
    #: Optional human-readable reason recorded in traces.
    reason: str = "injected"


@dataclass
class TimerHandle:
    """Opaque cancellation handle for a scheduled simulator event."""

    sequence: int
    cancelled: bool = False
    #: Link back to the scheduled heap entry; internal to the engine.
    _entry: Optional[object] = field(default=None, repr=False)

    def cancel(self) -> None:
        """Mark the timer cancelled; the engine skips cancelled entries."""
        self.cancelled = True
