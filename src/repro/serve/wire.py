"""Client-facing wire codec for the session service.

Mirrors the :mod:`repro.live.codec` idioms — 4-byte big-endian length
prefix, a hard frame-size cap, and :class:`~repro.errors.CodecError`
(and nothing else) on any malformed input — but carries JSON bodies:
client requests are low-rate relative to ring traffic, and a
self-describing body keeps the loadgen and external clients trivial.

Request fields::

    client   str   session identity (unique per client session)
    seq      int   per-session sequence number, starting at 1
    first_unacked int  lowest seq the client has not seen acked
                       (drives response-cache pruning server-side)
    barrier  int   highest seq the client has seen acked (session
                   monotonic reads: a local read must reflect at
                   least this much of the client's own session)
    op       str   inner state-machine operation
    args     list  operation arguments
    ordered  bool  force the request through the total order even if
                   a local read would be allowed (testing/linearisable)
    trace    bool  request tracing: the server emits request-lifecycle
                   events for this request and carries the flag into
                   the session envelope (repro.obs.reqtrace)

Response fields::

    seq      int   echoes the request
    ok       bool  False iff the state machine rejected the command
    result   any   operation result (None on error)
    error    str|None  deterministic rejection message
    served   str   "ordered" | "local" | "cached"
    leader   int|None  current leader hint for client failover
    view_id  int|None  server's installed view
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import CodecError

_LENGTH = struct.Struct("!I")

#: Bytes in the frame length prefix.
LENGTH_PREFIX_BYTES = 4

#: Hard cap on a request/response body; larger frames are rejected.
MAX_FRAME_BYTES = 1 << 20


@dataclass(frozen=True)
class Request:
    """One client session request."""

    client: str
    seq: int
    first_unacked: int
    barrier: int
    op: str
    args: Tuple[Any, ...] = ()
    ordered: bool = False
    trace: bool = False

    def to_dict(self) -> dict:
        body = {
            "client": self.client,
            "seq": self.seq,
            "first_unacked": self.first_unacked,
            "barrier": self.barrier,
            "op": self.op,
            "args": list(self.args),
            "ordered": self.ordered,
        }
        if self.trace:
            # Omitted when off so untraced requests stay byte-identical
            # to the pre-tracing wire format.
            body["trace"] = True
        return body

    @classmethod
    def from_dict(cls, body: Any) -> "Request":
        if not isinstance(body, dict):
            raise CodecError(f"request body must be an object, got {type(body).__name__}")
        try:
            client = body["client"]
            seq = body["seq"]
            first_unacked = body["first_unacked"]
            barrier = body["barrier"]
            op = body["op"]
            args = body["args"]
        except KeyError as exc:
            raise CodecError(f"request missing field {exc.args[0]!r}") from exc
        if not isinstance(client, str) or not client:
            raise CodecError(f"request client must be a non-empty str: {client!r}")
        for name, value in (("seq", seq), ("first_unacked", first_unacked), ("barrier", barrier)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise CodecError(f"request {name} must be an int: {value!r}")
        if seq < 1:
            raise CodecError(f"request seq must be >= 1: {seq}")
        if first_unacked < 1:
            raise CodecError(f"request first_unacked must be >= 1: {first_unacked}")
        if barrier < 0:
            raise CodecError(f"request barrier must be >= 0: {barrier}")
        if not isinstance(op, str):
            raise CodecError(f"request op must be a str: {op!r}")
        if not isinstance(args, list):
            raise CodecError(f"request args must be a list: {args!r}")
        ordered = body.get("ordered", False)
        if not isinstance(ordered, bool):
            raise CodecError(f"request ordered must be a bool: {ordered!r}")
        trace = body.get("trace", False)
        if not isinstance(trace, bool):
            raise CodecError(f"request trace must be a bool: {trace!r}")
        return cls(
            client=client,
            seq=seq,
            first_unacked=first_unacked,
            barrier=barrier,
            op=op,
            args=tuple(args),
            ordered=ordered,
            trace=trace,
        )


@dataclass(frozen=True)
class Response:
    """One server response, matched to its request by ``seq``."""

    seq: int
    ok: bool
    result: Any = None
    error: Optional[str] = None
    served: str = "ordered"
    leader: Optional[int] = None
    view_id: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ok": self.ok,
            "result": self.result,
            "error": self.error,
            "served": self.served,
            "leader": self.leader,
            "view_id": self.view_id,
        }

    @classmethod
    def from_dict(cls, body: Any) -> "Response":
        if not isinstance(body, dict):
            raise CodecError(f"response body must be an object, got {type(body).__name__}")
        try:
            seq = body["seq"]
            ok = body["ok"]
        except KeyError as exc:
            raise CodecError(f"response missing field {exc.args[0]!r}") from exc
        if not isinstance(seq, int) or isinstance(seq, bool):
            raise CodecError(f"response seq must be an int: {seq!r}")
        if not isinstance(ok, bool):
            raise CodecError(f"response ok must be a bool: {ok!r}")
        served = body.get("served", "ordered")
        if served not in ("ordered", "local", "cached"):
            raise CodecError(f"response served must be ordered|local|cached: {served!r}")
        return cls(
            seq=seq,
            ok=ok,
            result=body.get("result"),
            error=body.get("error"),
            served=served,
            leader=body.get("leader"),
            view_id=body.get("view_id"),
        )


def encode_frame(body: dict) -> bytes:
    """Length-prefix a JSON body for the wire."""
    try:
        encoded = json.dumps(body, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"unencodable frame body: {exc}") from exc
    if len(encoded) > MAX_FRAME_BYTES:
        raise CodecError(
            f"frame body of {len(encoded)} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    return _LENGTH.pack(len(encoded)) + encoded


def frame_length(buffer: bytes) -> Optional[int]:
    """Body length announced by a buffered prefix, or None if short."""
    if len(buffer) < LENGTH_PREFIX_BYTES:
        return None
    (length,) = _LENGTH.unpack_from(buffer)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"announced frame of {length} bytes exceeds cap {MAX_FRAME_BYTES}")
    return length


def decode_body(body: bytes) -> Any:
    """Decode a frame body (the bytes after the length prefix)."""
    try:
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CodecError(f"undecodable frame body: {exc}") from exc


def encode_request(request: Request) -> bytes:
    return encode_frame(request.to_dict())


def encode_response(response: Response) -> bytes:
    return encode_frame(response.to_dict())


def decode_request(body: bytes) -> Request:
    return Request.from_dict(decode_body(body))


def decode_response(body: bytes) -> Response:
    return Response.from_dict(decode_body(body))


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one length-prefixed frame body; None on clean EOF."""
    try:
        prefix = await reader.readexactly(LENGTH_PREFIX_BYTES)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    length = frame_length(prefix)
    assert length is not None
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise CodecError(
            f"connection closed mid-frame: got {len(exc.partial)} of {length} bytes"
        ) from exc
