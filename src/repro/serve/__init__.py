"""``repro.serve`` — a live client-serving KV service with exactly-once
sessions, layered on the replicated state machine and the live runtime.

The paper's FSR ring exists to power state-machine replication; this
package gives :mod:`repro.smr` its front door:

* :mod:`repro.serve.session` — the exactly-once session layer *inside*
  the replicated state machine: requests are identified by
  ``(client_id, seq_no)`` and deduplicated at apply time, so a retry
  after leader failover applies exactly once and re-sent acked requests
  are answered from a replicated response cache.
* :mod:`repro.serve.wire` — the client-facing length-prefixed codec.
* :mod:`repro.serve.lease` — the leader lease gating local reads.
* :mod:`repro.serve.server` — the per-node asyncio session server.
* :mod:`repro.serve.client` — a pipelining session client with retry
  and failover.
* :mod:`repro.serve.loadgen` — an open-loop load generator (Poisson
  arrivals, Zipf keys, many light sessions).
* :mod:`repro.serve.runner` — the ``python -m repro serve`` benchmark
  driver (latency-vs-offered-load curve, leader-kill point,
  exactly-once invariant battery, ``BENCH_serve.json``).
* :mod:`repro.serve.sim` — the same session layer on the discrete-event
  engine, for sim/live conformance tests.
"""

from repro.serve.lease import LeaderLease
from repro.serve.session import (
    LEASE_OP,
    SESSION_OP,
    SessionMachine,
    lease_command,
    session_command,
)

__all__ = [
    "LeaderLease",
    "LEASE_OP",
    "SESSION_OP",
    "SessionMachine",
    "lease_command",
    "session_command",
]
