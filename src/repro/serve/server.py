"""The per-node asyncio session server.

One :class:`SessionServer` runs inside every live node (when the
cluster is launched with ``serve=True``).  It accepts pipelined,
length-prefixed requests from client sessions and answers each one via
one of three paths:

* **cached** — the replicated dedup table already holds the outcome
  for ``(client, seq)``: answer from the cache, never re-execute.
* **local** — the request is read-only, this node holds the leader
  lease, and the replicated session table already reflects the
  client's ``barrier`` (session monotonic reads): serve from the local
  replica without a ring round-trip.
* **ordered** — everything else: wrap the request in a session
  envelope, TO-broadcast it, and respond when the total order applies
  it here.

Every *first* application of a session command is journalled (type
``"apply"``), so a SIGKILLed node still leaves its applied sequence
behind — the serve chaos battery replays those journals to prove no
acknowledged write was lost or doubly applied.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import CodecError, ReproError
from repro.live.scheduler import AsyncioScheduler
from repro.obs.reqtrace import RequestLog
from repro.obs.telemetry import Telemetry
from repro.serve.lease import LeaderLease
from repro.serve.session import SessionMachine, lease_command, session_command
from repro.serve.wire import (
    Request,
    Response,
    encode_response,
    read_frame,
    decode_request,
)
from repro.smr.machine import Command, ReplicatedStateMachine
from repro.types import ProcessId, View

logger = logging.getLogger(__name__)

#: Renewals per lease period; 3 keeps the lease alive across one lost
#: renewal without ever serving from an expired one.
_RENEWALS_PER_LEASE = 3


def snapshot_hash(snapshot: Any) -> str:
    """Stable short digest of a machine snapshot, for cross-replica
    state-equality checks in the invariant battery."""
    encoded = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:16]


class SessionServer:
    """Client-facing TCP front end of one replica."""

    def __init__(
        self,
        node_id: ProcessId,
        rsm: ReplicatedStateMachine,
        machine: SessionMachine,
        lease: LeaderLease,
        sched: AsyncioScheduler,
        telemetry: Optional[Telemetry] = None,
        journal: Optional[Callable[[Dict[str, Any]], None]] = None,
        reqlog: Optional[RequestLog] = None,
    ) -> None:
        self.node_id = node_id
        self.rsm = rsm
        self.machine = machine
        self.lease = lease
        self.sched = sched
        self.telemetry = telemetry or Telemetry()
        self._journal = journal
        # `is None`, not `or`: an enabled RequestLog with capacity=0 (the
        # live-node journal-sink shape) is falsy via __len__.
        self.reqlog = reqlog if reqlog is not None else RequestLog(enabled=False)
        #: MessageId -> (client, seq) of traced in-flight proposals, so
        #: the node's delivery hook can stamp the ``ordered`` boundary.
        self._proposed: Dict[Any, Tuple[str, int]] = {}
        #: Keys whose ``ordered`` stamp this node emitted: the same
        #: node emits ``applied``, so stage boundaries share one clock.
        self._ordered_keys: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._view: Optional[View] = None
        self._waiters: Dict[Tuple[str, int], List[asyncio.Future]] = {}
        self._conn_tasks: set = set()
        self._renew_handle: Optional[Any] = None
        self._closed = False
        self._requests = self.telemetry.counter("serve_requests")
        self._cached = self.telemetry.counter("serve_cached")
        self._local = self.telemetry.counter("serve_local_reads")
        self._ordered = self.telemetry.counter("serve_ordered")
        self._lease_rejects = self.telemetry.counter("serve_lease_rejects")
        self._barrier_rejects = self.telemetry.counter("serve_barrier_rejects")
        machine.on_session_apply(self._on_session_apply)
        machine.on_traced_apply(self._on_traced_apply)
        machine.on_lease_apply(self._on_lease_apply)

    # -- lifecycle -----------------------------------------------------
    async def start(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(self._handle_conn, host, port)
        self._renew_tick()
        logger.info("session server %d listening on %s:%d", self.node_id, host, port)

    async def close(self) -> None:
        self._closed = True
        if self._renew_handle is not None:
            self._renew_handle.cancel()
            self._renew_handle = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for waiters in self._waiters.values():
            for fut in waiters:
                if not fut.done():
                    fut.cancel()
        self._waiters.clear()

    # -- membership / lease -------------------------------------------
    def on_view(self, view: View) -> None:
        """Track a view install (called by the node's rewire hook)."""
        self._view = view
        was_leader = self.lease.leader == self.node_id
        logger.info(
            "server %d installed view %d (members=%s, leader=%s)",
            self.node_id, view.view_id, list(view.members), self.lease.leader,
        )
        self.lease.on_view(view)
        if self.lease.leader == self.node_id and not was_leader:
            # Don't submit from inside the membership install path; the
            # first renewal goes out on the next loop iteration.
            self.sched.loop.call_soon(self._renew_once)

    def _renew_once(self) -> None:
        if self._closed or self.lease.leader != self.node_id:
            return
        try:
            self.rsm.submit(lease_command(self.node_id, self.sched.now))
        except ReproError as exc:  # blocked mid view change: next tick retries
            logger.debug("lease renewal submit failed: %s", exc)

    def _renew_tick(self) -> None:
        if self._closed:
            return
        self._renew_once()
        self._renew_handle = self.sched.schedule(
            self.lease.lease_s / _RENEWALS_PER_LEASE, self._renew_tick
        )

    def _on_lease_apply(self, node_id: ProcessId, submit_time: float) -> None:
        self.lease.note_renewal(node_id, submit_time)

    # -- request tracing -----------------------------------------------
    def _trace(
        self,
        kind: str,
        client: str,
        seq: int,
        origin: Optional[int] = None,
        local_seq: Optional[int] = None,
    ) -> None:
        self.reqlog.emit(
            self.sched.now, self.node_id, kind, client, seq,
            origin=origin, local_seq=local_seq,
        )

    def note_ordered(self, message_id: Any) -> None:
        """Stamp the ``ordered`` boundary for a traced proposal.

        Called by the node's delivery hook just before the RSM applies
        a serve payload: the time the total order handed the envelope
        back is the replication/apply stage boundary.
        """
        key = self._proposed.pop(message_id, None)
        if key is not None:
            self._ordered_keys.add(key)
            self._trace(
                "ordered", key[0], key[1],
                origin=getattr(message_id, "origin", None),
                local_seq=getattr(message_id, "local_seq", None),
            )

    def _on_traced_apply(
        self, client_id: str, seq_no: int, applied_index: int
    ) -> None:
        key = (client_id, seq_no)
        if key in self._ordered_keys:
            self._ordered_keys.discard(key)
            self._trace("applied", client_id, seq_no)

    # -- apply side ----------------------------------------------------
    def _on_session_apply(
        self,
        client_id: str,
        seq_no: int,
        op: str,
        args: Tuple[Any, ...],
        outcome: Tuple[str, Any],
        applied_index: int,
    ) -> None:
        if self._journal is not None:
            self._journal({
                "type": "apply",
                "client": client_id,
                "seq": seq_no,
                "op": op,
                "status": outcome[0],
                "index": applied_index,
                "time": self.sched.now,
            })
        waiters = self._waiters.pop((client_id, seq_no), None)
        if waiters:
            for fut in waiters:
                if not fut.done():
                    fut.set_result(outcome)

    # -- request handling ----------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        pending: set = set()
        try:
            while True:
                body = await read_frame(reader)
                if body is None:
                    break
                try:
                    request = decode_request(body)
                except CodecError as exc:
                    logger.warning("bad request frame: %s", exc)
                    break
                if self.reqlog.enabled and request.trace:
                    self._trace("recv", request.client, request.seq)
                sub = asyncio.ensure_future(
                    self._serve_one(request, writer, write_lock)
                )
                pending.add(sub)
                sub.add_done_callback(pending.discard)
        except (CodecError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for sub in list(pending):
                sub.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if task is not None:
                self._conn_tasks.discard(task)

    async def _serve_one(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            response = await self._dispatch(request)
        except asyncio.CancelledError:
            return
        except ReproError as exc:
            # Transport-level failure (e.g. broadcast rejected during a
            # view change): tell the client to retry, possibly elsewhere.
            logger.debug(
                "server %d: %s#%d unavailable: %s",
                self.node_id, request.client, request.seq, exc,
            )
            response = self._response(
                request, ok=False, error=f"unavailable: {exc}", served="ordered"
            )
        async with write_lock:
            try:
                writer.write(encode_response(response))
                await writer.drain()
                if self.reqlog.enabled and request.trace:
                    self._trace("responded", request.client, request.seq)
            except (ConnectionError, OSError):
                pass  # client gone; it will retry on a new connection

    def _response(
        self,
        request: Request,
        ok: bool,
        result: Any = None,
        error: Optional[str] = None,
        served: str = "ordered",
    ) -> Response:
        view = self._view
        return Response(
            seq=request.seq,
            ok=ok,
            result=result,
            error=error,
            served=served,
            leader=self.lease.leader,
            view_id=view.view_id if view is not None else self.lease.view_id,
        )

    def _from_outcome(
        self, request: Request, outcome: Tuple[str, Any], served: str
    ) -> Response:
        status, value = outcome
        if status == "ok":
            return self._response(request, ok=True, result=value, served=served)
        return self._response(request, ok=False, error=value, served=served)

    async def _dispatch(self, request: Request) -> Response:
        self._requests.inc()
        client, seq = request.client, request.seq
        traced = self.reqlog.enabled and request.trace
        cached = self.machine.lookup(client, seq)
        if cached is not None:
            self._cached.inc()
            if traced:
                self._trace("cached", client, seq)
            return self._from_outcome(request, cached, served="cached")
        read_only_ops = getattr(self.machine.inner, "READ_ONLY_OPS", frozenset())
        if request.op in read_only_ops and not request.ordered:
            if not self.lease.holds():
                self._lease_rejects.inc()
                if traced:
                    self._trace("ordered_fallback", client, seq)
            elif self.machine.session_applied_seq(client) < request.barrier:
                # Session monotonic reads: our replica has not yet
                # applied everything this client saw acked — an ordered
                # read is the only safe answer.
                self._barrier_rejects.inc()
                if traced:
                    self._trace("ordered_fallback", client, seq)
            else:
                self._local.inc()
                if traced:
                    self._trace("local_read", client, seq)
                result = self.machine.local_read(
                    Command(request.op, request.args)
                )
                return self._response(request, ok=True, result=result, served="local")
        # Ordered path: through the total order, exactly once.
        fut: asyncio.Future = self.sched.loop.create_future()
        key = (client, seq)
        self._waiters.setdefault(key, []).append(fut)
        try:
            if traced:
                self._trace("enqueued", client, seq)
            message_id = self.rsm.submit(session_command(
                client, seq, request.first_unacked, request.op, request.args,
                trace=request.trace,
            ))
            if traced:
                # The submit return is the broadcast MessageId — the
                # join key onto the message-lifecycle spans.  Test
                # harness RSMs may return None (apply-on-submit).
                if message_id is not None:
                    self._proposed[message_id] = key
                self._trace(
                    "proposed", client, seq,
                    origin=getattr(message_id, "origin", None),
                    local_seq=getattr(message_id, "local_seq", None),
                )
            self._ordered.inc()
            outcome = await fut
        finally:
            waiters = self._waiters.get(key)
            if waiters is not None:
                if fut in waiters:
                    waiters.remove(fut)
                if not waiters:
                    del self._waiters[key]
        return self._from_outcome(request, outcome, served="ordered")

    # -- reporting -----------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """JSON-able serving summary for the node's result record."""
        return {
            "requests": self._requests.value,
            "cached": self._cached.value,
            "local_reads": self._local.value,
            "ordered": self._ordered.value,
            "lease_rejects": self._lease_rejects.value,
            "barrier_rejects": self._barrier_rejects.value,
            "dedup_hits": self.machine.dedup_hits,
            "session_applies": self.machine.session_applies,
            "lease_applies": self.machine.lease_applies,
            "sessions": len(self.machine.sessions),
            "applied_index": self.machine.applied_index,
            "snapshot_hash": snapshot_hash(self.machine.snapshot()),
        }
