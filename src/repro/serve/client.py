"""Pipelining session client with retry and failover.

One :class:`SessionClient` is one session: a ``client_id`` plus a
monotonically increasing per-request ``seq``.  Requests may be
pipelined (``submit`` returns a future immediately); responses are
matched back by ``seq``.  When a connection dies — or a request sits
unanswered past ``retry_timeout_s`` — the client rotates to the next
server address, reconnects, and **resends every pending request in seq
order**.  The server-side dedup table makes those resends safe: a
request that was already applied is answered from the replicated cache
("cached"), never executed twice.

Session-read metadata maintained here:

* ``first_unacked`` — lowest seq not yet acked; sent on every request
  so servers can prune their response caches (and their floor).
* ``barrier`` — highest seq seen acked; sent on reads so a lease
  holder only serves locally once its replica reflects this client's
  own writes (session monotonic reads).
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CodecError, NetworkError
from repro.obs.reqtrace import CLIENT_NODE, RequestLog
from repro.serve.wire import (
    Request,
    Response,
    encode_request,
    read_frame,
    decode_response,
)

logger = logging.getLogger(__name__)

#: How often the failover monitor checks for a stuck oldest request.
_MONITOR_S = 0.05


class SessionClient:
    """One exactly-once client session over the serve cluster."""

    def __init__(
        self,
        client_id: str,
        addresses: List[Tuple[str, int]],
        *,
        retry_timeout_s: float = 1.0,
        connect_timeout_s: float = 2.0,
        reconnect_backoff_s: float = 0.05,
        prefer: int = 0,
        ordered_reads: bool = False,
        reqlog: Optional[RequestLog] = None,
    ) -> None:
        if not addresses:
            raise NetworkError("session client needs at least one server address")
        self.client_id = client_id
        self.addresses = list(addresses)
        self.retry_timeout_s = retry_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.reconnect_backoff_s = reconnect_backoff_s
        self.ordered_reads = ordered_reads
        #: Request tracing: when set (and enabled), requests go out with
        #: the wire ``trace`` flag and this log records ``send`` /
        #: ``acked`` stamps plus ``failover_resend`` markers.
        # `is None`, not `or`: an enabled-but-empty RequestLog is falsy
        # (it has __len__), and must not be swapped for a disabled one.
        self.reqlog = reqlog if reqlog is not None else RequestLog(enabled=False)
        self._addr_index = prefer % len(addresses)
        self._next_seq = 1
        self._barrier = 0
        #: seq -> (request dict sans cursors, future, submit walltime)
        self._pending: "Dict[int, _PendingRequest]" = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._monitor_task: Optional[asyncio.Task] = None
        self._conn_lock = asyncio.Lock()
        self._closed = False
        # -- client-visible session metrics --
        self.acks = 0
        self.retries = 0
        self.reconnects = 0
        self.cached_responses = 0
        self.local_reads = 0
        self.errors = 0
        #: (seq, op, args) of every acknowledged mutating request, in
        #: ack order — the chaos battery's ground truth.
        self.acked_writes: List[Tuple[int, str, Tuple[Any, ...]]] = []

    # -- public API ----------------------------------------------------
    @property
    def barrier(self) -> int:
        return self._barrier

    @property
    def first_unacked(self) -> int:
        return min(self._pending, default=self._next_seq)

    async def connect(self) -> None:
        await self._ensure_connected()
        if self._monitor_task is None:
            self._monitor_task = asyncio.ensure_future(self._monitor())

    def submit(self, op: str, *args: Any, ordered: bool = False) -> "asyncio.Future[Response]":
        """Pipeline a request; the future resolves with its Response."""
        if self._closed:
            raise NetworkError("session client is closed")
        seq = self._next_seq
        self._next_seq += 1
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        entry = _PendingRequest(
            seq=seq,
            op=op,
            args=tuple(args),
            ordered=ordered or (self.ordered_reads and op == "get"),
            future=fut,
            submit_time=asyncio.get_running_loop().time(),
        )
        self._pending[seq] = entry
        if self.reqlog.enabled:
            # Stamp at submit (not the wire write) so the trace shares
            # the load generator's latency clock start.
            self.reqlog.emit(
                entry.submit_time, CLIENT_NODE, "send", self.client_id, seq
            )
        self._send(entry)
        return fut

    async def request(self, op: str, *args: Any, ordered: bool = False) -> Response:
        """Submit and await one request."""
        return await self.submit(op, *args, ordered=ordered)

    async def resend(self, seq: Optional[int] = None) -> None:
        """Force a duplicate send of a request (testing hook).

        With ``seq`` of an *acked* request, fabricates a fresh duplicate
        on the wire and awaits its (cached) response — used by the
        conformance and dedup tests to prove re-sent acked requests are
        answered from the cache without a second application.
        """
        if seq is None:
            for entry in sorted(self._pending.values(), key=lambda e: e.seq):
                self.retries += 1
                self._send(entry)
            return
        entry = self._pending.get(seq)
        if entry is not None:
            self.retries += 1
            self._send(entry)
            return
        raise NetworkError(f"seq {seq} is not pending; use duplicate() for acked seqs")

    async def duplicate(self, seq: int, op: str, *args: Any) -> Response:
        """Re-send an already-acked request verbatim and await the reply."""
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        entry = _PendingRequest(
            seq=seq,
            op=op,
            args=tuple(args),
            ordered=False,
            future=fut,
            submit_time=asyncio.get_running_loop().time(),
            count_ack=False,
        )
        self._pending[seq] = entry
        self.retries += 1
        self._send(entry)
        return await fut

    async def close(self) -> None:
        self._closed = True
        for task in (self._monitor_task, self._reader_task):
            if task is not None:
                task.cancel()
        for task in (self._monitor_task, self._reader_task):
            if task is not None:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        self._monitor_task = None
        self._reader_task = None
        await self._teardown_connection()
        for entry in self._pending.values():
            if not entry.future.done():
                entry.future.cancel()
        self._pending.clear()

    # -- connection management ----------------------------------------
    async def _ensure_connected(self) -> None:
        async with self._conn_lock:
            if self._writer is not None or self._closed:
                return
            last_error: Optional[Exception] = None
            for attempt in range(3 * len(self.addresses)):
                host, port = self.addresses[self._addr_index]
                try:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(host, port),
                        self.connect_timeout_s,
                    )
                    self._reader = reader
                    self._writer = writer
                    if self._reader_task is not None:
                        self._reader_task.cancel()
                    self._reader_task = asyncio.ensure_future(self._read_loop(reader))
                    return
                except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                    last_error = exc
                    self._addr_index = (self._addr_index + 1) % len(self.addresses)
                    await asyncio.sleep(self.reconnect_backoff_s)
            raise NetworkError(
                f"client {self.client_id}: no server reachable: {last_error}"
            )

    async def _teardown_connection(self) -> None:
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _failover(self) -> None:
        """Drop the connection, rotate servers, reconnect, resend."""
        if self._closed:
            return
        self.reconnects += 1
        await self._teardown_connection()
        self._addr_index = (self._addr_index + 1) % len(self.addresses)
        logger.info(
            "client %s: failing over to %s:%d (%d pending)",
            self.client_id, *self.addresses[self._addr_index],
            len(self._pending),
        )
        try:
            await self._ensure_connected()
        except NetworkError as exc:
            logger.warning("client %s failover failed: %s", self.client_id, exc)
            return
        self._resend_pending()

    def _resend_pending(self) -> None:
        for entry in sorted(self._pending.values(), key=lambda e: e.seq):
            self.retries += 1
            if self.reqlog.enabled:
                self.reqlog.emit(
                    asyncio.get_running_loop().time(), CLIENT_NODE,
                    "failover_resend", self.client_id, entry.seq,
                )
            self._send(entry)

    def _send(self, entry: "_PendingRequest") -> None:
        writer = self._writer
        if writer is None:
            return  # failover in progress; _resend_pending will retry
        request = Request(
            client=self.client_id,
            seq=entry.seq,
            first_unacked=self.first_unacked,
            barrier=self._barrier,
            op=entry.op,
            args=entry.args,
            ordered=entry.ordered,
            trace=self.reqlog.enabled,
        )
        try:
            writer.write(encode_request(request))
        except (ConnectionError, OSError):
            pass  # reader task / monitor will notice and fail over

    # -- background tasks ----------------------------------------------
    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                body = await read_frame(reader)
                if body is None:
                    break
                try:
                    response = decode_response(body)
                except CodecError as exc:
                    logger.warning("client %s: bad response: %s", self.client_id, exc)
                    break
                self._on_response(response)
        except asyncio.CancelledError:
            return
        except (ConnectionError, OSError):
            pass
        if not self._closed and reader is self._reader:
            asyncio.ensure_future(self._failover())

    def _on_response(self, response: Response) -> None:
        entry = self._pending.pop(response.seq, None)
        if entry is None:
            return  # duplicate ack from a resend; already settled
        if response.served == "cached":
            self.cached_responses += 1
        elif response.served == "local":
            self.local_reads += 1
        if not response.ok and response.error and response.error.startswith("unavailable:"):
            # Transport-level rejection, not a deterministic outcome:
            # leave it pending and let the monitor retry elsewhere.
            self._pending[response.seq] = entry
            asyncio.ensure_future(self._failover())
            return
        if entry.count_ack:
            self.acks += 1
            self._barrier = max(self._barrier, response.seq)
            if not response.ok:
                self.errors += 1
            elif entry.op not in ("get",):
                self.acked_writes.append((entry.seq, entry.op, entry.args))
        if self.reqlog.enabled:
            self.reqlog.emit(
                asyncio.get_running_loop().time(), CLIENT_NODE,
                "acked", self.client_id, response.seq,
            )
        if not entry.future.done():
            entry.future.set_result(response)

    async def _monitor(self) -> None:
        """Fail over when the oldest pending request is stuck."""
        try:
            while not self._closed:
                await asyncio.sleep(_MONITOR_S)
                if not self._pending:
                    continue
                now = asyncio.get_running_loop().time()
                oldest = min(self._pending.values(), key=lambda e: e.sent_or_submit())
                if now - oldest.sent_or_submit() >= self.retry_timeout_s:
                    oldest.last_resend = now
                    await self._failover()
        except asyncio.CancelledError:
            return


class _PendingRequest:
    """One in-flight request, retained until its ack arrives."""

    __slots__ = ("seq", "op", "args", "ordered", "future", "submit_time",
                 "last_resend", "count_ack")

    def __init__(
        self,
        seq: int,
        op: str,
        args: Tuple[Any, ...],
        ordered: bool,
        future: asyncio.Future,
        submit_time: float,
        count_ack: bool = True,
    ) -> None:
        self.seq = seq
        self.op = op
        self.args = args
        self.ordered = ordered
        self.future = future
        self.submit_time = submit_time
        self.last_resend: Optional[float] = None
        self.count_ack = count_ack

    def sent_or_submit(self) -> float:
        return self.last_resend if self.last_resend is not None else self.submit_time
