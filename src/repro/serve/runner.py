"""The ``python -m repro serve`` benchmark driver.

Launches a serve-mode live cluster (every node runs a
:class:`~repro.serve.server.SessionServer`, no internal senders),
drives the open-loop load generator against it at a sweep of offered
rates, and emits ``BENCH_serve.json`` with the client-visible
latency-vs-offered-load curve — including a kill-the-leader-mid-load
point whose results are gated on the exactly-once invariant battery:

* every *acknowledged* mutating request was applied on every survivor
  exactly once (no lost acked writes, no double applies);
* per client, first applications happen in strictly increasing seq
  order on every node;
* all survivors applied the *identical* command sequence, and a killed
  node's journal is a prefix of it (uniform total order);
* every survivor's state-machine snapshot hashes identically.

Timebase: clients, the launcher's kill stamp, and every node's journal
all read ``CLOCK_MONOTONIC`` (system-wide on Linux), so the
client-visible outage around a SIGKILL is measured on one axis.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.live.runner import LiveCluster, LiveClusterSpec, load_journal_record
from repro.obs.journal import (
    Timeline,
    merge_span_journals,
    rebase_request,
)
from repro.obs.reqtrace import (
    RequestBreakdown,
    crosscheck_request_latency,
    request_breakdown,
    request_sort_key,
)
from repro.serve.loadgen import LoadConfig, LoadStats, run_load
from repro.types import ProcessId

#: Slack past detection + view change before declaring an outage stuck.
_START_TIMEOUT_S = 30.0
#: How long terminated survivors get to write their records.
_SHUTDOWN_GRACE_S = 15.0
#: How long survivors get to finish applying acked writes before
#: SIGTERM (see :func:`_await_drain`); generous vs the ~ms it takes.
_DRAIN_TIMEOUT_S = 5.0
#: Ring-quiet window the drain requires on top of write coverage.
_DRAIN_SETTLE_S = 0.2
#: Fraction of the load window after which the leader is killed.
_KILL_AT_FRACTION = 0.35


@dataclass
class ServeSpec:
    """One serve benchmark configuration."""

    processes: int = 3
    t: int = 1
    host: str = "127.0.0.1"
    lease_s: float = 0.8
    heartbeat_interval_s: float = 0.1
    heartbeat_timeout_s: float = 1.0
    #: Offered-load sweep, requests/second (the curve's x axis).
    rates: List[float] = field(default_factory=lambda: [100.0, 300.0, 600.0])
    #: Also run a kill-the-leader point at ``kill_rate``.
    kill_leader: bool = True
    #: Offered rate for the leader-kill point; None uses the middle of
    #: the sweep.
    kill_rate: Optional[float] = None
    #: Load window per point.
    duration_s: float = 4.0
    sessions: int = 20
    read_fraction: float = 0.5
    keys: int = 100
    zipf_s: float = 1.1
    value_bytes: int = 64
    #: Client retry/failover timeout; must exceed one ring round trip
    #: and stay below detection + view change so retries drive failover.
    retry_timeout_s: float = 1.0
    seed: int = 0
    #: End-to-end request tracing (``repro.obs.reqtrace``): clients set
    #: the wire flag, servers journal lifecycle events, and the runner
    #: merges both into a queue/replication/apply/respond breakdown
    #: hard-cross-checked against the load generator's measured mean.
    trace_requests: bool = False
    #: Live metrics plane: ``None`` disables; ``0`` gives every node an
    #: ephemeral ``/metrics`` + ``/healthz`` port; a positive value is a
    #: base port (node ``i`` listens on ``metrics_port + i``).  The
    #: runner scrapes mid-load and gates counter-name parity with the
    #: post-mortem telemetry snapshot.
    metrics_port: Optional[int] = None
    #: Directory for per-node flamegraph-collapsed CPU profiles.
    profile_dir: Optional[str] = None
    #: Node process logging level ("INFO", "DEBUG", ...).
    log_level: Optional[str] = None

    def live_spec(self) -> LiveClusterSpec:
        return LiveClusterSpec(
            processes=self.processes,
            senders=0,
            t=self.t,
            host=self.host,
            duration_s=self.duration_s,
            max_run_s=self.duration_s + 120.0,
            sim_compare=False,
            view_changes=True,
            heartbeat_interval_s=self.heartbeat_interval_s,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            run_seed=self.seed,
            serve=True,
            lease_s=self.lease_s,
            # Trace events ride the span journals, so tracing implies
            # span collection on every node.
            spans=self.trace_requests,
            trace_requests=self.trace_requests,
            metrics=self.metrics_port is not None,
            metrics_base_port=self.metrics_port or 0,
            profile_dir=self.profile_dir,
            log_level=self.log_level,
        )


@dataclass
class ServePoint:
    """Result of one offered-load point."""

    rate_rps: float
    stats: LoadStats
    killed: Optional[ProcessId] = None
    kill_time: Optional[float] = None
    #: Worst client-visible ack gap in the recovery window around the
    #: kill (the serve analogue of ``recovery_outage_from_spans``).
    outage_s: Optional[float] = None
    violations: List[str] = field(default_factory=list)
    node_serve_stats: Dict[ProcessId, Dict[str, Any]] = field(default_factory=dict)
    #: Request-stage breakdown over the merged client + node trace
    #: events (``trace_requests`` runs); cross-checked vs the loadgen.
    request_breakdown: Optional[RequestBreakdown] = None
    #: Merged span/trace timeline (``trace_requests`` runs).
    timeline: Optional[Timeline] = None
    #: Mid-load ``/metrics`` scrape text per node (``metrics`` runs).
    live_scrapes: Dict[ProcessId, str] = field(default_factory=dict)
    #: Live-scrape counter names == post-mortem snapshot names; ``None``
    #: when no scrape happened.
    scrape_parity_ok: Optional[bool] = None

    def to_dict(self) -> Dict[str, Any]:
        duration = None
        if self.stats.ack_times:
            duration = max(self.stats.ack_times) - min(self.stats.ack_times)
        achieved = (
            self.stats.completed / duration if duration else None
        )
        return {
            "offered_rps": self.rate_rps,
            "achieved_rps": achieved,
            "killed": self.killed,
            "outage_s": self.outage_s,
            "violations": self.violations,
            "load": self.stats.to_dict(),
            "node_serve_stats": {
                str(pid): stats for pid, stats in self.node_serve_stats.items()
            },
            "request_breakdown": (
                self.request_breakdown.to_dict()
                if self.request_breakdown is not None
                else None
            ),
            "scrape_parity_ok": self.scrape_parity_ok,
        }


def load_applied_log(path: str) -> List[Dict[str, Any]]:
    """Extract the session ``apply`` entries from a node journal.

    Tolerates a torn final line, like
    :func:`~repro.live.runner.load_journal_record`.
    """
    applied: List[Dict[str, Any]] = []
    try:
        with open(path) as fh:
            for line in fh:
                try:
                    event = json.loads(line)
                except ValueError:
                    break  # torn tail line
                if event.get("type") == "apply":
                    applied.append(event)
    except OSError:
        return []
    return applied


def verify_serve_run(
    stats: LoadStats,
    applied_by_node: Dict[ProcessId, List[Dict[str, Any]]],
    survivors: List[ProcessId],
    killed: Optional[ProcessId] = None,
    snapshot_hashes: Optional[Dict[ProcessId, str]] = None,
) -> List[str]:
    """The exactly-once invariant battery; returns violations (empty = green)."""
    violations: List[str] = []

    # 1. Acked writes exist exactly once on every survivor.
    for pid in survivors:
        counts: Dict[Tuple[str, int], int] = {}
        for event in applied_by_node.get(pid, []):
            key = (event["client"], event["seq"])
            counts[key] = counts.get(key, 0) + 1
        for key, count in counts.items():
            if count > 1:
                violations.append(
                    f"node {pid}: {key} applied {count} times (double apply)"
                )
        for client, seq, op, _args in stats.acked_writes:
            if counts.get((client, seq), 0) != 1:
                violations.append(
                    f"node {pid}: acked write ({client!r}, {seq}) applied "
                    f"{counts.get((client, seq), 0)} times (lost or duplicated)"
                )

    # 2. Per client, first applications in strictly increasing seq order.
    for pid, applied in applied_by_node.items():
        last_seq: Dict[str, int] = {}
        for event in applied:
            client, seq = event["client"], event["seq"]
            if seq <= last_seq.get(client, 0):
                violations.append(
                    f"node {pid}: client {client!r} seq {seq} applied after "
                    f"{last_seq[client]} (session order violated)"
                )
            last_seq[client] = max(last_seq.get(client, 0), seq)

    # 3. Identical applied sequence on survivors; killed node a prefix.
    sequences = {
        pid: [(e["client"], e["seq"]) for e in applied_by_node.get(pid, [])]
        for pid in applied_by_node
    }
    survivor_seqs = [sequences[pid] for pid in survivors if pid in sequences]
    if survivor_seqs:
        reference = survivor_seqs[0]
        for pid in survivors[1:]:
            if sequences.get(pid, []) != reference:
                violations.append(
                    f"node {pid}: applied sequence diverges from node "
                    f"{survivors[0]} (total order violated)"
                )
        if killed is not None and killed in sequences:
            killed_seq = sequences[killed]
            if killed_seq != reference[: len(killed_seq)]:
                violations.append(
                    f"killed node {killed}: applied sequence is not a prefix "
                    "of the survivors' (uniformity violated)"
                )

    # 4. Survivor state snapshots identical.
    if snapshot_hashes:
        digests = {snapshot_hashes[pid] for pid in survivors if pid in snapshot_hashes}
        if len(digests) > 1:
            violations.append(
                f"survivor snapshot hashes diverge: {sorted(digests)}"
            )
    return violations


def client_outage(
    ack_times: List[float], kill_time: float, window_s: float
) -> Optional[float]:
    """Worst client-visible ack gap caused by a kill.

    The serve analogue of
    :func:`repro.obs.analyze.recovery_outage_from_spans`: the largest
    gap between consecutive acks whose interval intersects
    ``[kill_time, kill_time + window_s]`` — in-flight responses
    draining just after the SIGKILL do not mask the view-change stall,
    and trailing low-rate drain gaps long after recovery do not
    inflate it.  ``None`` when no ack lands in the window.
    """
    window_end = kill_time + window_s
    stamps = sorted(t for t in ack_times if t <= window_end)
    if not stamps or stamps[-1] < kill_time:
        return None
    worst: Optional[float] = None
    previous = stamps[0]
    for stamp in stamps[1:]:
        if stamp >= kill_time:  # gap [previous, stamp] touches the window
            gap = stamp - previous
            worst = gap if worst is None else max(worst, gap)
        previous = stamp
    if worst is None:
        # Single ack in the window: measure from the kill instant.
        return max(0.0, min(t for t in stamps if t >= kill_time) - kill_time)
    return worst


def _scrape_parity(
    scrapes: Dict[ProcessId, str],
    records: Dict[ProcessId, Dict[str, Any]],
) -> Optional[bool]:
    """Counter-name parity: live mid-run scrape vs post-mortem snapshot.

    Every counter the live plane served mid-run must appear in the
    node's final snapshot — otherwise dashboards built on the live
    endpoint name series the record path cannot explain.  The check is
    a subset, not equality: counters register lazily on first use
    (``fd_suspicions``, ``membership_flushes``), so a kill-point
    snapshot legitimately grows names *after* the scrape.  Gauges are
    excluded for the same reason in the other direction.
    """
    if not scrapes:
        return None
    from repro.obs.httpexport import prometheus_metric_names
    from repro.obs.telemetry import render_prometheus

    ok = True
    for pid, text in scrapes.items():
        record = records.get(pid)
        if record is None:
            continue
        post = render_prometheus({pid: record["telemetry"]})
        if not prometheus_metric_names(text) <= prometheus_metric_names(post):
            ok = False
    return ok


def _await_starts(cluster: LiveCluster, timeout_s: float) -> None:
    """Block until every node's journal reports its start barrier."""
    deadline = time.monotonic() + timeout_s
    started: set = set()
    while len(started) < len(cluster.members):
        for pid, proc in cluster.procs.items():
            if pid not in started and proc.poll() is not None:
                raise NetworkError(
                    f"serve node {pid} exited {proc.returncode} before its "
                    "start barrier"
                )
        for pid, path in cluster.journal_paths.items():
            if pid in started:
                continue
            if load_journal_record(pid, path) is not None:
                started.add(pid)
        if len(started) == len(cluster.members):
            return
        if time.monotonic() > deadline:
            missing = sorted(set(cluster.members) - started)
            raise NetworkError(
                f"serve nodes {missing} never reached the start barrier "
                f"within {timeout_s:.0f}s"
            )
        time.sleep(0.05)


def _await_drain(
    cluster: LiveCluster,
    acked_writes: List[Tuple[str, int, str, Any]],
    killed: Optional[ProcessId],
    timeout_s: float,
) -> None:
    """Block until every survivor's journal holds every acked write.

    The launcher owns termination in serve mode, and clients are
    satisfied as soon as *one* replica applies and responds — the
    delivery to a trailing replica can still be on the ring at that
    moment.  SIGTERMing on client completion therefore raced the final
    applies and flaked the uniformity battery (an acked write "applied
    0 times" on the node that lost the race).  Journals are
    append-and-flush per apply, so polling them is enough; on timeout
    we proceed and let the battery report what's genuinely missing.
    """
    acked = {(client, seq) for client, seq, _op, _args in acked_writes}
    survivors = [pid for pid in cluster.members if pid != killed]
    deadline = time.monotonic() + timeout_s
    last_counts: Optional[List[int]] = None
    settled_since = time.monotonic()
    while time.monotonic() < deadline:
        applied_sets = [
            {
                (entry["client"], entry["seq"])
                for entry in load_applied_log(cluster.journal_paths[pid])
            }
            for pid in survivors
        ]
        counts = [len(s) for s in applied_sets]
        if counts != last_counts:
            last_counts = counts
            settled_since = time.monotonic()
        drained = (
            all(acked <= applied for applied in applied_sets)
            # Unacked commands (ordered reads, writes whose client gave
            # up) also mutate the session tables: survivors must reach
            # the *same* applied set and sit still for a beat, or a
            # straggling apply between our check and the SIGTERM still
            # diverges the snapshot hashes.
            and len(set(counts)) == 1
            and time.monotonic() - settled_since >= _DRAIN_SETTLE_S
        )
        if drained:
            return
        time.sleep(0.02)


def run_serve_point(
    spec: ServeSpec, rate_rps: float, kill_leader: bool = False
) -> ServePoint:
    """Launch a serve cluster, drive one load point, verify, tear down."""
    live_spec = spec.live_spec()
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as workdir:
        cluster = LiveCluster(live_spec, workdir, journals=True)
        killed: Optional[ProcessId] = None
        kill_time: Optional[float] = None
        try:
            _await_starts(cluster, _START_TIMEOUT_S)
            addresses = [
                cluster.serve_addresses[pid] for pid in cluster.members
            ]
            load_config = LoadConfig(
                rate_rps=rate_rps,
                sessions=spec.sessions,
                duration_s=spec.duration_s,
                read_fraction=spec.read_fraction,
                keys=spec.keys,
                zipf_s=spec.zipf_s,
                value_bytes=spec.value_bytes,
                retry_timeout_s=spec.retry_timeout_s,
                seed=spec.seed,
                trace=spec.trace_requests,
            )
            scrapes: Dict[ProcessId, str] = {}

            async def drive() -> LoadStats:
                nonlocal killed, kill_time
                loop = asyncio.get_running_loop()
                kill_handle = None
                scrape_task: Optional[asyncio.Task] = None
                if cluster.metrics_addresses:
                    from repro.obs.httpexport import fetch_metrics

                    async def scrape_mid_load() -> None:
                        # Half the load window: under load by design,
                        # and past the kill fraction so a kill-point
                        # scrape hits the post-failover survivors.
                        await asyncio.sleep(spec.duration_s * 0.5)
                        for pid, addr in cluster.metrics_addresses.items():
                            if pid == killed:
                                continue
                            try:
                                scrapes[pid] = await fetch_metrics(*addr)
                            except (OSError, asyncio.TimeoutError):
                                pass

                    scrape_task = asyncio.ensure_future(scrape_mid_load())
                if kill_leader:
                    # Ring position 0 leads the bootstrap view; it holds
                    # the lease when the SIGKILL lands mid-load.
                    victim = cluster.members[0]

                    def do_kill() -> None:
                        nonlocal killed, kill_time
                        if cluster.kill(victim):
                            killed = victim
                            kill_time = loop.time()

                    kill_handle = loop.call_later(
                        spec.duration_s * _KILL_AT_FRACTION, do_kill
                    )
                try:
                    return await run_load(addresses, load_config)
                finally:
                    if kill_handle is not None:
                        kill_handle.cancel()
                    if scrape_task is not None:
                        try:
                            await asyncio.wait_for(scrape_task, 10.0)
                        except (asyncio.TimeoutError, OSError):
                            pass

            stats = asyncio.run(drive())
            skip = {killed} if killed is not None else set()
            _await_drain(cluster, stats.acked_writes, killed, _DRAIN_TIMEOUT_S)
            cluster.terminate(skip=skip)
            cluster.wait(_SHUTDOWN_GRACE_S, skip=skip, fail_fast=False)
            cluster.raise_on_failures(skip=skip)
            records = cluster.collect(skip=skip)
            applied_by_node = {
                pid: load_applied_log(path)
                for pid, path in cluster.journal_paths.items()
            }
            survivors = [pid for pid in cluster.members if pid != killed]
            snapshot_hashes = {
                pid: record["serve"]["snapshot_hash"]
                for pid, record in records.items()
                if "serve" in record
            }
            violations = verify_serve_run(
                stats, applied_by_node, survivors, killed, snapshot_hashes
            )
            outage_s: Optional[float] = None
            if kill_time is not None:
                if any(t >= kill_time for t in stats.ack_times):
                    outage_s = client_outage(
                        stats.ack_times,
                        kill_time,
                        window_s=spec.heartbeat_timeout_s
                        + spec.retry_timeout_s
                        + 2.0,
                    )
                else:
                    violations.append(
                        "no acknowledged request after the leader kill "
                        "(service never recovered)"
                    )
            timeline: Optional[Timeline] = None
            request_bd: Optional[RequestBreakdown] = None
            if cluster.span_paths:
                t0 = min(record["start_time"] for record in records.values())
                timeline = merge_span_journals(cluster.span_paths, t0=t0)
                # Client stamps come off the same system-wide
                # CLOCK_MONOTONIC as the node journals, so one rebase
                # puts them on the merged timeline's axis.
                timeline.requests.extend(
                    rebase_request(event, t0)
                    for event in stats.request_events
                )
                timeline.requests.sort(key=request_sort_key)
            if timeline is not None and timeline.requests:
                request_bd = request_breakdown(timeline.requests)
                if stats.latencies and killed is None:
                    # §4.3.1-style hard gate: the traced end-to-end mean
                    # must agree with the load generator's measured mean
                    # within 5% — stage sums that don't add up to what
                    # clients observed are a tracing bug, not a finding.
                    crosscheck_request_latency(
                        request_bd,
                        sum(stats.latencies) / len(stats.latencies),
                    )
            scrape_parity = _scrape_parity(scrapes, records)
            if scrape_parity is False:
                violations.append(
                    "live /metrics counter names diverge from the "
                    "post-mortem telemetry snapshot"
                )
            return ServePoint(
                rate_rps=rate_rps,
                stats=stats,
                killed=killed,
                kill_time=kill_time,
                outage_s=outage_s,
                violations=violations,
                node_serve_stats={
                    pid: record["serve"]
                    for pid, record in records.items()
                    if "serve" in record
                },
                request_breakdown=request_bd,
                timeline=timeline,
                live_scrapes=scrapes,
                scrape_parity_ok=scrape_parity,
            )
        finally:
            cluster.shutdown()


def run_serve_benchmark(
    spec: ServeSpec,
    out_path: str = "BENCH_serve.json",
    timeline_path: Optional[str] = None,
    prom_path: Optional[str] = None,
) -> Dict[str, Any]:
    """The full ``python -m repro serve`` pipeline; writes ``out_path``.

    With ``timeline_path``, the first traced point's merged timeline is
    written as JSONL (readable back by ``repro obs``); with
    ``prom_path``, the first mid-load Prometheus scrape is saved as
    exposition text — the two CI artifacts of the obs-serve smoke job.
    """
    points = [run_serve_point(spec, rate) for rate in spec.rates]
    kill_point: Optional[ServePoint] = None
    if spec.kill_leader:
        kill_rate = (
            spec.kill_rate
            if spec.kill_rate is not None
            else spec.rates[len(spec.rates) // 2]
        )
        kill_point = run_serve_point(spec, kill_rate, kill_leader=True)
    all_points = points + ([kill_point] if kill_point is not None else [])
    if timeline_path is not None:
        for point in all_points:
            if point.timeline is not None:
                point.timeline.write_jsonl(timeline_path)
                break
    if prom_path is not None:
        sections = []
        for point in all_points:
            if point.live_scrapes:
                for pid, text in sorted(point.live_scrapes.items()):
                    sections.append(
                        f"# node {pid} offered_rps={point.rate_rps}\n{text}"
                    )
                break
        if sections:
            with open(prom_path, "w") as fh:
                fh.write("\n".join(sections))
    payload: Dict[str, Any] = {
        "schema": "repro.bench_serve/1",
        "config": {
            "processes": spec.processes,
            "t": spec.t,
            "lease_s": spec.lease_s,
            "heartbeat_timeout_s": spec.heartbeat_timeout_s,
            "sessions": spec.sessions,
            "duration_s": spec.duration_s,
            "read_fraction": spec.read_fraction,
            "keys": spec.keys,
            "zipf_s": spec.zipf_s,
            "value_bytes": spec.value_bytes,
            "retry_timeout_s": spec.retry_timeout_s,
            "seed": spec.seed,
            "trace_requests": spec.trace_requests,
            "metrics_port": spec.metrics_port,
        },
        "curve": [point.to_dict() for point in points],
        "kill_point": kill_point.to_dict() if kill_point is not None else None,
        "invariants_ok": all(not point.violations for point in all_points),
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload
