"""Open-loop load generator for the session service.

Unlike the k saturating closed-loop senders of the broadcast
benchmarks, this models the paper's intended workload shape — many
light clients — as an *open loop*: request arrival times are drawn
from a Poisson process at the configured offered rate and submitted on
schedule whether or not earlier requests completed, so queueing delay
shows up as client-visible latency instead of silently throttling the
offered load.  Keys follow a Zipf distribution (precomputed CDF +
bisection — no numpy dependency), and the offered rate is spread over
``sessions`` independent pipelined sessions with round-robin server
fan-in.
"""

from __future__ import annotations

import asyncio
import math
import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.reqtrace import RequestEvent, RequestLog
from repro.serve.client import SessionClient

#: Extra time after the last scheduled arrival to drain pending acks.
_DRAIN_GRACE_S = 2.0


@dataclass
class LoadConfig:
    """One open-loop load point."""

    #: Total offered load across all sessions, requests/second.
    rate_rps: float = 200.0
    #: Concurrent light sessions the load is spread over.
    sessions: int = 20
    #: Submission window; the run drains pending requests afterwards.
    duration_s: float = 5.0
    #: Fraction of requests that are reads (``get``).
    read_fraction: float = 0.5
    #: Key space size; keys are ``k0 .. k{keys-1}``.
    keys: int = 100
    #: Zipf skew (1.0 = classic; larger = more skewed).
    zipf_s: float = 1.1
    #: Payload bytes per ``put`` value.
    value_bytes: int = 64
    #: Client-side retry/failover timeout per request.
    retry_timeout_s: float = 1.0
    seed: int = 0
    #: Request tracing: stamp send/acked client-side and set the wire
    #: ``trace`` flag so servers emit the server-side stages.
    trace: bool = False

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.sessions < 1:
            raise ValueError("sessions must be at least 1")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")


class ZipfKeys:
    """Zipf(s) sampler over ``k0..k{n-1}`` via inverse-CDF bisection."""

    def __init__(self, n: int, s: float, rng: random.Random) -> None:
        self._rng = rng
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self) -> str:
        return f"k{bisect_left(self._cdf, self._rng.random())}"


@dataclass
class LoadStats:
    """Aggregated client-visible results of one load point."""

    offered: int = 0
    completed: int = 0
    acks: int = 0
    retries: int = 0
    reconnects: int = 0
    cached_responses: int = 0
    local_reads: int = 0
    errors: int = 0
    timeouts: int = 0
    #: Client-visible latencies, seconds, completion order.
    latencies: List[float] = field(default_factory=list)
    #: Monotonic completion stamp of every ack (outage analysis).
    ack_times: List[float] = field(default_factory=list)
    #: Ground truth for the exactly-once battery:
    #: (client_id, seq, op, args) per acknowledged mutating request.
    acked_writes: List[Tuple[str, int, str, Tuple[Any, ...]]] = field(
        default_factory=list
    )
    #: Client-side request-trace events (``LoadConfig.trace`` runs);
    #: raw monotonic timestamps — the runner rebases them onto the
    #: merged timeline.  Not serialised by :meth:`to_dict`.
    request_events: List[RequestEvent] = field(default_factory=list)

    def percentile(self, q: float) -> Optional[float]:
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[index]

    def to_dict(self) -> Dict[str, Any]:
        mean = (
            sum(self.latencies) / len(self.latencies) if self.latencies else None
        )
        return {
            "offered": self.offered,
            "completed": self.completed,
            "acks": self.acks,
            "retries": self.retries,
            "reconnects": self.reconnects,
            "cached_responses": self.cached_responses,
            "local_reads": self.local_reads,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "acked_writes": len(self.acked_writes),
            "latency_mean_s": mean,
            "latency_p50_s": self.percentile(0.50),
            "latency_p99_s": self.percentile(0.99),
        }


async def run_load(
    addresses: List[Tuple[str, int]],
    config: LoadConfig,
    *,
    client_prefix: str = "c",
) -> LoadStats:
    """Drive one open-loop load point against a serve cluster."""
    stats = LoadStats()
    loop = asyncio.get_running_loop()
    # One shared log across sessions: client ids disambiguate, and the
    # runner wants a single event stream to merge into the timeline.
    reqlog = RequestLog(enabled=config.trace)

    async def one_session(index: int) -> None:
        rng = random.Random((config.seed << 16) ^ index)
        zipf = ZipfKeys(config.keys, config.zipf_s, rng)
        client = SessionClient(
            f"{client_prefix}{config.seed}-{index}",
            addresses,
            retry_timeout_s=config.retry_timeout_s,
            prefer=index,  # spread the fan-in round-robin over servers
            reqlog=reqlog,
        )
        await client.connect()
        value = "v" * config.value_bytes
        rate = config.rate_rps / config.sessions
        pending: set = set()
        start = loop.time()
        deadline = start + config.duration_s
        next_arrival = start + rng.expovariate(rate)
        try:
            while next_arrival < deadline:
                delay = next_arrival - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                key = zipf.sample()
                # Stamp before submit(): the request's cost starts when
                # the client decides to send, encode + socket write
                # included.  This is also the instant the request trace
                # stamps "send", so the 5% cross-check compares like
                # with like.
                submitted = loop.time()
                if rng.random() < config.read_fraction:
                    fut = client.submit("get", key)
                else:
                    fut = client.submit("put", key, value)
                stats.offered += 1

                def on_done(f: asyncio.Future, t0: float = submitted) -> None:
                    pending.discard(f)
                    if f.cancelled() or f.exception() is not None:
                        return
                    now = loop.time()
                    stats.completed += 1
                    stats.latencies.append(now - t0)
                    stats.ack_times.append(now)

                pending.add(fut)
                fut.add_done_callback(on_done)
                next_arrival += rng.expovariate(rate)
            if pending:
                done, still_pending = await asyncio.wait(
                    pending,
                    timeout=config.retry_timeout_s * 3 + _DRAIN_GRACE_S,
                )
                stats.timeouts += len(still_pending)
        finally:
            stats.acks += client.acks
            stats.retries += client.retries
            stats.reconnects += client.reconnects
            stats.cached_responses += client.cached_responses
            stats.local_reads += client.local_reads
            stats.errors += client.errors
            stats.acked_writes.extend(
                (client.client_id, seq, op, args)
                for seq, op, args in client.acked_writes
            )
            await client.close()

    await asyncio.gather(*(one_session(i) for i in range(config.sessions)))
    stats.request_events = reqlog.records()
    return stats
