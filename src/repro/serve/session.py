"""Exactly-once client sessions inside the replicated state machine.

Every client request is wrapped in a session envelope identified by
``(client_id, seq_no)`` and broadcast as an ordinary :class:`Command`.
The dedup table lives *inside* the state machine — replicated through
the total order — so a retry after leader failover hits the same table
on the new leader and applies exactly once.  Responses are cached per
session until the client's own ``first_unacked`` cursor prunes them,
so a re-sent already-acked request is answered from the cache instead
of re-executing.

Design points:

* **Envelope as Command.**  ``Command("@session", (client, seq,
  first_unacked, op, args))`` rides the existing RSM decode path
  unchanged; the sim and live runtimes need no new payload kind.
* **Floor + cache.**  Per session we keep ``floor`` (every seq ≤ floor
  is known-applied; its result may be pruned) and a ``results`` cache
  for seqs above the floor.  The floor only advances on the client's
  own ``first_unacked``, so a cached response is never dropped while
  the client might still retry it.  FIFO-per-origin in the ring makes
  a client's requests arrive in submission order per server, but
  failover can interleave two servers' copies arbitrarily — the table
  is keyed by seq, so any interleaving of retries, reorders and
  duplicates applies each write exactly once.
* **Deterministic errors are results.**  A :class:`ProtocolError` from
  the inner machine (unknown op, ``incr`` on a string) is caught and
  cached as an error outcome: a buggy client must not crash replicas,
  and its retry must see the same error, not a second execution.
* **Leases ride the log.**  ``Command("@lease", (node, submit_time))``
  is a no-op at apply time but lets every server observe the leader's
  lease renewals in the total order (see :mod:`repro.serve.lease`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.smr.machine import Command, StateMachine

#: Envelope op for session-wrapped client commands.
SESSION_OP = "@session"
#: No-op command carrying a leader lease renewal through the log.
LEASE_OP = "@lease"

#: Outcome status tags stored in the per-session response cache.
OK = "ok"
ERROR = "error"


def session_command(
    client_id: str,
    seq_no: int,
    first_unacked: int,
    op: str,
    args: Tuple[Any, ...],
    trace: bool = False,
) -> Command:
    """Wrap a client request in the replicated session envelope.

    ``trace`` rides as an optional sixth envelope element so the
    *applying* replica can emit the ``applied`` request-trace event —
    omitted when off, keeping untraced envelopes byte-identical to the
    pre-tracing format (and replica snapshots unaffected either way:
    the flag never touches the dedup table).
    """
    envelope: Tuple[Any, ...] = (client_id, seq_no, first_unacked, op, list(args))
    if trace:
        envelope = envelope + (True,)
    return Command(SESSION_OP, envelope)


def lease_command(node_id: int, submit_time: float) -> Command:
    """A lease renewal: no-op at apply, observed by every server."""
    return Command(LEASE_OP, (node_id, submit_time))


#: Upcall on every *first* application of a session command:
#: (client_id, seq_no, op, args, outcome, applied_index).
SessionApplyCallback = Callable[[str, int, str, Tuple[Any, ...], Tuple[str, Any], int], None]

#: Upcall on the first application of a *traced* session command
#: (envelope trace flag set): (client_id, seq_no, applied_index).
TracedApplyCallback = Callable[[str, int, int], None]

#: Upcall on every applied lease renewal: (node_id, submit_time).
LeaseApplyCallback = Callable[[int, float], None]


@dataclass
class SessionState:
    """Replicated per-client dedup state.

    ``floor`` — every seq ≤ floor has been applied; results at or below
    it may have been pruned.  ``results`` — cached outcomes for applied
    seqs above the floor, kept until the client acks past them.
    """

    floor: int = 0
    results: Dict[int, Tuple[str, Any]] = field(default_factory=dict)

    def lookup(self, seq_no: int) -> Optional[Tuple[str, Any]]:
        """Cached outcome for ``seq_no``, or None if never applied.

        A pruned-but-applied seq (≤ floor, not cached) returns an ERROR
        outcome: the client already acked it, so a well-behaved client
        never asks; answering with an error beats re-executing.
        """
        cached = self.results.get(seq_no)
        if cached is not None:
            return cached
        if seq_no <= self.floor:
            return (ERROR, "response pruned: request was already acknowledged")
        return None

    def record(self, seq_no: int, outcome: Tuple[str, Any]) -> None:
        self.results[seq_no] = outcome

    def prune(self, first_unacked: int) -> None:
        """Advance the floor to the client's own ack cursor."""
        new_floor = first_unacked - 1
        if new_floor <= self.floor:
            return
        self.floor = new_floor
        for seq in [s for s in self.results if s <= new_floor]:
            del self.results[seq]

    def applied_seq(self) -> int:
        """Highest seq this session has applied (floor or cached)."""
        return max(self.results, default=self.floor)


class SessionMachine(StateMachine):
    """State machine wrapper adding exactly-once session semantics.

    Wraps any inner :class:`StateMachine` (typically
    :class:`~repro.smr.kvstore.KVStore`).  Non-session commands pass
    through untouched, so a ``SessionMachine`` can coexist with plain
    RSM traffic.
    """

    def __init__(self, inner: StateMachine) -> None:
        self.inner = inner
        self.sessions: Dict[str, SessionState] = {}
        #: Total commands applied through this machine (incl. dedup hits).
        self.applied_index = 0
        #: Session commands whose inner op actually executed.
        self.session_applies = 0
        #: Session commands answered from the dedup table.
        self.dedup_hits = 0
        #: Lease renewals applied.
        self.lease_applies = 0
        self._session_callbacks: List[SessionApplyCallback] = []
        self._traced_callbacks: List[TracedApplyCallback] = []
        self._lease_callbacks: List[LeaseApplyCallback] = []

    # -- observation ---------------------------------------------------
    def on_session_apply(self, callback: SessionApplyCallback) -> None:
        """Observe the *first* application of each session command."""
        self._session_callbacks.append(callback)

    def on_traced_apply(self, callback: TracedApplyCallback) -> None:
        """Observe first applications of trace-flagged envelopes."""
        self._traced_callbacks.append(callback)

    def on_lease_apply(self, callback: LeaseApplyCallback) -> None:
        """Observe every lease renewal in the total order."""
        self._lease_callbacks.append(callback)

    def lookup(self, client_id: str, seq_no: int) -> Optional[Tuple[str, Any]]:
        """Cached outcome for a session request, or None if unapplied."""
        session = self.sessions.get(client_id)
        if session is None:
            return None
        return session.lookup(seq_no)

    def session_applied_seq(self, client_id: str) -> int:
        """Highest applied seq for ``client_id`` on this replica (0 if none)."""
        session = self.sessions.get(client_id)
        return session.applied_seq() if session is not None else 0

    # -- StateMachine --------------------------------------------------
    READ_ONLY_OPS = frozenset()  # session envelopes always mutate the table

    def apply(self, command: Command) -> Any:
        self.applied_index += 1
        if command.op == SESSION_OP:
            return self._apply_session(command)
        if command.op == LEASE_OP:
            return self._apply_lease(command)
        return self.inner.apply(command)

    def _apply_session(self, command: Command) -> Tuple[str, Any]:
        # The envelope is 5 elements, or 6 with the optional trace flag
        # appended — old and new replicas decode each other's commands.
        trace = False
        envelope = command.args
        if len(envelope) == 6:
            envelope, trace = envelope[:5], bool(envelope[5])
        try:
            client_id, seq_no, first_unacked, op, args = envelope
        except ValueError as exc:
            raise ProtocolError(
                f"malformed session envelope: {command.args!r}"
            ) from exc
        if not isinstance(seq_no, int) or isinstance(seq_no, bool) or seq_no < 1:
            raise ProtocolError(f"session seq_no must be a positive int: {seq_no!r}")
        session = self.sessions.get(client_id)
        if session is None:
            session = self.sessions[client_id] = SessionState()
        session.prune(first_unacked)
        cached = session.lookup(seq_no)
        if cached is not None:
            self.dedup_hits += 1
            return cached
        try:
            result = self.inner.apply(Command(op, tuple(args)))
            outcome = (OK, result)
        except ProtocolError as exc:
            # Deterministic rejection: cache it so the retry sees the
            # same error instead of a second execution attempt.
            outcome = (ERROR, str(exc))
        session.record(seq_no, outcome)
        self.session_applies += 1
        for callback in list(self._session_callbacks):
            callback(client_id, seq_no, op, tuple(args), outcome, self.applied_index)
        if trace:
            for traced in list(self._traced_callbacks):
                traced(client_id, seq_no, self.applied_index)
        return outcome

    def _apply_lease(self, command: Command) -> None:
        try:
            node_id, submit_time = command.args
        except ValueError as exc:
            raise ProtocolError(f"malformed lease command: {command.args!r}") from exc
        self.lease_applies += 1
        for callback in list(self._lease_callbacks):
            callback(node_id, submit_time)
        return None

    def local_read(self, command: Command) -> Any:
        """Read-only pass-through against the inner machine.

        Bypasses :meth:`apply` so local reads never bump
        ``applied_index`` (which must stay identical across replicas).
        """
        read_only = getattr(self.inner, "READ_ONLY_OPS", frozenset())
        if command.op not in read_only:
            raise ProtocolError(
                f"{command.op!r} is not declared read-only by "
                f"{type(self.inner).__name__}"
            )
        return self.inner.apply(command)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "inner": self.inner.snapshot(),
            "applied_index": self.applied_index,
            "sessions": {
                client: {
                    "floor": state.floor,
                    "results": {
                        str(seq): list(outcome)
                        for seq, outcome in sorted(state.results.items())
                    },
                }
                for client, state in sorted(self.sessions.items())
            },
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Rebuild machine state from a :meth:`snapshot` payload."""
        restore_inner = getattr(self.inner, "restore", None)
        if restore_inner is None:
            raise ProtocolError(
                f"{type(self.inner).__name__} does not support restore()"
            )
        restore_inner(snapshot["inner"])
        self.applied_index = snapshot["applied_index"]
        self.sessions = {
            client: SessionState(
                floor=state["floor"],
                results={
                    int(seq): (outcome[0], outcome[1])
                    for seq, outcome in state["results"].items()
                },
            )
            for client, state in snapshot["sessions"].items()
        }
