"""Leader leases for locally served reads.

The current view's leader (``view.members[0]``) may serve read-only
requests from its local replica while it holds the lease, avoiding a
full ring round-trip per read.  Safety argument:

* Renewals ride the totally ordered log (:data:`~repro.serve.session.LEASE_OP`
  no-ops).  When the leader observes its *own* renewal applied, the
  lease extends to ``submit_time + lease_s`` — measured from
  *submission*, so the extension is valid no matter how long the ring
  took to order it.
* A new leader installed by a view change waits ``lease_s`` after the
  install before serving locally: any lease the displaced leader could
  still believe in was granted from a ``submit_time`` before the
  install, hence expires within ``lease_s`` of it.  On a localhost
  cluster both deadlines read the same monotonic clock, so the
  old-lease and new-lease windows cannot overlap.
* The lease alone gives *leader-local* reads, not session monotonic
  reads — the server additionally checks the client's barrier against
  the replicated session table (:meth:`SessionMachine.session_applied_seq`)
  before serving locally, so even a stale lease can never serve a read
  older than the client's own acknowledged writes.
"""

from __future__ import annotations

from typing import Optional

from repro.types import Clock, ProcessId, View


class LeaderLease:
    """Tracks whether this node may serve reads locally."""

    def __init__(self, clock: Clock, node_id: ProcessId, lease_s: float) -> None:
        self.clock = clock
        self.node_id = node_id
        self.lease_s = lease_s
        self._leader: Optional[ProcessId] = None
        self._view_id: Optional[int] = None
        #: Earliest instant this node may serve locally (new-leader grace).
        self._safe_from = 0.0
        #: Lease expiry; local reads allowed strictly before it.
        self._expiry = 0.0
        #: Local-read attempts rejected because the lease was unsafe.
        self.rejections = 0

    @property
    def leader(self) -> Optional[ProcessId]:
        return self._leader

    @property
    def view_id(self) -> Optional[int]:
        return self._view_id

    @property
    def expiry(self) -> float:
        return self._expiry

    def on_view(self, view: View) -> None:
        """Track a view install; start the new-leader grace period."""
        previous = self._leader
        first_view = self._view_id is None
        self._view_id = view.view_id
        self._leader = view.leader() if view.members else None
        if self._leader != self.node_id:
            self._expiry = 0.0
            return
        if previous == self.node_id:
            return  # still leader; existing lease remains valid
        if first_view and view.view_id == 0:
            # Bootstrap view: no displaced leader, no lease to wait out.
            self._safe_from = self.clock.now
        else:
            self._safe_from = self.clock.now + self.lease_s

    def note_renewal(self, node_id: ProcessId, submit_time: float) -> None:
        """A lease command was applied; extend if it is our own."""
        if node_id != self.node_id or self._leader != self.node_id:
            return
        self._expiry = max(self._expiry, submit_time + self.lease_s)

    def holds(self) -> bool:
        """May this node serve a read locally right now?"""
        now = self.clock.now
        ok = (
            self._leader == self.node_id
            and self._safe_from <= now
            and now < self._expiry
        )
        if not ok:
            self.rejections += 1
        return ok
