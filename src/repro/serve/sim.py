"""The session layer on the discrete-event engine.

The exactly-once machinery (:class:`~repro.serve.session.SessionMachine`)
is pure protocol state riding ordinary commands, so it runs unchanged
on the simulator: wrap every sim node's protocol endpoint in a
:class:`~repro.smr.machine.ReplicatedStateMachine` over a
``SessionMachine`` and submit scripted session envelopes.  The sim/live
conformance test drives the *same* scripted client session through both
runtimes and asserts the applied-command sequences are identical —
duplicates deduplicated at the same points, errors cached the same way,
states bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.harness import Cluster, build_cluster
from repro.core.fsr.config import FSRConfig
from repro.serve.session import SessionMachine, session_command
from repro.smr.kvstore import KVStore
from repro.smr.machine import ReplicatedStateMachine
from repro.types import ProcessId

#: One scripted step: (client_id, seq, first_unacked, op, args).
ScriptStep = Tuple[str, int, int, str, Tuple[Any, ...]]

#: The canonical conformance script: two interleaved sessions with
#: literal duplicates (a retried write and a retried *failing* write)
#: and a deterministic error.  Shared by the sim and live sides of the
#: conformance test so both runtimes replay the identical session.
CONFORMANCE_SCRIPT: List[ScriptStep] = [
    ("alice", 1, 1, "put", ("x", "1")),
    ("bob", 1, 1, "put", ("y", "9")),
    ("alice", 2, 2, "incr", ("ctr", 5)),
    ("alice", 2, 2, "incr", ("ctr", 5)),  # duplicate: applies once
    ("bob", 2, 2, "get", ("x",)),
    ("alice", 3, 3, "bogus", ("z",)),  # deterministic error, cached
    ("alice", 3, 3, "bogus", ("z",)),  # duplicate of the error: cached
    ("bob", 3, 3, "cas", ("y", "9", "10")),
    ("alice", 4, 4, "delete", ("x",)),
]


def expected_applied(script: List[ScriptStep]) -> List[Tuple[str, int, str]]:
    """The first-application sequence a correct run of ``script`` yields:
    the script order with duplicate ``(client, seq)`` entries collapsed."""
    seen = set()
    applied: List[Tuple[str, int, str]] = []
    for client, seq, _first_unacked, op, _args in script:
        if (client, seq) not in seen:
            seen.add((client, seq))
            applied.append((client, seq, op))
    return applied


@dataclass
class ScriptedRun:
    """What one scripted sim session produced."""

    #: First-application sequence per node: (client, seq, op).
    applied: Dict[ProcessId, List[Tuple[str, int, str]]]
    #: Final machine snapshot per node.
    snapshots: Dict[ProcessId, Any]
    #: Dedup hits per node (duplicates answered from the table).
    dedup_hits: Dict[ProcessId, int] = field(default_factory=dict)


def run_scripted_session(
    script: Optional[List[ScriptStep]] = None,
    n: int = 3,
    t: int = 1,
    origin: ProcessId = 0,
) -> ScriptedRun:
    """Drive a scripted client session through a simulated cluster.

    Every step is submitted at ``origin`` — FIFO per origin plus the
    total order make the applied sequence exactly the script order with
    duplicates collapsing into dedup hits, which is what the live side
    reproduces by awaiting each ack before the next request.
    """
    steps = CONFORMANCE_SCRIPT if script is None else script
    config = ClusterConfig(n=n, protocol="fsr", protocol_config=FSRConfig(t=t))
    cluster: Cluster = build_cluster(config)
    machines: Dict[ProcessId, SessionMachine] = {}
    rsms: Dict[ProcessId, ReplicatedStateMachine] = {}
    applied: Dict[ProcessId, List[Tuple[str, int, str]]] = {}
    for node_id, node in cluster.nodes.items():
        machine = SessionMachine(KVStore())
        # Replaces the harness's app-delivery listener: the RSM is the
        # application here, and its applied_index is the progress gauge.
        rsms[node_id] = ReplicatedStateMachine(node.protocol, machine)
        machines[node_id] = machine
        log: List[Tuple[str, int, str]] = []
        applied[node_id] = log
        machine.on_session_apply(
            lambda client, seq, op, args, outcome, index, _log=log: _log.append(
                (client, seq, op)
            )
        )
    cluster.start()
    for client, seq, first_unacked, op, args in steps:
        rsms[origin].submit(session_command(client, seq, first_unacked, op, args))
    cluster.run_until(
        lambda: all(
            machine.applied_index >= len(steps)
            for machine in machines.values()
        )
    )
    return ScriptedRun(
        applied=applied,
        snapshots={
            node_id: machine.snapshot()
            for node_id, machine in machines.items()
        },
        dedup_hits={
            node_id: machine.dedup_hits
            for node_id, machine in machines.items()
        },
    )
