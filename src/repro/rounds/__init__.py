"""The paper's round-based analysis model (Section 3).

The paper modifies the classic synchronous round model [Lynch96] to
capture switched clusters: in each round ``r``, every process

1. computes its message for the round,
2. **sends** one message — as a unicast *or a best-effort broadcast*
   (one send slot regardless of how many destinations), and
3. **receives a single message** sent to it (further simultaneous
   arrivals queue and consume later rounds' receive slots).

Throughput is measured in *completed TO-broadcasts per round* (a
broadcast completes when every process has delivered it), and a
protocol is throughput-efficient when this is ``>= 1``.

This package implements the model (:class:`RoundEngine`) plus compact
round automata for FSR and the four baseline classes the paper surveys,
so Section 4.3's claims — ``L(i) = 2n + t - i - 1``, throughput 1
regardless of ``n``, ``t`` and the sender pattern — and Section 2's
per-class deficiencies are all checked mechanically.
"""

from repro.rounds.engine import RoundEngine, RoundMessage, RoundProcess
from repro.rounds.fsr_round import FSRRoundProcess, fsr_latency_formula
from repro.rounds.analysis import (
    RoundRunResult,
    measure_latency,
    measure_throughput,
)

__all__ = [
    "RoundEngine",
    "RoundMessage",
    "RoundProcess",
    "FSRRoundProcess",
    "fsr_latency_formula",
    "RoundRunResult",
    "measure_latency",
    "measure_throughput",
]
