"""Destination agreement in the round model (paper §2.5).

Batched consensus with a rotating coordinator: payload broadcasts,
then propose / vote / decide waves per batch.  Each batch costs the
coordinator roughly ``n`` receive rounds (one vote per round), which is
the message-complexity tax the paper attributes to this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.rounds.engine import RoundProcess
from repro.types import ProcessId

RoundMsgId = Tuple[ProcessId, int]
DeliverCb = Callable[[ProcessId, RoundMsgId, int, int], None]


@dataclass(frozen=True)
class _Data:
    msg: RoundMsgId


@dataclass(frozen=True)
class _Propose:
    instance: int
    batch: Tuple[RoundMsgId, ...]


@dataclass(frozen=True)
class _Vote:
    instance: int


@dataclass(frozen=True)
class _Decide:
    instance: int
    batch: Tuple[RoundMsgId, ...]


class DestinationAgreementRoundProcess(RoundProcess):
    """One process of the destination-agreement protocol."""

    def __init__(
        self,
        pid: ProcessId,
        members: Tuple[ProcessId, ...],
        supply: int = 0,
        deliver_cb: Optional[DeliverCb] = None,
        max_batch: int = 8,
        window: Optional[int] = None,
    ) -> None:
        super().__init__(pid)
        self.members = members
        self.n = len(members)
        self.supply = supply
        self.deliver_cb = deliver_cb
        self.max_batch = max_batch
        self.window = window

        self._own_counter = 0
        self._own_delivered = 0
        self._payloads: Set[RoundMsgId] = set()
        self._ordered: Set[RoundMsgId] = set()
        self._decisions: Dict[int, Tuple[RoundMsgId, ...]] = {}
        self._next_instance = 1
        self._proposing: Optional[int] = None
        self._votes: Set[ProcessId] = set()
        self._proposed: Tuple[RoundMsgId, ...] = ()
        self._outbox: List[object] = []  # control messages to send
        self._sequence = 0
        self.delivered: List[RoundMsgId] = []

    def coordinator_of(self, instance: int) -> ProcessId:
        return self.members[(instance - 1) % self.n]

    # ------------------------------------------------------------------
    def begin_round(self, round_index: int) -> None:
        if self._outbox:
            dests, payload = self._outbox.pop(0)
            self.send(dests, payload)
            return
        wants_own = self.supply is None or self.supply > 0
        if wants_own and self.window is not None:
            wants_own = self._own_counter - self._own_delivered < self.window
        if wants_own:
            self._own_counter += 1
            if self.supply is not None:
                self.supply -= 1
            mid = (self.pid, self._own_counter)
            self._payloads.add(mid)
            others = [p for p in self.members if p != self.pid]
            if others:
                self.send(others, _Data(msg=mid))
            self._maybe_propose()

    def receive(self, round_index: int, src: ProcessId, payload: object) -> None:
        if isinstance(payload, _Data):
            self._payloads.add(payload.msg)
            self._maybe_propose()
        elif isinstance(payload, _Propose):
            if payload.instance >= self._next_instance:
                self._outbox.append((
                    [src], _Vote(instance=payload.instance)
                ))
        elif isinstance(payload, _Vote):
            if self._proposing == payload.instance:
                self._votes.add(src)
                self._maybe_decide(round_index)
        elif isinstance(payload, _Decide):
            if payload.instance >= self._next_instance:
                self._decisions.setdefault(payload.instance, payload.batch)
                self._flush(round_index)
        else:
            raise ProtocolError(f"unexpected payload {payload!r}")

    # ------------------------------------------------------------------
    def _maybe_propose(self) -> None:
        instance = self._next_instance
        if self.coordinator_of(instance) != self.pid or self._proposing is not None:
            return
        pending = sorted(self._payloads - self._ordered)[: self.max_batch]
        if not pending:
            return
        self._proposing = instance
        self._proposed = tuple(pending)
        self._votes = {self.pid}
        others = [p for p in self.members if p != self.pid]
        if others:
            self._outbox.append((others, _Propose(instance=instance, batch=self._proposed)))
        else:
            self._decisions.setdefault(instance, self._proposed)

    def _maybe_decide(self, round_index: int) -> None:
        if self._proposing is None or len(self._votes) < self.n:
            return
        instance = self._proposing
        batch = self._proposed
        self._proposing = None
        self._proposed = ()
        self._votes = set()
        others = [p for p in self.members if p != self.pid]
        if others:
            self._outbox.append((others, _Decide(instance=instance, batch=batch)))
        self._decisions.setdefault(instance, batch)
        self._flush(round_index)

    def _flush(self, round_index: int) -> None:
        while self._next_instance in self._decisions:
            batch = self._decisions[self._next_instance]
            if any(mid not in self._payloads for mid in batch):
                return
            del self._decisions[self._next_instance]
            self._next_instance += 1
            for mid in batch:
                if mid in self._ordered:
                    continue
                self._ordered.add(mid)
                self._sequence += 1
                self.delivered.append(mid)
                if mid[0] == self.pid:
                    self._own_delivered += 1
                if self.deliver_cb is not None:
                    self.deliver_cb(self.pid, mid, self._sequence, round_index)
            self._maybe_propose()
