"""Privilege-based protocol in the round model (paper §2.3, Figure 3).

Only the token holder broadcasts.  The holder sends up to
``max_per_token`` of its own pending messages (one broadcast per
round), then passes the token — a unicast that still occupies a full
round of the successor's receive slot.  This automaton reproduces the
paper's fairness/throughput trade-off: with ``k`` senders spread around
the ring, every ``max_per_token`` deliveries cost extra token-passing
rounds, so throughput falls below 1 exactly in the ``k``-to-``n``
patterns the paper calls out (and fairness collapses instead if
``max_per_token`` is made large).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.rounds.engine import RoundProcess
from repro.types import ProcessId

RoundMsgId = Tuple[ProcessId, int]
DeliverCb = Callable[[ProcessId, RoundMsgId, int, int], None]


@dataclass(frozen=True)
class _Data:
    msg: RoundMsgId
    seq: int
    stable_up_to: int


@dataclass(frozen=True)
class _Token:
    next_seq: int
    aru: Tuple[Tuple[ProcessId, int], ...]


class PrivilegeRoundProcess(RoundProcess):
    """One process of the privilege protocol in the round model."""

    def __init__(
        self,
        pid: ProcessId,
        members: Tuple[ProcessId, ...],
        supply: int = 0,
        deliver_cb: Optional[DeliverCb] = None,
        max_per_token: int = 4,
        window: Optional[int] = None,
    ) -> None:
        super().__init__(pid)
        self.members = members
        self.n = len(members)
        self.supply = supply
        self.deliver_cb = deliver_cb
        self.max_per_token = max_per_token
        self.window = window

        self._own_counter = 0
        self._own_delivered = 0
        self._have_token = pid == members[0]
        self._sent_this_visit = 0
        self._token_next_seq = 1
        self._token_aru: Dict[ProcessId, int] = {p: 0 for p in members}
        self._received: Dict[int, RoundMsgId] = {}
        self._my_contiguous = 0
        self._stable = 0
        self._last_delivered = 0
        self.delivered: List[RoundMsgId] = []
        self.token_pass_rounds = 0

    # ------------------------------------------------------------------
    def _wants_own(self) -> bool:
        if self.supply is not None and self.supply <= 0:
            return False
        if self.window is not None:
            if self._own_counter - self._own_delivered >= self.window:
                return False
        return True

    def begin_round(self, round_index: int) -> None:
        if not self._have_token:
            return
        if self._wants_own() and self._sent_this_visit < self.max_per_token:
            self._own_counter += 1
            if self.supply is not None:
                self.supply -= 1
            self._sent_this_visit += 1
            mid = (self.pid, self._own_counter)
            seq = self._token_next_seq
            self._token_next_seq += 1
            data = _Data(msg=mid, seq=seq, stable_up_to=self._stable)
            self._note_data(data, round_index)
            others = [p for p in self.members if p != self.pid]
            if others:
                self.send(others, data)
            return
        # Visit over (quota reached or nothing to send): pass the token.
        self._pass_token(round_index)

    def _pass_token(self, round_index: int) -> None:
        self._refresh_contiguous()
        self._token_aru[self.pid] = self._my_contiguous
        self._note_stability(round_index)
        self._have_token = False
        self._sent_this_visit = 0
        successor = self.members[(self.members.index(self.pid) + 1) % self.n]
        token = _Token(
            next_seq=self._token_next_seq,
            aru=tuple(sorted(self._token_aru.items())),
        )
        self.token_pass_rounds += 1
        if successor == self.pid:
            self._have_token = True
        else:
            self.send(successor, token)

    # ------------------------------------------------------------------
    def receive(self, round_index: int, src: ProcessId, payload: object) -> None:
        if isinstance(payload, _Data):
            self._note_data(payload, round_index)
        elif isinstance(payload, _Token):
            self._have_token = True
            self._sent_this_visit = 0
            self._token_next_seq = max(self._token_next_seq, payload.next_seq)
            for pid, mark in payload.aru:
                self._token_aru[pid] = max(self._token_aru[pid], mark)
            self._refresh_contiguous()
            self._token_aru[self.pid] = self._my_contiguous
            self._note_stability(round_index)
        else:
            raise ProtocolError(f"unexpected payload {payload!r}")

    # ------------------------------------------------------------------
    def _note_data(self, data: _Data, round_index: int) -> None:
        self._received.setdefault(data.seq, data.msg)
        self._refresh_contiguous()
        if data.stable_up_to > self._stable:
            self._stable = data.stable_up_to
        self._flush(round_index)

    def _refresh_contiguous(self) -> None:
        while self._my_contiguous + 1 in self._received:
            self._my_contiguous += 1

    def _note_stability(self, round_index: int) -> None:
        stable = min(self._token_aru.values())
        if stable > self._stable:
            self._stable = stable
        self._flush(round_index)

    def _flush(self, round_index: int) -> None:
        while (
            self._last_delivered + 1 <= self._stable
            and self._last_delivered + 1 in self._received
        ):
            seq = self._last_delivered + 1
            self._last_delivered = seq
            mid = self._received[seq]
            self.delivered.append(mid)
            if mid[0] == self.pid:
                self._own_delivered += 1
            if self.deliver_cb is not None:
                self.deliver_cb(self.pid, mid, seq, round_index)
