"""Communication-history protocol in the round model (paper §2.4).

Every process broadcasts timestamped messages; delivery happens when a
later timestamp has been seen from everyone.  The receive slot is the
constraint: each process can absorb only one of the ``n - 1`` broadcasts
arriving per round, so senders must throttle to a rate of one message
every ``n - 1`` rounds for the system to stay stable — the quadratic
message complexity the paper criticises, expressed in round-model
terms.  ``k``-to-``n`` throughput is therefore about ``k / (n - 1)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.rounds.engine import RoundProcess
from repro.types import ProcessId

RoundMsgId = Tuple[ProcessId, int]
DeliverCb = Callable[[ProcessId, RoundMsgId, int, int], None]


@dataclass(frozen=True)
class _Stamped:
    msg: Optional[RoundMsgId]  # None for a null (clock-advance) message
    timestamp: int


class CommunicationHistoryRoundProcess(RoundProcess):
    """One process of the communication-history protocol."""

    def __init__(
        self,
        pid: ProcessId,
        members: Tuple[ProcessId, ...],
        supply: int = 0,
        deliver_cb: Optional[DeliverCb] = None,
        window: Optional[int] = None,
    ) -> None:
        super().__init__(pid)
        self.members = members
        self.n = len(members)
        self.supply = supply
        self.deliver_cb = deliver_cb
        self.window = window

        self._own_counter = 0
        self._own_delivered = 0
        self._clock = 0
        self._latest: Dict[ProcessId, int] = {p: 0 for p in members}
        self._pending: List[Tuple[int, ProcessId, RoundMsgId]] = []
        self._delivery_index = 0
        self.delivered: List[RoundMsgId] = []

    # ------------------------------------------------------------------
    def begin_round(self, round_index: int) -> None:
        # Throttle to the stable rate: one send every (n - 1) rounds.
        period = max(1, self.n - 1)
        if round_index % period != self.pid % period:
            return
        self._clock += 1
        self._latest[self.pid] = self._clock
        mid: Optional[RoundMsgId] = None
        wants_own = self.supply is None or self.supply > 0
        if wants_own and self.window is not None:
            wants_own = self._own_counter - self._own_delivered < self.window
        if wants_own:
            self._own_counter += 1
            if self.supply is not None:
                self.supply -= 1
            mid = (self.pid, self._own_counter)
            heapq.heappush(self._pending, (self._clock, self.pid, mid))
        others = [p for p in self.members if p != self.pid]
        if others:
            self.send(others, _Stamped(msg=mid, timestamp=self._clock))
        self._flush(round_index)

    def receive(self, round_index: int, src: ProcessId, payload: object) -> None:
        if not isinstance(payload, _Stamped):
            raise ProtocolError(f"unexpected payload {payload!r}")
        self._clock = max(self._clock, payload.timestamp)
        self._latest[src] = max(self._latest[src], payload.timestamp)
        if payload.msg is not None:
            heapq.heappush(self._pending, (payload.timestamp, src, payload.msg))
        self._flush(round_index)

    def _flush(self, round_index: int) -> None:
        while self._pending:
            timestamp, origin, mid = self._pending[0]
            front = min(
                self._latest[p] for p in self.members if p != origin
            )
            if front <= timestamp:
                return
            heapq.heappop(self._pending)
            self._delivery_index += 1
            self.delivered.append(mid)
            if mid[0] == self.pid:
                self._own_delivered += 1
            if self.deliver_cb is not None:
                self.deliver_cb(self.pid, mid, self._delivery_index, round_index)
