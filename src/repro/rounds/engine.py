"""Lock-step engine for the paper's modified round model.

Execution of one round:

1. every process's :meth:`RoundProcess.begin_round` runs (in process-id
   order, but processes cannot observe each other within a round) and
   may call :meth:`RoundProcess.send` **once** — with one or many
   destinations (a best-effort broadcast costs one send slot);
2. every message sent in round ``r`` is appended to each destination's
   network queue (switch buffer);
3. every process receives **exactly one** queued message (FIFO;
   same-round arrivals are ordered by sender id) via
   :meth:`RoundProcess.receive`.

Everything is deterministic, so round counts are exact and the paper's
formulas can be asserted as equalities.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Union

from repro.errors import SimulationError
from repro.types import ProcessId


@dataclass(frozen=True)
class RoundMessage:
    """One message in the round model."""

    src: ProcessId
    payload: Any
    sent_round: int


class RoundProcess(ABC):
    """A protocol automaton living in the round model."""

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self._engine: Optional["RoundEngine"] = None
        self._sent_this_round = False

    # Called by the engine -----------------------------------------------
    def _attach(self, engine: "RoundEngine") -> None:
        self._engine = engine

    @abstractmethod
    def begin_round(self, round_index: int) -> None:
        """Compute and (optionally) send this round's message."""

    @abstractmethod
    def receive(self, round_index: int, src: ProcessId, payload: Any) -> None:
        """Handle the (single) message received this round."""

    # Called by the automaton --------------------------------------------
    def send(self, destinations: Union[ProcessId, Iterable[ProcessId]], payload: Any) -> None:
        """Use this round's one send slot (unicast or broadcast)."""
        if self._engine is None:
            raise SimulationError("process is not attached to an engine")
        if self._sent_this_round:
            raise SimulationError(
                f"process {self.pid} tried to send twice in round "
                f"{self._engine.round_index}"
            )
        self._sent_this_round = True
        if isinstance(destinations, int):
            destinations = [destinations]
        self._engine._submit(self.pid, list(destinations), payload)


class RoundEngine:
    """Drives a set of :class:`RoundProcess` automata in lock step."""

    def __init__(self) -> None:
        self.processes: Dict[ProcessId, RoundProcess] = {}
        self._queues: Dict[ProcessId, Deque[RoundMessage]] = {}
        self._staged: List[RoundMessage] = []
        self._staged_dests: List[List[ProcessId]] = []
        self.round_index = 0
        #: Peak network-queue depth per process (backlog diagnostics).
        self.max_queue_depth: Dict[ProcessId, int] = {}

    def attach(self, process: RoundProcess) -> None:
        if process.pid in self.processes:
            raise SimulationError(f"process {process.pid} already attached")
        self.processes[process.pid] = process
        self._queues[process.pid] = deque()
        self.max_queue_depth[process.pid] = 0
        process._attach(self)

    def _submit(self, src: ProcessId, dests: List[ProcessId], payload: Any) -> None:
        message = RoundMessage(src=src, payload=payload, sent_round=self.round_index)
        self._staged.append(message)
        self._staged_dests.append(dests)

    def run_round(self) -> None:
        """Execute one full round."""
        pids = sorted(self.processes)
        for pid in pids:
            process = self.processes[pid]
            process._sent_this_round = False
            process.begin_round(self.round_index)
        # Stage 2: same-round arrivals enter queues, ordered by sender.
        order = sorted(
            range(len(self._staged)), key=lambda i: self._staged[i].src
        )
        for i in order:
            message = self._staged[i]
            for dst in self._staged_dests[i]:
                if dst not in self._queues:
                    raise SimulationError(f"unknown destination {dst}")
                self._queues[dst].append(message)
        self._staged = []
        self._staged_dests = []
        # Stage 3: one receive per process.
        for pid in pids:
            queue = self._queues[pid]
            self.max_queue_depth[pid] = max(self.max_queue_depth[pid], len(queue))
            if queue:
                message = queue.popleft()
                self.processes[pid].receive(
                    self.round_index, message.src, message.payload
                )
        self.round_index += 1

    def run_rounds(self, count: int) -> None:
        for _ in range(count):
            self.run_round()

    def run_until(self, predicate: Callable[[], bool], max_rounds: int = 100_000) -> int:
        """Run until ``predicate()`` holds; returns the round count."""
        start = self.round_index
        while not predicate():
            if self.round_index - start >= max_rounds:
                raise SimulationError(
                    f"predicate still false after {max_rounds} rounds"
                )
            self.run_round()
        return self.round_index - start
