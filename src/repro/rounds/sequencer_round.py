"""Fixed sequencer in the round model (paper §2.1, Figure 1).

Senders unicast submissions to the sequencer; the sequencer broadcasts
``(m, seq)``; every process acknowledges back to the sequencer (uniform
variant).  Acks piggy-back on submissions when the acking process is
itself broadcasting (the paper's footnote 2: piggy-backing works only
when everyone broadcasts all the time); otherwise they consume a send
slot of their own — and, crucially, one of the sequencer's receive
slots, which is the bottleneck this automaton exposes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.rounds.engine import RoundProcess
from repro.types import ProcessId

RoundMsgId = Tuple[ProcessId, int]
DeliverCb = Callable[[ProcessId, RoundMsgId, int, int], None]


@dataclass(frozen=True)
class _Submit:
    msg: RoundMsgId
    acks: Tuple[int, ...] = ()  # piggy-backed ack'ed sequences


@dataclass(frozen=True)
class _SeqBcast:
    msg: RoundMsgId
    seq: int
    stable_up_to: int


@dataclass(frozen=True)
class _AckOnly:
    acks: Tuple[int, ...]


@dataclass(frozen=True)
class _StableNotice:
    """Idle-time stability announcement (nothing to piggy-back on)."""

    stable_up_to: int


class FixedSequencerRoundProcess(RoundProcess):
    """One process of the fixed-sequencer protocol in the round model."""

    def __init__(
        self,
        pid: ProcessId,
        members: Tuple[ProcessId, ...],
        supply: int = 0,
        deliver_cb: Optional[DeliverCb] = None,
        window: Optional[int] = None,
    ) -> None:
        super().__init__(pid)
        self.members = members
        self.n = len(members)
        self.sequencer = members[0]
        self.supply = supply
        self.deliver_cb = deliver_cb
        self.window = window

        self._own_counter = 0
        self._own_delivered = 0
        self._pending_acks: List[int] = []
        # Sequencer state.
        self._next_seq = 1
        self._bcast_queue: Deque[_SeqBcast] = deque()
        self._ack_counts: Dict[int, int] = {}
        self._stable = 0
        self._announced_stable = 0
        # Receiver state.
        self._known: Dict[int, RoundMsgId] = {}
        self._known_stable = 0
        self._last_delivered = 0
        self.delivered: List[RoundMsgId] = []

    # ------------------------------------------------------------------
    def begin_round(self, round_index: int) -> None:
        if self.pid == self.sequencer:
            self._sequencer_send(round_index)
        else:
            self._sender_send(round_index)

    def _wants_own(self) -> bool:
        if self.supply is not None and self.supply <= 0:
            return False
        if self.window is not None:
            if self._own_counter - self._own_delivered >= self.window:
                return False
        return True

    def _sequencer_send(self, round_index: int) -> None:
        if self._wants_own():
            # The sequencer's own broadcasts are sequenced locally.
            self._own_counter += 1
            if self.supply is not None:
                self.supply -= 1
            mid = (self.pid, self._own_counter)
            self._sequence(mid, round_index)
        others = [p for p in self.members if p != self.pid]
        if not others:
            return
        if self._bcast_queue:
            bcast = self._bcast_queue.popleft()
            self._announced_stable = max(self._announced_stable, bcast.stable_up_to)
            self.send(others, bcast)
        elif self._stable > self._announced_stable:
            self._announced_stable = self._stable
            self.send(others, _StableNotice(stable_up_to=self._stable))

    def _sender_send(self, round_index: int) -> None:
        if self._wants_own():
            self._own_counter += 1
            if self.supply is not None:
                self.supply -= 1
            mid = (self.pid, self._own_counter)
            acks = tuple(self._pending_acks)
            self._pending_acks = []
            self.send(self.sequencer, _Submit(msg=mid, acks=acks))
        elif self._pending_acks:
            acks = tuple(self._pending_acks)
            self._pending_acks = []
            self.send(self.sequencer, _AckOnly(acks=acks))

    # ------------------------------------------------------------------
    def receive(self, round_index: int, src: ProcessId, payload: object) -> None:
        if isinstance(payload, _Submit):
            self._note_acks(payload.acks, round_index)
            self._sequence(payload.msg, round_index)
        elif isinstance(payload, _AckOnly):
            self._note_acks(payload.acks, round_index)
        elif isinstance(payload, _SeqBcast):
            self._known[payload.seq] = payload.msg
            self._known_stable = max(self._known_stable, payload.stable_up_to)
            self._pending_acks.append(payload.seq)
            self._flush(round_index)
        elif isinstance(payload, _StableNotice):
            self._known_stable = max(self._known_stable, payload.stable_up_to)
            self._flush(round_index)
        else:
            raise ProtocolError(f"unexpected payload {payload!r}")

    def _sequence(self, mid: RoundMsgId, round_index: int) -> None:
        if self.pid != self.sequencer:
            raise ProtocolError(f"{self.pid} is not the sequencer")
        seq = self._next_seq
        self._next_seq += 1
        self._known[seq] = mid
        self._ack_counts[seq] = 1  # the sequencer itself
        self._bcast_queue.append(
            _SeqBcast(msg=mid, seq=seq, stable_up_to=self._stable)
        )

    def _note_acks(self, acks: Tuple[int, ...], round_index: int) -> None:
        for seq in acks:
            count = self._ack_counts.get(seq)
            if count is None:
                continue
            self._ack_counts[seq] = count + 1
            if self._ack_counts[seq] >= self.n:
                del self._ack_counts[seq]
        while self._stable + 1 < self._next_seq and (
            self._stable + 1
        ) not in self._ack_counts:
            self._stable += 1
        self._known_stable = max(self._known_stable, self._stable)
        self._flush(round_index)

    def _flush(self, round_index: int) -> None:
        while (
            self._last_delivered + 1 <= self._known_stable
            and self._last_delivered + 1 in self._known
        ):
            seq = self._last_delivered + 1
            self._last_delivered = seq
            mid = self._known[seq]
            self.delivered.append(mid)
            if mid[0] == self.pid:
                self._own_delivered += 1
            if self.deliver_cb is not None:
                self.deliver_cb(self.pid, mid, seq, round_index)
