"""FSR in the round-based model (validates paper §4.3).

A compact re-statement of the FSR automaton under round-model cost
accounting: one send slot per round (to one destination — FSR only ever
sends to its successor), one receive per round, acks ride for free on
data messages and cost a slot only when sent standalone.

The two §4.3 claims validated with this automaton (see
``tests/rounds/test_fsr_round.py`` and the round-model benchmark):

* single-broadcast latency is exactly ``L(i) = 2n + t - i - 1`` rounds
  for a sender at position ``i >= 1`` (and ``n + t - 1`` for the
  leader);
* steady-state throughput is one completed TO-broadcast per round,
  independent of ``n``, ``t``, and the number of senders ``k``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.rounds.engine import RoundProcess
from repro.types import ProcessId


def fsr_latency_formula(n: int, t: int, position: int) -> int:
    """Paper formula ``L(i) = 2n + t - i - 1`` (leader: ``n + t - 1``)."""
    if n == 1:
        return 0
    if position == 0:
        return n + t - 1
    return 2 * n + t - position - 1


# Message identity in the round model: (origin, per-origin counter).
RoundMsgId = Tuple[ProcessId, int]


@dataclass(frozen=True)
class _RAck:
    msg: RoundMsgId
    seq: int
    stable: bool


@dataclass(frozen=True)
class _RFwd:
    msg: RoundMsgId
    origin: ProcessId
    acks: Tuple[_RAck, ...] = ()


@dataclass(frozen=True)
class _RSeq:
    msg: RoundMsgId
    origin: ProcessId
    seq: int
    stable: bool
    acks: Tuple[_RAck, ...] = ()


@dataclass(frozen=True)
class _RAckOnly:
    acks: Tuple[_RAck, ...]


#: Delivery observer: (pid, message id, sequence, round index).
DeliverCb = Callable[[ProcessId, RoundMsgId, int, int], None]


class FSRRoundProcess(RoundProcess):
    """One FSR process in the round model.

    ``supply`` is the number of messages this process wants to
    TO-broadcast (``None`` = saturating sender); the analysis driver
    reads deliveries through ``deliver_cb``.
    """

    def __init__(
        self,
        pid: ProcessId,
        members: Tuple[ProcessId, ...],
        t: int,
        supply: int = 0,
        deliver_cb: Optional[DeliverCb] = None,
        fairness: bool = True,
        window: Optional[int] = None,
        piggyback: bool = True,
    ) -> None:
        super().__init__(pid)
        self.members = members
        self.n = len(members)
        self.t = min(t, self.n - 1)
        self.position = members.index(pid)
        self.supply = supply
        self.deliver_cb = deliver_cb
        self.fairness = fairness
        #: §4.2.2 ablation: when False, acks never ride on data — each
        #: pending ack burns a full send slot of its own.
        self.piggyback = piggyback
        #: Flow-control window: maximum own messages in flight (sent
        #: but not yet locally delivered).  ``None`` disables it.
        self.window = window

        self._own_counter = 0
        self._own_delivered = 0
        #: Data messages waiting to be forwarded (FIFO).
        self._forward: Deque[object] = deque()
        self._forward_list: Set[ProcessId] = set()
        self._acks: List[_RAck] = []
        self._next_seq = 1  # leader only
        self._records: Dict[int, Tuple[RoundMsgId, ProcessId]] = {}
        self._deliverable: Set[int] = set()
        self._last_delivered = 0
        self.delivered: List[RoundMsgId] = []

    # ------------------------------------------------------------------
    @property
    def successor(self) -> ProcessId:
        return self.members[(self.position + 1) % self.n]

    def _position_of(self, pid: ProcessId) -> int:
        return self.members.index(pid)

    # ------------------------------------------------------------------
    def begin_round(self, round_index: int) -> None:
        if self.n == 1:
            self._drain_local_supply(round_index)
            return
        if not self.piggyback and self._acks:
            # Naive policy: each ack is its own message — one full send
            # slot — and goes out ahead of data (no batching either;
            # batching is half of what §4.2.2's optimisation buys).
            ack = self._acks.pop(0)
            self.send(self.successor, _RAckOnly(acks=(ack,)))
            return
        message = self._pick_data_message(round_index)
        if message is not None:
            message = self._with_acks(message)
            self.send(self.successor, message)
        elif self._acks:
            self.send(self.successor, _RAckOnly(acks=tuple(self._acks)))
            self._acks = []

    def _drain_local_supply(self, round_index: int) -> None:
        """Degenerate single-process group: deliver immediately."""
        while self.supply is None or self.supply > 0:
            if self.supply is None and len(self.delivered) > 10_000:
                break
            self._own_counter += 1
            if self.supply is not None:
                self.supply -= 1
            mid = (self.pid, self._own_counter)
            seq = self._next_seq
            self._next_seq += 1
            self._deliver(mid, seq, round_index)
            if self.supply is None:
                break  # one per round is plenty for measurements

    def _wants_own(self) -> bool:
        if self.supply is not None and self.supply <= 0:
            return False
        if self.window is not None:
            outstanding = self._own_counter - self._own_delivered
            if outstanding >= self.window:
                return False
        return True

    def _pick_data_message(self, round_index: int) -> Optional[object]:
        if not self._wants_own():
            if self._forward:
                message = self._forward.popleft()
                self._forward_list.add(self._origin_of(message))
                return message
            return None
        if self.fairness:
            for index, message in enumerate(self._forward):
                if self._origin_of(message) not in self._forward_list:
                    del self._forward[index]
                    self._forward_list.add(self._origin_of(message))
                    return message
        return self._make_own(round_index)

    def _make_own(self, round_index: int) -> object:
        self._own_counter += 1
        if self.supply is not None:
            self.supply -= 1
        self._forward_list.clear()
        mid = (self.pid, self._own_counter)
        if self.position == 0:
            seq = self._next_seq
            self._next_seq += 1
            self._records[seq] = (mid, self.pid)
            stable = self.t == 0
            if stable:
                self._mark(seq)
                self._flush(round_index)
            return _RSeq(msg=mid, origin=self.pid, seq=seq, stable=stable)
        return _RFwd(msg=mid, origin=self.pid)

    def _origin_of(self, message: object) -> ProcessId:
        return message.origin  # type: ignore[attr-defined]

    def _with_acks(self, message: object) -> object:
        if not self._acks:
            return message
        acks = tuple(self._acks)
        self._acks = []
        if isinstance(message, _RFwd):
            return _RFwd(msg=message.msg, origin=message.origin, acks=acks)
        if isinstance(message, _RSeq):
            return _RSeq(
                msg=message.msg, origin=message.origin, seq=message.seq,
                stable=message.stable, acks=acks,
            )
        raise ProtocolError(f"cannot piggyback on {message!r}")

    # ------------------------------------------------------------------
    def receive(self, round_index: int, src: ProcessId, payload: object) -> None:
        if isinstance(payload, _RAckOnly):
            for ack in payload.acks:
                self._handle_ack(ack, round_index)
        elif isinstance(payload, _RFwd):
            for ack in payload.acks:
                self._handle_ack(ack, round_index)
            self._handle_fwd(payload, round_index)
        elif isinstance(payload, _RSeq):
            for ack in payload.acks:
                self._handle_ack(ack, round_index)
            self._handle_seq(payload, round_index)
        else:
            raise ProtocolError(f"unexpected round payload {payload!r}")

    def _queue_ack(self, ack: _RAck) -> None:
        """Queue an ack — or consume it at the stability consumer."""
        successor_pos = (self.position + 1) % self.n
        if ack.stable and successor_pos == self.t:
            return  # covered the ring; nothing left to inform
        self._acks.append(ack)

    def _handle_fwd(self, message: _RFwd, round_index: int) -> None:
        if self.position == 0:
            seq = self._next_seq
            self._next_seq += 1
            self._records[seq] = (message.msg, message.origin)
            stable = self.t == 0
            if stable:
                self._mark(seq)
                self._flush(round_index)
            if self.successor == message.origin:
                self._queue_ack(_RAck(msg=message.msg, seq=seq, stable=stable))
            else:
                self._forward.append(
                    _RSeq(msg=message.msg, origin=message.origin, seq=seq, stable=stable)
                )
        else:
            self._forward.append(_RFwd(msg=message.msg, origin=message.origin))

    def _handle_seq(self, message: _RSeq, round_index: int) -> None:
        self._records.setdefault(message.seq, (message.msg, message.origin))
        stabilising = (not message.stable) and self.position == self.t
        out_stable = message.stable or stabilising
        if out_stable:
            self._mark(message.seq)
            self._flush(round_index)
        if self.successor == message.origin:
            self._queue_ack(
                _RAck(msg=message.msg, seq=message.seq, stable=out_stable)
            )
        else:
            self._forward.append(
                _RSeq(
                    msg=message.msg, origin=message.origin, seq=message.seq,
                    stable=out_stable,
                )
            )

    def _handle_ack(self, ack: _RAck, round_index: int) -> None:
        self._records.setdefault(ack.seq, (ack.msg, ack.msg[0]))
        stabilising = (not ack.stable) and self.position == self.t
        out_stable = ack.stable or stabilising
        if out_stable:
            self._mark(ack.seq)
            self._flush(round_index)
        self._queue_ack(_RAck(msg=ack.msg, seq=ack.seq, stable=out_stable))

    # ------------------------------------------------------------------
    def _mark(self, seq: int) -> None:
        self._deliverable.add(seq)

    def _flush(self, round_index: int) -> None:
        while self._last_delivered + 1 in self._deliverable:
            seq = self._last_delivered + 1
            self._deliverable.discard(seq)
            self._last_delivered = seq
            mid, _origin = self._records[seq]
            self._deliver(mid, seq, round_index)

    def _deliver(self, mid: RoundMsgId, seq: int, round_index: int) -> None:
        self.delivered.append(mid)
        if mid[0] == self.pid:
            self._own_delivered += 1
        if self.deliver_cb is not None:
            self.deliver_cb(self.pid, mid, seq, round_index)
