"""Measurement drivers for the round model.

Two measurements match the paper's analytical section:

* :func:`measure_latency` — single contention-free broadcast, exact
  round count until the last process delivers (paper §4.3.1).
* :func:`measure_throughput` — ``k`` saturating senders, completed
  TO-broadcasts per round over a steady-state window (paper §4.3.2).

``ROUND_PROTOCOLS`` maps protocol names to automaton factories so the
benchmark can sweep every class of Section 2 uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.rounds.agreement_round import DestinationAgreementRoundProcess
from repro.rounds.engine import RoundEngine, RoundProcess
from repro.rounds.fsr_round import FSRRoundProcess
from repro.rounds.history_round import CommunicationHistoryRoundProcess
from repro.rounds.moving_round import MovingSequencerRoundProcess
from repro.rounds.privilege_round import PrivilegeRoundProcess
from repro.rounds.sequencer_round import FixedSequencerRoundProcess
from repro.types import ProcessId

RoundMsgId = Tuple[ProcessId, int]

#: Factory signature: (pid, members, supply, deliver_cb) -> RoundProcess.
RoundFactory = Callable[..., RoundProcess]


def _fsr_factory(
    t: int = 1, fairness: bool = True, piggyback: bool = True
) -> RoundFactory:
    def make(pid, members, supply, deliver_cb, window=None):
        return FSRRoundProcess(
            pid, members, t=t, supply=supply, deliver_cb=deliver_cb,
            fairness=fairness, window=window, piggyback=piggyback,
        )

    return make


def _simple_factory(cls: type) -> RoundFactory:
    def make(pid, members, supply, deliver_cb, window=None):
        return cls(pid, members, supply=supply, deliver_cb=deliver_cb, window=window)

    return make


ROUND_PROTOCOLS: Dict[str, RoundFactory] = {
    "fsr": _fsr_factory(t=1),
    "fixed_sequencer": _simple_factory(FixedSequencerRoundProcess),
    "moving_sequencer": _simple_factory(MovingSequencerRoundProcess),
    "privilege": _simple_factory(PrivilegeRoundProcess),
    "communication_history": _simple_factory(CommunicationHistoryRoundProcess),
    "destination_agreement": _simple_factory(DestinationAgreementRoundProcess),
}


def round_factory(name: str, **kwargs) -> RoundFactory:
    """Look up a round-automaton factory; ``fsr`` accepts ``t``/``fairness``."""
    if name == "fsr":
        return _fsr_factory(**kwargs)
    try:
        base = ROUND_PROTOCOLS[name]
    except KeyError:
        known = ", ".join(sorted(ROUND_PROTOCOLS))
        raise ConfigurationError(f"unknown round protocol {name!r}; known: {known}")
    if kwargs:
        raise ConfigurationError(f"{name!r} accepts no factory options")
    return base


@dataclass
class RoundRunResult:
    """Outcome of one round-model run."""

    rounds: int
    #: message id -> round at which the *last* process delivered it.
    completion_round: Dict[RoundMsgId, int]
    #: per-process delivered message lists (total order check material).
    delivered: Dict[ProcessId, List[RoundMsgId]]
    #: completed broadcasts per round over the measured window.
    throughput: float


class _Observer:
    def __init__(self, n: int) -> None:
        self.n = n
        self.counts: Dict[RoundMsgId, int] = {}
        self.completion: Dict[RoundMsgId, int] = {}

    def __call__(self, pid: ProcessId, mid: RoundMsgId, seq: int, rnd: int) -> None:
        count = self.counts.get(mid, 0) + 1
        self.counts[mid] = count
        if count == self.n:
            self.completion[mid] = rnd


def _build(
    factory: RoundFactory,
    n: int,
    supplies: Dict[ProcessId, Optional[int]],
    window: Optional[int] = None,
) -> Tuple[RoundEngine, List[RoundProcess], _Observer]:
    members = tuple(range(n))
    observer = _Observer(n)
    engine = RoundEngine()
    processes: List[RoundProcess] = []
    for pid in members:
        process = factory(pid, members, supplies.get(pid, 0), observer, window)
        engine.attach(process)
        processes.append(process)
    return engine, processes, observer


def measure_latency(
    factory: RoundFactory,
    n: int,
    sender_position: int,
    max_rounds: int = 10_000,
) -> int:
    """Rounds from a single broadcast until the last process delivers.

    The count includes the sending round itself, matching the paper's
    convention where each hop costs one round.
    """
    supplies: Dict[ProcessId, Optional[int]] = {pid: 0 for pid in range(n)}
    supplies[sender_position] = 1
    engine, _processes, observer = _build(factory, n, supplies)
    engine.run_until(lambda: len(observer.completion) == 1, max_rounds=max_rounds)
    (completion_round,) = observer.completion.values()
    return completion_round + 1  # rounds are 0-indexed


def is_throughput_efficient(
    name: str,
    n: int,
    k: int,
    threshold: float = 0.999,
    **factory_options,
) -> bool:
    """The paper's §1 criterion: ≥ 1 completed broadcast per round.

    Example::

        is_throughput_efficient("fsr", 5, 2, t=1)      # True
        is_throughput_efficient("privilege", 5, 2)     # False
    """
    factory = round_factory(name, **factory_options)
    result = measure_throughput(factory, n, k, warmup_rounds=300,
                                window_rounds=1200)
    return result.throughput >= threshold


def measure_throughput(
    factory: RoundFactory,
    n: int,
    k: int,
    warmup_rounds: int = 200,
    window_rounds: int = 1000,
) -> RoundRunResult:
    """Completed TO-broadcasts per round with ``k`` saturating senders."""
    if not 1 <= k <= n:
        raise ConfigurationError(f"k={k} out of range for n={n}")
    supplies: Dict[ProcessId, Optional[int]] = {pid: 0 for pid in range(n)}
    step = max(1, n // k)
    senders = [(i * step) % n for i in range(k)]
    if len(set(senders)) != k:  # fall back to the first k positions
        senders = list(range(k))
    for pid in senders:
        supplies[pid] = None
    # Closed-loop flow control: each sender keeps a bounded number of
    # its messages in flight (as real transports do via backpressure);
    # an open loop would grow queues without bound for the slower
    # protocol classes and make "throughput" meaningless.
    engine, processes, observer = _build(factory, n, supplies, window=4 * n)
    engine.run_rounds(warmup_rounds)
    completed_before = len(observer.completion)
    engine.run_rounds(window_rounds)
    completed_after = len(observer.completion)
    throughput = (completed_after - completed_before) / window_rounds
    delivered = {
        process.pid: list(getattr(process, "delivered"))
        for process in processes
    }
    return RoundRunResult(
        rounds=engine.round_index,
        completion_round=dict(observer.completion),
        delivered=delivered,
        throughput=throughput,
    )
