"""Moving sequencer in the round model (paper §2.2, Figure 2).

Senders broadcast payloads; the token holder broadcasts sequencing
announcements that simultaneously carry the token to the next holder
(the most charitable accounting — no separate token transmission).
Even so, every process must *receive* both the payload and its
announcement, and the receive slot admits one message per round: the
protocol cannot complete more than one broadcast every two rounds,
which is exactly the paper's Figure 2 argument.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.rounds.engine import RoundProcess
from repro.types import ProcessId

RoundMsgId = Tuple[ProcessId, int]
DeliverCb = Callable[[ProcessId, RoundMsgId, int, int], None]


@dataclass(frozen=True)
class _Data:
    msg: RoundMsgId


@dataclass(frozen=True)
class _Announce:
    """Sequencing announcement; also moves the token to ``next_holder``."""

    assignments: Tuple[Tuple[int, RoundMsgId], ...]
    next_holder: ProcessId
    next_seq: int
    aru: Tuple[Tuple[ProcessId, int], ...]


class MovingSequencerRoundProcess(RoundProcess):
    """One process of the moving-sequencer protocol in the round model."""

    def __init__(
        self,
        pid: ProcessId,
        members: Tuple[ProcessId, ...],
        supply: int = 0,
        deliver_cb: Optional[DeliverCb] = None,
        max_per_token: int = 1,
        window: Optional[int] = None,
    ) -> None:
        super().__init__(pid)
        self.members = members
        self.n = len(members)
        self.supply = supply
        self.deliver_cb = deliver_cb
        self.max_per_token = max_per_token
        self.window = window

        self._own_counter = 0
        self._own_delivered = 0
        self._have_token = pid == members[0]
        self._token_next_seq = 1
        self._token_aru: Dict[ProcessId, int] = {p: 0 for p in members}
        self._payloads: Set[RoundMsgId] = set()
        self._unsequenced: Deque[RoundMsgId] = deque()
        self._sequenced: Set[RoundMsgId] = set()
        self._order: Dict[int, RoundMsgId] = {}
        self._my_contiguous = 0
        self._stable = 0
        self._last_delivered = 0
        self.delivered: List[RoundMsgId] = []

    # ------------------------------------------------------------------
    def _wants_own(self) -> bool:
        if self.supply is not None and self.supply <= 0:
            return False
        if self.window is not None:
            if self._own_counter - self._own_delivered >= self.window:
                return False
        return True

    def begin_round(self, round_index: int) -> None:
        if self._have_token and self._unsequenced:
            self._announce(round_index)
            return
        if self._wants_own():
            self._own_counter += 1
            if self.supply is not None:
                self.supply -= 1
            mid = (self.pid, self._own_counter)
            self._note_data(mid, round_index)
            others = [p for p in self.members if p != self.pid]
            if others:
                self.send(others, _Data(msg=mid))

    def _announce(self, round_index: int) -> None:
        assignments: List[Tuple[int, RoundMsgId]] = []
        while self._unsequenced and len(assignments) < self.max_per_token:
            mid = self._unsequenced.popleft()
            if mid in self._sequenced:
                continue
            assignments.append((self._token_next_seq, mid))
            self._note_assignment(self._token_next_seq, mid, round_index)
            self._token_next_seq += 1
        self._refresh_contiguous()
        self._token_aru[self.pid] = self._my_contiguous
        next_holder = self.members[(self.members.index(self.pid) + 1) % self.n]
        announce = _Announce(
            assignments=tuple(assignments),
            next_holder=next_holder,
            next_seq=self._token_next_seq,
            aru=tuple(sorted(self._token_aru.items())),
        )
        self._have_token = next_holder == self.pid
        self._note_stability(round_index)
        others = [p for p in self.members if p != self.pid]
        if others:
            self.send(others, announce)

    # ------------------------------------------------------------------
    def receive(self, round_index: int, src: ProcessId, payload: object) -> None:
        if isinstance(payload, _Data):
            self._note_data(payload.msg, round_index)
        elif isinstance(payload, _Announce):
            for seq, mid in payload.assignments:
                self._note_assignment(seq, mid, round_index)
            for pid, mark in payload.aru:
                self._token_aru[pid] = max(self._token_aru[pid], mark)
            if payload.next_holder == self.pid:
                self._have_token = True
                self._token_next_seq = max(self._token_next_seq, payload.next_seq)
            self._refresh_contiguous()
            self._token_aru[self.pid] = self._my_contiguous
            self._note_stability(round_index)
        else:
            raise ProtocolError(f"unexpected payload {payload!r}")

    # ------------------------------------------------------------------
    def _note_data(self, mid: RoundMsgId, round_index: int) -> None:
        if mid in self._payloads:
            return
        self._payloads.add(mid)
        if mid not in self._sequenced:
            self._unsequenced.append(mid)
        self._refresh_contiguous()
        self._flush(round_index)

    def _note_assignment(self, seq: int, mid: RoundMsgId, round_index: int) -> None:
        existing = self._order.get(seq)
        if existing is not None and existing != mid:
            raise ProtocolError(f"round-model seq {seq} double-assigned")
        self._order[seq] = mid
        self._sequenced.add(mid)
        self._refresh_contiguous()
        self._flush(round_index)

    def _refresh_contiguous(self) -> None:
        while (
            self._my_contiguous + 1 in self._order
            and self._order[self._my_contiguous + 1] in self._payloads
        ):
            self._my_contiguous += 1

    def _note_stability(self, round_index: int) -> None:
        stable = min(self._token_aru.values())
        if stable > self._stable:
            self._stable = stable
        self._flush(round_index)

    def _flush(self, round_index: int) -> None:
        while (
            self._last_delivered + 1 <= self._stable
            and self._last_delivered + 1 in self._order
            and self._order[self._last_delivered + 1] in self._payloads
        ):
            seq = self._last_delivered + 1
            self._last_delivered = seq
            mid = self._order[seq]
            self.delivered.append(mid)
            if mid[0] == self.pid:
                self._own_delivered += 1
            if self.deliver_cb is not None:
                self.deliver_cb(self.pid, mid, seq, round_index)
