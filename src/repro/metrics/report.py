"""Plain-text table formatting for benchmark output.

The benchmark harnesses print the same rows/series the paper's figures
plot; this module keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table.

    Example::

        print(format_table(["n", "Mb/s"], [[2, 79.1], [5, 79.2]],
                           title="Figure 8"))
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(value) for value in row])
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row_cells, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
