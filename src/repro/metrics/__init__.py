"""Metrics: throughput, latency, fairness, and report formatting."""

from repro.metrics.stats import jain_index, mean, percentile, stddev
from repro.metrics.collector import (
    ExperimentMetrics,
    collect_metrics,
    latency_of_message,
)
from repro.metrics.export import (
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.metrics.report import format_table
from repro.metrics.timeline import delivery_timeline, event_strip, utilisation_bars

__all__ = [
    "result_from_dict",
    "result_from_json",
    "result_to_dict",
    "result_to_json",
    "delivery_timeline",
    "event_strip",
    "utilisation_bars",
    "jain_index",
    "mean",
    "percentile",
    "stddev",
    "ExperimentMetrics",
    "collect_metrics",
    "latency_of_message",
    "format_table",
]
