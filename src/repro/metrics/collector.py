"""Turns raw experiment results into the paper's headline numbers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.results import ExperimentResult
from repro.errors import ConfigurationError
from repro.metrics.stats import jain_index, mean, percentile
from repro.types import MessageId, ProcessId, SimTime
from repro.workloads.driver import WorkloadOutcome


def latency_of_message(
    outcome: WorkloadOutcome, message_id: MessageId
) -> Optional[SimTime]:
    """Submission-to-last-delivery latency of one application message.

    This is the paper's latency definition (§4.3.1): from TO-broadcast
    until the *last* process TO-delivers.
    """
    submit = None
    for record in outcome.result.broadcasts:
        if record.message_id == message_id:
            submit = record.submit_time
            break
    if submit is None:
        raise ConfigurationError(f"{message_id} was never broadcast")
    completion = outcome.result.completion_time(message_id)
    if completion is None:
        return None
    return completion - submit


@dataclass
class ExperimentMetrics:
    """Summary numbers for one workload run.

    ``aggregate_throughput_mbps`` sums per-sender rates, each measured
    over that sender's own completion window — the paper's §5.1 method.
    ``completion_throughput_mbps`` divides the total payload by the
    single window from start to the last completion; the two coincide
    on long balanced runs, and the latter is robust to ramp-up effects
    on short ones (benchmarks report it).
    """

    aggregate_throughput_mbps: float
    completion_throughput_mbps: float
    per_sender_throughput_mbps: Dict[ProcessId, float]
    mean_latency_s: float
    p50_latency_s: float
    p99_latency_s: float
    #: Jain fairness index over per-sender delivered counts.
    fairness: float
    duration_s: SimTime
    messages_completed: int

    def as_row(self) -> List[str]:
        return [
            f"{self.aggregate_throughput_mbps:.1f}",
            f"{self.mean_latency_s * 1e3:.1f}",
            f"{self.p99_latency_s * 1e3:.1f}",
            f"{self.fairness:.3f}",
        ]


def collect_metrics(outcome: WorkloadOutcome) -> ExperimentMetrics:
    """Compute :class:`ExperimentMetrics` from a workload outcome.

    Runs in linear time: submission times and completion times are
    looked up through one-pass indexes, never per-message scans — live
    benchmark runs complete thousands of messages.
    """
    per_sender: Dict[ProcessId, float] = {}
    for sender in outcome.sent:
        value = outcome.sender_throughput_bps(sender)
        if value is not None:
            per_sender[sender] = value / 1e6

    completions = outcome.result.completion_times()
    submit_times = {
        record.message_id: record.submit_time
        for record in outcome.result.broadcasts
    }

    latencies: List[float] = []
    completed = 0
    # Fairness: how evenly the completed messages divide across senders.
    counts: List[float] = []
    for sender, message_ids in outcome.sent.items():
        delivered = 0
        for message_id in message_ids:
            completion = completions.get(message_id)
            if completion is None:
                continue
            delivered += 1
            submit = submit_times.get(message_id)
            if submit is None:
                raise ConfigurationError(f"{message_id} was never broadcast")
            latencies.append(completion - submit)
            completed += 1
        counts.append(float(delivered))

    if not latencies:
        raise ConfigurationError("no message completed; nothing to report")
    last_completion = max(
        completions[mid]
        for ids in outcome.sent.values()
        for mid in ids
        if mid in completions
    )
    total_bytes = completed * outcome.pattern.message_bytes
    completion_mbps = (
        total_bytes * 8.0 / (last_completion - outcome.start_time) / 1e6
    )
    return ExperimentMetrics(
        aggregate_throughput_mbps=sum(per_sender.values()),
        completion_throughput_mbps=completion_mbps,
        per_sender_throughput_mbps=per_sender,
        mean_latency_s=mean(latencies),
        p50_latency_s=percentile(latencies, 50),
        p99_latency_s=percentile(latencies, 99),
        fairness=jain_index(counts),
        duration_s=outcome.result.duration_s,
        messages_completed=completed,
    )
