"""Small, dependency-free statistics helpers.

Kept deliberately simple (no numpy import on the library's hot path);
benchmarks that want fancier analysis can use scipy on the raw data.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input (silent 0 hides bugs)."""
    if not values:
        raise ConfigurationError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation."""
    if not values:
        raise ConfigurationError("stddev of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ConfigurationError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile {q} out of [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high or ordered[low] == ordered[high]:
        # The equality shortcut also guards against interpolation
        # underflow on subnormal values (found by hypothesis).
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n is worst.

    Used to quantify the paper's fairness property (§4.2.3): feed it
    the per-sender delivered-message counts.
    """
    if not values:
        raise ConfigurationError("fairness index of empty sequence")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0  # nobody sent anything: trivially fair
    return (total * total) / (len(values) * squares)
