"""Serialise experiment results to plain JSON-able dictionaries.

Simulation runs are cheap to re-run but benchmark sweeps are not;
exporting results lets notebooks and external tooling consume them
without importing the simulator.  The export is lossless for
everything the metrics and checkers use (delivery logs, app-level
deliveries, broadcasts, crashes, NIC stats); payload *objects* are not
serialised — only their sizes, which is all the library ever relies on.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.cluster.results import AppDelivery, ExperimentResult
from repro.core.api import DeliveryLog
from repro.errors import ConfigurationError
from repro.sim.trace import TraceLog
from repro.types import BroadcastRecord, Delivery, MessageId


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Convert a result into a JSON-compatible dictionary."""
    return {
        "schema": "repro.result/1",
        "duration_s": result.duration_s,
        "delivery_logs": {
            str(pid): [
                {
                    "origin": d.message_id.origin,
                    "local_seq": d.message_id.local_seq,
                    "sequence": d.sequence,
                    "time": d.time,
                    "size_bytes": d.size_bytes,
                }
                for d in log.deliveries
            ]
            for pid, log in result.delivery_logs.items()
        },
        "app_deliveries": {
            str(pid): [
                {
                    "origin": d.origin,
                    "msg_origin": d.message_id.origin,
                    "local_seq": d.message_id.local_seq,
                    "size_bytes": d.size_bytes,
                    "time": d.time,
                }
                for d in deliveries
            ]
            for pid, deliveries in result.app_deliveries.items()
        },
        "broadcasts": [
            {
                "origin": record.message_id.origin,
                "local_seq": record.message_id.local_seq,
                "size_bytes": record.size_bytes,
                "submit_time": record.submit_time,
                "submitter": result.broadcast_origin[record.message_id],
            }
            for record in result.broadcasts
        ],
        "crashed": {str(pid): time for pid, time in result.crashed.items()},
        "nic_stats": {
            str(pid): vars(stats) for pid, stats in result.nic_stats.items()
        },
    }


def result_to_json(result: ExperimentResult, indent: int = 0) -> str:
    """Render a result as a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent or None)


def result_from_dict(data: Dict[str, Any]) -> ExperimentResult:
    """Rebuild a (checker/metrics-equivalent) result from an export.

    Payloads are not restored (exports never carry them) and the trace
    comes back empty; everything the checkers and metrics read is
    reconstructed exactly.
    """
    if data.get("schema") != "repro.result/1":
        raise ConfigurationError(
            f"unknown result schema {data.get('schema')!r}"
        )
    delivery_logs = {}
    for pid_text, entries in data["delivery_logs"].items():
        pid = int(pid_text)
        log = DeliveryLog(process=pid)
        for entry in entries:
            log.deliveries.append(
                Delivery(
                    process=pid,
                    message_id=MessageId(entry["origin"], entry["local_seq"]),
                    sequence=entry["sequence"],
                    time=entry["time"],
                    size_bytes=entry["size_bytes"],
                )
            )
        delivery_logs[pid] = log
    app_deliveries = {
        int(pid_text): [
            AppDelivery(
                process=int(pid_text),
                origin=entry["origin"],
                message_id=MessageId(entry["msg_origin"], entry["local_seq"]),
                size_bytes=entry["size_bytes"],
                time=entry["time"],
            )
            for entry in entries
        ]
        for pid_text, entries in data["app_deliveries"].items()
    }
    broadcasts = []
    broadcast_origin = {}
    for entry in data["broadcasts"]:
        message_id = MessageId(entry["origin"], entry["local_seq"])
        broadcasts.append(
            BroadcastRecord(
                message_id=message_id,
                size_bytes=entry["size_bytes"],
                submit_time=entry["submit_time"],
            )
        )
        broadcast_origin[message_id] = entry["submitter"]

    from repro.net.network import NicStats

    nic_stats = {
        int(pid_text): NicStats(**stats)
        for pid_text, stats in data["nic_stats"].items()
    }
    return ExperimentResult(
        config=None,
        duration_s=data["duration_s"],
        delivery_logs=delivery_logs,
        app_deliveries=app_deliveries,
        broadcasts=broadcasts,
        broadcast_origin=broadcast_origin,
        crashed={int(p): t for p, t in data["crashed"].items()},
        nic_stats=nic_stats,
        trace=TraceLog(enabled=False),
    )


def result_from_json(text: str) -> ExperimentResult:
    """Inverse of :func:`result_to_json`."""
    return result_from_dict(json.loads(text))


def metrics_to_dict(metrics: Any) -> Dict[str, Any]:
    """Convert an :class:`~repro.metrics.collector.ExperimentMetrics`
    into a JSON-compatible dictionary (used by benchmark records such
    as ``BENCH_live.json``)."""
    return {
        "aggregate_throughput_mbps": metrics.aggregate_throughput_mbps,
        "completion_throughput_mbps": metrics.completion_throughput_mbps,
        "per_sender_throughput_mbps": {
            str(pid): value
            for pid, value in metrics.per_sender_throughput_mbps.items()
        },
        "mean_latency_s": metrics.mean_latency_s,
        "p50_latency_s": metrics.p50_latency_s,
        "p99_latency_s": metrics.p99_latency_s,
        "fairness": metrics.fairness,
        "duration_s": metrics.duration_s,
        "messages_completed": metrics.messages_completed,
    }
