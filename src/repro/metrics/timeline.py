"""ASCII timelines and utilisation bars from experiment results.

Dependency-free visual summaries for terminals, used by the examples
and handy when debugging a run:

* :func:`delivery_timeline` — per-process delivery activity over time;
* :func:`utilisation_bars` — per-node TX/RX/CPU busy fractions;
* :func:`event_strip` — marks discrete events (crashes, view changes)
  on the same time axis.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.results import ExperimentResult
from repro.errors import ConfigurationError
from repro.types import ProcessId, SimTime

#: Glyphs for increasing per-bucket activity.
_DENSITY = " .:-=+*#%@"


def _bucketise(times: Sequence[float], start: float, end: float, width: int) -> List[int]:
    counts = [0] * width
    if end <= start:
        return counts
    span = end - start
    for time in times:
        if time < start or time > end:
            continue
        index = min(width - 1, int((time - start) / span * width))
        counts[index] += 1
    return counts


def delivery_timeline(
    result: ExperimentResult,
    width: int = 64,
    start: Optional[SimTime] = None,
    end: Optional[SimTime] = None,
) -> str:
    """Render per-process delivery density over time.

    Each row is one process; each column a time bucket whose glyph
    darkens with the number of deliveries in it.  Crashed processes are
    marked with an ``x`` at their crash bucket.
    """
    if width < 8:
        raise ConfigurationError("timeline width must be at least 8")
    all_times = [
        d.time for log in result.delivery_logs.values() for d in log.deliveries
    ]
    if not all_times:
        return "(no deliveries)"
    lo = start if start is not None else min(all_times)
    hi = end if end is not None else max(all_times)
    if hi <= lo:
        hi = lo + 1e-9

    lines = [
        f"deliveries over t = [{lo:.3f}s .. {hi:.3f}s], "
        f"one column = {(hi - lo) / width * 1e3:.1f} ms"
    ]
    peak = 1
    buckets_by_process: Dict[ProcessId, List[int]] = {}
    for pid in sorted(result.delivery_logs):
        times = [d.time for d in result.delivery_logs[pid].deliveries]
        buckets = _bucketise(times, lo, hi, width)
        buckets_by_process[pid] = buckets
        peak = max(peak, max(buckets) if buckets else 0)
    for pid, buckets in buckets_by_process.items():
        glyphs = []
        for count in buckets:
            level = 0 if count == 0 else 1 + int(
                (len(_DENSITY) - 2) * min(1.0, count / peak)
            )
            glyphs.append(_DENSITY[level])
        row = "".join(glyphs)
        crash_time = result.crashed.get(pid)
        if crash_time is not None and lo <= crash_time <= hi:
            index = min(width - 1, int((crash_time - lo) / (hi - lo) * width))
            row = row[:index] + "x" + row[index + 1:]
        lines.append(f"p{pid:<3d} |{row}|")
    return "\n".join(lines)


def utilisation_bars(
    result: ExperimentResult, width: int = 40
) -> str:
    """Render per-node TX / RX / CPU busy fractions as bars.

    This is the visual form of the paper's bottleneck argument: for a
    sequencer protocol the sequencer's bars saturate while everyone
    else idles; for FSR all nodes look alike.
    """
    duration = result.duration_s
    if duration <= 0:
        return "(zero-length run)"
    lines = [f"utilisation over {duration:.2f}s simulated"]
    for pid in sorted(result.nic_stats):
        stats = result.nic_stats[pid]
        for label, busy in (
            ("tx ", stats.tx_busy_s),
            ("rx ", stats.rx_busy_s),
            ("cpu", stats.cpu_busy_s),
        ):
            fraction = min(1.0, busy / duration)
            filled = int(round(fraction * width))
            bar = "#" * filled + "." * (width - filled)
            lines.append(f"p{pid:<3d} {label} |{bar}| {fraction * 100:5.1f}%")
    return "\n".join(lines)


def event_strip(
    events: Iterable[Tuple[SimTime, str]],
    start: SimTime,
    end: SimTime,
    width: int = 64,
) -> str:
    """Render labelled point events on a time axis.

    Example::

        event_strip([(1.0, "crash p0"), (1.05, "view 1")], 0, 2)
    """
    if end <= start:
        raise ConfigurationError("event strip needs end > start")
    axis = [" "] * width
    labels = []
    for time, label in sorted(events):
        if time < start or time > end:
            continue
        index = min(width - 1, int((time - start) / (end - start) * width))
        axis[index] = "^"
        labels.append(f"  ^ t={time:.3f}s  {label}")
    line = "".join(axis)
    return "\n".join([f"     |{line}|"] + labels)
