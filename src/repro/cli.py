"""Command-line interface: run paper experiments without writing code.

Usage (also via ``python -m repro``):

.. code-block:: console

    python -m repro run --protocol fsr --n 5 --senders 5 --messages 40
    python -m repro latency --max-n 10
    python -m repro compare --n 5
    python -m repro rounds --n 6 --k 2
    python -m repro chaos --seeds 50
    python -m repro figures

Every subcommand prints the same aligned tables the benchmark harnesses
produce, so CLI output can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.analysis import ThroughputPrediction
from repro.metrics import collect_metrics, format_table
from repro.net import NetworkParams
from repro.rounds.analysis import (
    ROUND_PROTOCOLS,
    measure_latency,
    measure_throughput,
    round_factory,
)
from repro.rounds.fsr_round import fsr_latency_formula
from repro.workloads import KToNPattern, run_workload


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.batching import batching_config_from_flags
    from repro.errors import ConfigurationError

    protocol = args.protocol
    if args.shards > 1 and protocol == "fsr":
        protocol = "multiring"
    if protocol == "multiring":
        from repro.protocols.multiring.config import MultiRingConfig

        protocol_config = MultiRingConfig(
            shards=args.shards, fsr=FSRConfig(t=args.t)
        )
    elif protocol == "fsr":
        protocol_config = FSRConfig(t=args.t)
    else:
        protocol_config = None
    try:
        batching = batching_config_from_flags(
            args.batch_bytes, args.batch_messages, args.batch_delay
        )
    except ConfigurationError as exc:
        print(f"invalid batch config: {exc}", file=sys.stderr)
        return 2
    if batching is not None:
        return _run_packed(args, protocol, protocol_config, batching)
    cluster = build_cluster(
        ClusterConfig(
            n=args.n, protocol=protocol, protocol_config=protocol_config,
            seed=args.seed,
        )
    )
    pattern = KToNPattern.k_to_n(
        args.senders, args.n, args.messages, message_bytes=args.size
    )
    outcome = run_workload(cluster, pattern, max_time_s=args.max_time)
    metrics = collect_metrics(outcome)
    print(format_table(
        ["metric", "value"],
        [
            ["protocol", protocol],
            ["rings", args.shards],
            ["processes", args.n],
            ["senders", args.senders],
            ["messages/sender", args.messages],
            ["message bytes", args.size],
            ["throughput (Mb/s)", f"{metrics.completion_throughput_mbps:.1f}"],
            ["mean latency (ms)", f"{metrics.mean_latency_s * 1e3:.1f}"],
            ["p99 latency (ms)", f"{metrics.p99_latency_s * 1e3:.1f}"],
            ["fairness (Jain)", f"{metrics.fairness:.3f}"],
            ["simulated time (s)", f"{outcome.result.duration_s:.2f}"],
        ],
        title="k-to-n experiment",
    ))
    return 0


def _run_packed(
    args: argparse.Namespace, protocol: str, protocol_config, batching
) -> int:
    """``repro run`` with ``--batch-*``: packed senders over the protocol.

    Wraps every node's protocol in :class:`BatchingBroadcast` — the same
    packing the live transport's fast path applies at the frame level —
    and reports pack statistics next to goodput.
    """
    from repro.core.api import BroadcastListener
    from repro.core.batching import BatchingBroadcast

    cluster = build_cluster(
        ClusterConfig(
            n=args.n, protocol=protocol, protocol_config=protocol_config,
            seed=args.seed,
        )
    )
    count = [0]
    sources = {
        pid: BatchingBroadcast(
            cluster.sim, node.protocol, origin=pid, config=batching
        )
        for pid, node in cluster.nodes.items()
    }
    sources[0].set_listener(
        BroadcastListener(lambda *a: count.__setitem__(0, count[0] + 1))
    )
    cluster.start()
    cluster.run(until=0.05)
    start = cluster.sim.now
    for pid in range(args.senders):
        for _ in range(args.messages):
            sources[pid].broadcast(b"x" * args.size)
    for pid in range(args.senders):
        sources[pid].flush()
    total = args.messages * args.senders
    cluster.run_until(lambda: count[0] >= total, max_time_s=args.max_time)
    elapsed = cluster.sim.now - start
    packs = sum(s.stats_packs_sent for s in sources.values())
    packed = sum(s.stats_messages_packed for s in sources.values())
    print(format_table(
        ["metric", "value"],
        [
            ["protocol", f"{protocol} + packing"],
            ["rings", args.shards],
            ["processes", args.n],
            ["senders", args.senders],
            ["messages/sender", args.messages],
            ["message bytes", args.size],
            ["max pack bytes", batching.max_batch_bytes],
            ["max pack messages", batching.max_batch_messages],
            ["max pack delay (ms)", f"{batching.max_delay_s * 1e3:.2f}"],
            ["packs sent", packs],
            ["messages packed", packed],
            ["mean pack size", f"{packed / packs:.1f}" if packs else "-"],
            [
                "goodput (Mb/s)",
                f"{total * args.size * 8 / elapsed / 1e6:.1f}"
                if elapsed > 0 else "-",
            ],
            ["simulated time (s)", f"{cluster.sim.now:.2f}"],
        ],
        title="k-to-n experiment (packed)",
    ))
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    rows = []
    for n in range(2, args.max_n + 1):
        cluster = build_cluster(
            ClusterConfig(n=n, protocol="fsr", protocol_config=FSRConfig(t=args.t))
        )
        cluster.start()
        cluster.run(until=0.05)
        mid = cluster.broadcast(args.position % n, size_bytes=args.size)
        cluster.run_until(lambda: cluster.all_correct_delivered(1), max_time_s=60)
        latency = cluster.results().completion_time(mid) - 0.05
        rows.append([n, f"{latency * 1e3:.1f}"])
    print(format_table(
        ["n", "latency (ms)"], rows,
        title=f"Contention-free latency, {args.size} B messages (Figure 6)",
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    protocols = [
        "fsr", "fixed_sequencer", "moving_sequencer",
        "privilege", "communication_history", "destination_agreement",
    ]
    rows = []
    for protocol in protocols:
        cluster = build_cluster(ClusterConfig(n=args.n, protocol=protocol))
        pattern = KToNPattern.n_to_n(
            args.n, max(1, args.messages), message_bytes=args.size
        )
        outcome = run_workload(cluster, pattern, max_time_s=args.max_time)
        metrics = collect_metrics(outcome)
        rows.append([protocol, f"{metrics.completion_throughput_mbps:.1f}"])
    print(format_table(
        ["protocol", "Mb/s"], rows,
        title=f"{args.n}-to-{args.n} aggregate throughput, {args.size} B messages",
    ))
    return 0


def _cmd_rounds(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(ROUND_PROTOCOLS):
        factory = round_factory("fsr", t=args.t) if name == "fsr" else round_factory(name)
        result = measure_throughput(factory, args.n, args.k)
        latency = measure_latency(factory, args.n, 1 % args.n, max_rounds=5000)
        rows.append([name, f"{result.throughput:.3f}", latency])
    print(format_table(
        ["protocol", "msgs/round", "L(1) rounds"], rows,
        title=f"Round model: n={args.n}, k={args.k} saturating senders",
    ))
    formula = fsr_latency_formula(args.n, args.t, 1 % args.n)
    print(f"\nFSR formula check: L(1) = 2n + t - 2 = {formula}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    params = NetworkParams.fast_ethernet()
    prediction = ThroughputPrediction.for_paper_setup(
        params, n=args.n, message_bytes=args.size
    )
    print(format_table(
        ["quantity", "Mb/s"],
        [
            ["raw point-to-point goodput", f"{prediction.raw_mbps:.1f}"],
            ["FSR maximum throughput", f"{prediction.fsr_mbps:.1f}"],
            ["fixed sequencer maximum", f"{prediction.fixed_sequencer_mbps:.1f}"],
        ],
        title=f"Closed-form predictions (n={args.n}, {args.size} B messages)",
    ))
    return 0


def _cmd_chaos_live(args: argparse.Namespace) -> int:
    from repro.chaos.live import (
        LIVE_SCENARIOS,
        LiveChaosConfig,
        LiveSeedOutcome,
        run_live_campaign,
    )
    from repro.errors import ConfigurationError

    if args.fd_violation:
        print(
            "--fd-violation is simulator-only: a live run always uses the "
            "real heartbeat detector",
            file=sys.stderr,
        )
        return 2
    scenarios = (
        tuple(args.scenario)
        if args.scenario
        else ("crash_storm", "repeated_leader_crash")
    )
    unknown = sorted(set(scenarios) - set(LIVE_SCENARIOS))
    if unknown:
        print(
            f"scenario(s) not live-portable: {', '.join(unknown)} "
            f"(live supports: {', '.join(LIVE_SCENARIOS)})",
            file=sys.stderr,
        )
        return 2
    try:
        config = LiveChaosConfig(
            seeds=args.seeds if args.seeds is not None else 25,
            base_seed=args.base_seed,
            scenarios=scenarios,
            n=args.n if args.n is not None else 5,
            t=args.t if args.t is not None else 2,
        )
    except ConfigurationError as exc:
        print(f"invalid live campaign config: {exc}", file=sys.stderr)
        return 2

    print(
        f"live chaos: {config.seeds} seeds over {', '.join(scenarios)} "
        f"(n={config.n}, t={config.t}, SIGKILL mid-run, ~{config.duration_s:.0f}s "
        "traffic per run)...",
        flush=True,
    )

    def progress(outcome: LiveSeedOutcome) -> None:
        marker = "FAIL" if outcome.failed else "ok"
        outage = (
            "-" if outcome.outage_ms is None else f"{outcome.outage_ms:7.1f}"
        )
        suspicion = (
            f"  FALSE-SUSPECT {outcome.false_suspicions}"
            if outcome.false_suspicions
            else ""
        )
        print(
            f"  seed {outcome.seed:>4}  {outcome.scenario:<24} {marker:<5}"
            f" kills {len(outcome.killed)}  outage {outage} ms"
            f"  wall {outcome.wall_s:5.1f} s{suspicion}",
            flush=True,
        )

    report = run_live_campaign(
        config, progress=progress if args.verbose else None
    )

    rows = []
    for name, row in sorted(report.scenario_summary().items()):
        mean = row["mean_outage_ms"]
        worst = row["max_outage_ms"]
        rows.append([
            name,
            row["seeds"],
            row["failures"],
            row["kills"],
            row["false_suspicions"],
            "-" if mean is None else f"{mean:.1f}",
            "-" if worst is None else f"{worst:.1f}",
        ])
    print(format_table(
        ["scenario", "seeds", "failures", "kills", "false susp.",
         "mean outage (ms)", "max outage (ms)"],
        rows,
        title=(
            f"Live chaos campaign: {len(report.outcomes)} seeds, "
            f"n={config.n}, t={config.t}, base seed {config.base_seed}"
        ),
    ))

    for outcome in report.failures:
        print(f"\nFAIL seed {outcome.seed} ({outcome.scenario}):")
        print(f"  {outcome.verdict.summary()}")
        if outcome.false_suspicions:
            print(
                f"  false suspicions: nodes {outcome.false_suspicions} "
                "evicted with no kill and no partition excuse"
            )
        print("  schedule (replayable live or on the simulator):")
        for line in outcome.schedule.reproducer().splitlines():
            print(f"    {line}")

    if args.report:
        report.write_json(args.report)
        print(f"\nfull report written to {args.report}")
    bench = args.bench if args.bench is not None else "BENCH_chaos_live.json"
    if bench:
        report.write_bench(bench)
        print(f"bench record written to {bench}")

    verdict = "GREEN" if report.ok else "RED"
    print(f"\nlive campaign {verdict}: {len(report.failures)} failing seed(s)")
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.live:
        if args.shards > 1:
            print("--shards is simulator-only for chaos runs", file=sys.stderr)
            return 2
        return _cmd_chaos_live(args)

    from repro.chaos import (
        CampaignConfig,
        SeedOutcome,
        run_campaign,
    )
    from repro.chaos.schedules import (
        DEFAULT_SCENARIOS,
        MULTIRING_SCENARIOS,
        SCENARIOS,
        UNSOUND_SCENARIOS,
    )
    from repro.errors import ConfigurationError

    multiring = args.shards > 1
    default_scenarios = MULTIRING_SCENARIOS if multiring else DEFAULT_SCENARIOS
    scenarios = tuple(args.scenario) if args.scenario else default_scenarios
    if args.fd_violation:
        scenarios += tuple(s for s in UNSOUND_SCENARIOS if s not in scenarios)
    known = set(SCENARIOS) | set(UNSOUND_SCENARIOS)
    unknown = sorted(set(scenarios) - known)
    if unknown:
        print(
            f"unknown scenario(s): {', '.join(unknown)} "
            f"(available: {', '.join(sorted(known))})",
            file=sys.stderr,
        )
        return 2
    unsound_requested = sorted(set(scenarios) & set(UNSOUND_SCENARIOS))
    if unsound_requested and not args.fd_violation:
        print(
            f"scenario(s) {', '.join(unsound_requested)} violate the "
            "perfect-failure-detector assumption; pass --fd-violation to "
            "opt in",
            file=sys.stderr,
        )
        return 2

    try:
        config = CampaignConfig(
            seeds=args.seeds if args.seeds is not None else 50,
            base_seed=args.base_seed,
            scenarios=scenarios,
            n=args.n if args.n is not None else 6,
            t=args.t if args.t is not None else 2,
            protocol="multiring" if multiring else "fsr",
            shards=args.shards if multiring else 2,
        )
    except ConfigurationError as exc:
        print(f"invalid campaign config: {exc}", file=sys.stderr)
        return 2

    def progress(outcome: SeedOutcome) -> None:
        marker = "ok"
        if outcome.failed:
            marker = "FAIL"
        elif not outcome.verdict.ok:
            marker = "unsound"
        print(
            f"  seed {outcome.seed:>4}  {outcome.scenario:<24} {marker:<8}"
            f" sim {outcome.sim_duration_s:6.2f} s",
            flush=True,
        )

    report = run_campaign(config, progress=progress if args.verbose else None)

    rows = []
    for name, row in sorted(report.scenario_summary().items()):
        outage = row["mean_outage_ms"]
        rows.append([
            name,
            row["seeds"],
            row["failures"],
            "-" if outage is None else f"{outage:.1f}",
        ])
    print(format_table(
        ["scenario", "seeds", "failures", "mean outage (ms)"], rows,
        title=(
            f"Chaos campaign: {len(report.outcomes)} seeds, "
            f"n={config.n}, t={config.t}, base seed {config.base_seed}"
        ),
    ))

    for outcome in report.unsound_outcomes:
        if not outcome.verdict.ok:
            print(
                f"\n[unsound, documented] seed {outcome.seed} "
                f"({outcome.scenario}): {outcome.verdict.summary()}"
            )
    for outcome in report.failures:
        print(f"\nFAIL seed {outcome.seed} ({outcome.scenario}):")
        print(f"  {outcome.verdict.summary()}")
        reproducer = outcome.minimal or outcome.schedule
        label = "minimal reproducer" if outcome.minimal else "schedule"
        print(f"  {label}:")
        for line in reproducer.reproducer().splitlines():
            print(f"    {line}")

    if args.report:
        report.write_json(args.report)
        print(f"\nfull report written to {args.report}")
    bench = args.bench if args.bench is not None else "BENCH_chaos.json"
    if bench:
        report.write_bench(bench)
        print(f"bench record written to {bench}")

    verdict = "GREEN" if report.ok else "RED"
    print(f"\ncampaign {verdict}: {len(report.failures)} failing seed(s)")
    return 0 if report.ok else 1


def _cmd_live(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.live.runner import LiveClusterSpec, run_live_benchmark

    try:
        spec = LiveClusterSpec(
            processes=args.processes,
            senders=args.senders,
            t=args.t,
            shards=args.shards,
            message_bytes=args.size,
            duration_s=args.duration,
            window=args.window,
            sim_compare=not args.no_sim,
            spans=args.spans or args.timeline is not None,
            log_level=args.log_level,
            batch_bytes=args.batch_bytes,
            batch_messages=args.batch_messages,
            batch_delay_s=args.batch_delay,
        )
    except ReproError as exc:
        print(f"invalid live spec: {exc}", file=sys.stderr)
        return 2

    print(
        f"launching {spec.processes} node processes on {spec.host} "
        f"({spec.senders} sender(s), {spec.message_bytes} B messages, "
        f"{spec.duration_s:.0f}s"
        + (", spans on" if spec.spans else "")
        + ")...",
        flush=True,
    )
    try:
        payload = run_live_benchmark(
            spec, out_path=args.out, timeline_path=args.timeline
        )
    except ReproError as exc:
        print(f"live run failed: {exc}", file=sys.stderr)
        return 1

    live = payload["live"]["metrics"]
    rows = [
        ["processes", spec.processes],
        ["rings", spec.shards],
        ["senders", spec.senders],
        ["message bytes", spec.message_bytes],
        ["messages completed", live["messages_completed"]],
        ["live throughput (Mb/s)", f"{live['completion_throughput_mbps']:.1f}"],
        ["live mean latency (ms)", f"{live['mean_latency_s'] * 1e3:.1f}"],
        ["live p99 latency (ms)", f"{live['p99_latency_s'] * 1e3:.1f}"],
    ]
    node_stats = payload["live"]["node_stats"].values()
    if any(s.get("batches_sent") for s in node_stats):
        flushes = sum(s["flushes"] for s in node_stats)
        frames = sum(s["frames_sent"] for s in node_stats)
        rows.append(["tx flushes (syscalls)", flushes])
        rows.append([
            "frames per flush", f"{frames / flushes:.1f}" if flushes else "-"
        ])
        rows.append([
            "acks ridden on data",
            sum(s["acks_ridden"] for s in node_stats),
        ])
    if payload["sim"] is not None:
        sim = payload["sim"]["metrics"]
        rows.append(
            ["sim throughput (Mb/s)", f"{sim['completion_throughput_mbps']:.1f}"]
        )
        rows.append(
            ["sim mean latency (ms)", f"{sim['mean_latency_s'] * 1e3:.1f}"]
        )
    rows.append(["model FSR max (Mb/s)", f"{payload['model']['fsr_mbps']:.1f}"])
    order = payload["order_check"]
    rows.append(["total order", "OK" if order["ok"] else "VIOLATED"])
    print(format_table(["metric", "value"], rows, title="live loopback cluster"))
    breakdown = payload["live"].get("stage_breakdown")
    if breakdown is not None:
        from repro.obs.analyze import StageBreakdown

        print()
        print(StageBreakdown.from_dict(breakdown).render_table())
    if not order["ok"]:
        print(f"order check failed: {order['error']}", file=sys.stderr)
        return 1
    if payload["timed_out"]:
        print("warning: at least one node hit its run cap before "
              "quiescence", file=sys.stderr)
    print(f"\nbench record written to {args.out}")
    if args.timeline:
        print(f"merged span timeline written to {args.timeline}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.serve.runner import ServeSpec, run_serve_benchmark

    try:
        spec = ServeSpec(
            processes=args.processes,
            t=args.t,
            lease_s=args.lease,
            heartbeat_timeout_s=args.heartbeat_timeout,
            rates=(
                [float(r) for r in args.rate]
                if args.rate
                else [100.0, 300.0, 600.0]
            ),
            kill_leader=not args.no_kill,
            kill_rate=args.kill_rate,
            duration_s=args.duration,
            sessions=args.sessions,
            read_fraction=args.read_fraction,
            keys=args.keys,
            zipf_s=args.zipf,
            value_bytes=args.value_bytes,
            retry_timeout_s=args.retry_timeout,
            seed=args.seed,
            trace_requests=args.trace_requests,
            metrics_port=args.metrics_port,
            profile_dir=args.profile,
            log_level=args.log_level,
        )
    except (ReproError, ValueError) as exc:
        print(f"invalid serve spec: {exc}", file=sys.stderr)
        return 2

    points = len(spec.rates) + (1 if spec.kill_leader else 0)
    print(
        f"serve benchmark: {spec.processes} nodes, {spec.sessions} sessions, "
        f"{points} load point(s) x {spec.duration_s:.0f}s"
        + (", leader SIGKILL mid-load" if spec.kill_leader else "")
        + (", request tracing on" if spec.trace_requests else "")
        + (", live /metrics on" if spec.metrics_port is not None else "")
        + "...",
        flush=True,
    )
    try:
        payload = run_serve_benchmark(
            spec,
            out_path=args.out,
            timeline_path=args.timeline,
            prom_path=args.prom,
        )
    except ReproError as exc:
        print(f"serve benchmark failed: {exc}", file=sys.stderr)
        return 1

    rows = []
    for point in payload["curve"]:
        load = point["load"]
        rows.append([
            f"{point['offered_rps']:.0f}",
            "-" if point["achieved_rps"] is None
            else f"{point['achieved_rps']:.0f}",
            _ms(load["latency_p50_s"]),
            _ms(load["latency_p99_s"]),
            load["retries"],
            load["cached_responses"],
            load["local_reads"],
            "-",
        ])
    kill = payload["kill_point"]
    if kill is not None:
        load = kill["load"]
        rows.append([
            f"{kill['offered_rps']:.0f} (kill)",
            "-" if kill["achieved_rps"] is None
            else f"{kill['achieved_rps']:.0f}",
            _ms(load["latency_p50_s"]),
            _ms(load["latency_p99_s"]),
            load["retries"],
            load["cached_responses"],
            load["local_reads"],
            "-" if kill["outage_s"] is None else f"{kill['outage_s'] * 1e3:.0f}",
        ])
    print(format_table(
        ["offered rps", "achieved", "p50 (ms)", "p99 (ms)", "retries",
         "cached", "local reads", "outage (ms)"],
        rows,
        title=(
            f"session service: {spec.processes} nodes, lease "
            f"{spec.lease_s:.1f}s, {spec.read_fraction:.0%} reads"
        ),
    ))
    all_points = payload["curve"] + ([kill] if kill else [])
    for point in all_points:
        if point.get("request_breakdown"):
            from repro.obs.reqtrace import RequestBreakdown

            print()
            print(f"offered {point['offered_rps']:.0f} rps"
                  + (" (kill)" if point.get("killed") is not None else "")
                  + ":")
            print(
                RequestBreakdown.from_dict(
                    point["request_breakdown"]
                ).render_table()
            )
    parity = [
        point["scrape_parity_ok"]
        for point in all_points
        if point.get("scrape_parity_ok") is not None
    ]
    if parity:
        print(
            "\nlive /metrics scrape parity: "
            + ("OK" if all(parity) else "DIVERGED")
        )
    if args.timeline:
        print(f"merged trace timeline written to {args.timeline}")
    if args.prom:
        print(f"mid-load Prometheus scrape written to {args.prom}")
    violations = [
        v
        for point in all_points
        for v in point["violations"]
    ]
    for violation in violations:
        print(f"INVARIANT VIOLATED: {violation}", file=sys.stderr)
    verdict = "GREEN" if payload["invariants_ok"] else "RED"
    print(f"\nexactly-once battery {verdict}; bench record written to {args.out}")
    return 0 if payload["invariants_ok"] else 1


def _ms(value) -> str:
    return "-" if value is None else f"{value * 1e3:.1f}"


def _cmd_serve_load(args: argparse.Namespace) -> int:
    # Client-side entrypoint: open-loop load against a *running* serve
    # cluster (its nodes print their serve addresses at start).
    import asyncio as _asyncio
    import logging as _logging

    from repro.serve.loadgen import LoadConfig, run_load

    if args.log_level:
        _logging.basicConfig(
            level=getattr(_logging, args.log_level.upper(), _logging.INFO),
            format="%(asctime)s %(levelname)s %(name)s %(message)s",
        )
    addresses = []
    for spec in args.address:
        host, _, port = spec.rpartition(":")
        try:
            addresses.append((host or "127.0.0.1", int(port)))
        except ValueError:
            print(f"bad address {spec!r} (want host:port)", file=sys.stderr)
            return 2
    try:
        config = LoadConfig(
            rate_rps=args.rate,
            sessions=args.sessions,
            duration_s=args.duration,
            read_fraction=args.read_fraction,
            keys=args.keys,
            zipf_s=args.zipf,
            value_bytes=args.value_bytes,
            retry_timeout_s=args.retry_timeout,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"invalid load config: {exc}", file=sys.stderr)
        return 2
    stats = _asyncio.run(run_load(addresses, config))
    summary = stats.to_dict()
    print(format_table(
        ["metric", "value"],
        [
            ["offered", summary["offered"]],
            ["completed", summary["completed"]],
            ["retries", summary["retries"]],
            ["reconnects", summary["reconnects"]],
            ["cached responses", summary["cached_responses"]],
            ["local reads", summary["local_reads"]],
            ["errors", summary["errors"]],
            ["timeouts", summary["timeouts"]],
            ["mean latency (ms)", _ms(summary["latency_mean_s"])],
            ["p50 latency (ms)", _ms(summary["latency_p50_s"])],
            ["p99 latency (ms)", _ms(summary["latency_p99_s"])],
        ],
        title=f"open-loop load: {args.rate:.0f} rps over {args.sessions} sessions",
    ))
    return 0 if summary["timeouts"] == 0 else 1


def _cmd_live_node(args: argparse.Namespace) -> int:
    # Internal: one cluster member, spawned by ``repro live``.
    import json as _json

    from repro.live.node import LiveNodeConfig, run_node

    with open(args.config) as fh:
        config = LiveNodeConfig.from_dict(_json.load(fh))
    record = run_node(config)
    with open(args.out, "w") as fh:
        _json.dump(record, fh)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json as _json
    import os as _os

    from repro.errors import ReproError
    from repro.obs.analyze import (
        link_utilization,
        prometheus_snapshot,
        render_link_table,
        ring_breakdowns,
        stage_breakdown,
    )
    from repro.obs.journal import Timeline

    if not _os.path.exists(args.timeline):
        print(f"timeline not found: {args.timeline}", file=sys.stderr)
        return 2
    timeline = Timeline.load_jsonl(args.timeline)
    if not timeline.events:
        print(f"no span events in {args.timeline}", file=sys.stderr)
        return 2
    try:
        breakdown = stage_breakdown(timeline)
    except ReproError as exc:
        print(f"stage breakdown failed: {exc}", file=sys.stderr)
        return 1

    requests_bd = None
    if timeline.requests:
        from repro.obs.reqtrace import request_breakdown

        try:
            requests_bd = request_breakdown(timeline.requests)
        except ReproError as exc:
            print(f"request breakdown failed: {exc}", file=sys.stderr)
            return 1

    rings = timeline.rings()
    print(
        f"timeline: {len(timeline.events)} span events, "
        f"{len(timeline.messages())} messages, "
        + (f"{len(timeline.requests)} request events, " if timeline.requests
           else "")
        + f"{len(timeline.nodes())} nodes, "
        + (f"{len(rings)} rings, " if rings else "")
        + f"{timeline.duration_s:.3f}s"
        + (f", {timeline.dropped} spans dropped" if timeline.dropped else "")
    )
    print()
    print(breakdown.render_table())
    if requests_bd is not None:
        print()
        print(requests_bd.render_table())
    if rings:
        for ring, ring_bd in sorted(
            ring_breakdowns(timeline).items()
        ):
            print()
            print(f"ring {ring}:")
            print(ring_bd.render_table())
    print()
    print(render_link_table(link_utilization(timeline)))
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(prometheus_snapshot(timeline, breakdown, requests_bd))
        print(f"\nPrometheus snapshot written to {args.prom}")
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(
                {
                    "schema": "repro.obs_report/1",
                    "stage_breakdown": breakdown.to_dict(),
                    "request_breakdown": (
                        requests_bd.to_dict()
                        if requests_bd is not None
                        else None
                    ),
                    "spans_dropped": timeline.dropped,
                    "ring_stage_breakdowns": {
                        str(ring): ring_bd.to_dict()
                        for ring, ring_bd in sorted(
                            ring_breakdowns(timeline).items()
                        )
                    },
                    "links": [
                        link.to_dict()
                        for link in link_utilization(timeline)
                    ],
                },
                fh,
                indent=2,
            )
            fh.write("\n")
        print(f"JSON report written to {args.json}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    # Delegate to the example script's sections to avoid duplication.
    import importlib.util
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "examples" / "paper_figures.py"
    if not script.exists():
        print("examples/paper_figures.py not found; run from a source checkout",
              file=sys.stderr)
        return 1
    spec = importlib.util.spec_from_file_location("paper_figures", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    module.main()
    return 0


def _add_batch_flags(sub: argparse.ArgumentParser) -> None:
    """The shared ``--batch-*`` trio: message packing / frame coalescing.

    On ``repro run`` they wrap the protocol in the simulator's
    ``BatchingBroadcast``; on ``repro live`` they arm the transport fast
    path (DESIGN.md §5g).  Setting any one enables batching with the
    others at their defaults; nonpositive values are rejected with the
    same ``ConfigurationError`` on both paths.
    """
    sub.add_argument("--batch-bytes", type=int, default=None,
                     help="flush a batch at this many payload bytes "
                          "(default 60000 when batching is on)")
    sub.add_argument("--batch-messages", type=int, default=None,
                     help="flush a batch at this many messages "
                          "(default 64 when batching is on)")
    sub.add_argument("--batch-delay", type=float, default=None,
                     help="max seconds the head message waits before "
                          "its batch flushes (default 0.002)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FSR total order broadcast (DSN 2006) experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one k-to-n experiment")
    run.add_argument("--protocol", default="fsr")
    run.add_argument("--shards", type=int, default=1,
                     help="concurrent FSR rings; >1 switches to the "
                          "multiring protocol (ISS-style bucket "
                          "multiplexing)")
    run.add_argument("--n", type=int, default=5)
    run.add_argument("--t", type=int, default=1)
    run.add_argument("--senders", type=int, default=5)
    run.add_argument("--messages", type=int, default=20)
    run.add_argument("--size", type=int, default=100_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--max-time", type=float, default=600.0)
    _add_batch_flags(run)
    run.set_defaults(func=_cmd_run)

    latency = sub.add_parser("latency", help="Figure 6 latency sweep")
    latency.add_argument("--max-n", type=int, default=10)
    latency.add_argument("--t", type=int, default=1)
    latency.add_argument("--position", type=int, default=1)
    latency.add_argument("--size", type=int, default=100_000)
    latency.set_defaults(func=_cmd_latency)

    compare = sub.add_parser("compare", help="all protocols, one table")
    compare.add_argument("--n", type=int, default=5)
    compare.add_argument("--messages", type=int, default=10)
    compare.add_argument("--size", type=int, default=100_000)
    compare.add_argument("--max-time", type=float, default=600.0)
    compare.set_defaults(func=_cmd_compare)

    rounds = sub.add_parser("rounds", help="round-model comparison (§2/§4.3)")
    rounds.add_argument("--n", type=int, default=5)
    rounds.add_argument("--k", type=int, default=2)
    rounds.add_argument("--t", type=int, default=1)
    rounds.set_defaults(func=_cmd_rounds)

    predict = sub.add_parser("predict", help="closed-form model predictions")
    predict.add_argument("--n", type=int, default=5)
    predict.add_argument("--size", type=int, default=100_000)
    predict.set_defaults(func=_cmd_predict)

    chaos = sub.add_parser(
        "chaos", help="seeded fault-injection campaign with invariant gating"
    )
    chaos.add_argument("--live", action="store_true",
                       help="run against a real localhost cluster: one OS "
                            "process per node, SIGKILL at fault times, "
                            "recovery verified on merged journals")
    chaos.add_argument("--seeds", type=int, default=None,
                       help="number of seeded runs (default 50; 25 with --live)")
    chaos.add_argument("--base-seed", type=int, default=0,
                       help="first seed; campaign is deterministic per base seed")
    chaos.add_argument("--scenario", action="append", default=None,
                       help="restrict to a scenario (repeatable); default: all "
                            "sound scenarios round-robin (crash_storm + "
                            "repeated_leader_crash with --live)")
    chaos.add_argument("--n", type=int, default=None,
                       help="cluster size (default 6; 5 with --live)")
    chaos.add_argument("--t", type=int, default=None,
                       help="FSR backup count (default 2)")
    chaos.add_argument("--shards", type=int, default=1,
                       help="concurrent FSR rings; >1 campaigns the "
                            "multiring protocol and adds the ring_crash "
                            "scenario (simulator only)")
    chaos.add_argument("--fd-violation", action="store_true",
                       help="also run the unsound failure-detector scenario "
                            "(its violations are documented, not failures; "
                            "simulator only)")
    chaos.add_argument("--report", default=None, metavar="PATH",
                       help="write the full JSON campaign report here")
    chaos.add_argument("--bench", default=None, metavar="PATH",
                       help="write the bench record here ('' to skip; default "
                            "BENCH_chaos.json, BENCH_chaos_live.json with "
                            "--live)")
    chaos.add_argument("--verbose", action="store_true",
                       help="print one line per seed as it finishes")
    chaos.set_defaults(func=_cmd_chaos)

    live = sub.add_parser(
        "live", help="real multi-process TCP loopback cluster benchmark"
    )
    live.add_argument("--processes", type=int, default=4,
                      help="cluster size (one OS process per FSR process)")
    live.add_argument("--senders", type=int, default=1,
                      help="how many ring positions drive traffic")
    live.add_argument("--t", type=int, default=1)
    live.add_argument("--shards", type=int, default=1,
                      help="concurrent FSR rings (multiring protocol); "
                           "each extra ring gets its own TCP port per node")
    live.add_argument("--size", type=int, default=100_000,
                      help="message payload bytes (paper default 100 kB)")
    live.add_argument("--duration", type=float, default=5.0,
                      help="seconds of traffic per sender")
    live.add_argument("--window", type=int, default=4,
                      help="closed-loop in-flight messages per sender")
    live.add_argument("--no-sim", action="store_true",
                      help="skip the simulator comparison run")
    live.add_argument("--out", default="BENCH_live.json", metavar="PATH",
                      help="bench record path (default BENCH_live.json)")
    live.add_argument("--spans", action="store_true",
                      help="trace per-message lifecycle spans + telemetry "
                           "on every node (JSONL journals, merged and "
                           "analyzed into a latency stage breakdown)")
    live.add_argument("--timeline", default=None, metavar="PATH",
                      help="write the merged cross-node span timeline here "
                           "(implies --spans); feed it to 'repro obs'")
    live.add_argument("--log-level", default=None, metavar="LEVEL",
                      help="per-node structured logging level "
                           "(DEBUG/INFO/WARNING; default off)")
    _add_batch_flags(live)
    live.set_defaults(func=_cmd_live)

    serve = sub.add_parser(
        "serve",
        help="client-serving KV service benchmark: latency-vs-load curve "
             "with exactly-once sessions and a leader-kill point",
    )
    serve.add_argument("--processes", type=int, default=3,
                       help="cluster size (one serve port per node)")
    serve.add_argument("--t", type=int, default=1)
    serve.add_argument("--lease", type=float, default=0.8, metavar="S",
                       help="leader lease for local reads, seconds")
    serve.add_argument("--heartbeat-timeout", type=float, default=1.0,
                       metavar="S",
                       help="failure-detector timeout (drives view-change "
                            "latency after the kill)")
    serve.add_argument("--rate", action="append", type=float, default=None,
                       metavar="RPS",
                       help="offered-load point (repeatable; default "
                            "100 300 600)")
    serve.add_argument("--duration", type=float, default=4.0,
                       help="load window per point, seconds")
    serve.add_argument("--sessions", type=int, default=20,
                       help="concurrent light client sessions")
    serve.add_argument("--read-fraction", type=float, default=0.5)
    serve.add_argument("--keys", type=int, default=100,
                       help="key space size (Zipf-distributed access)")
    serve.add_argument("--zipf", type=float, default=1.1,
                       help="Zipf skew parameter")
    serve.add_argument("--value-bytes", type=int, default=64)
    serve.add_argument("--retry-timeout", type=float, default=1.0,
                       metavar="S",
                       help="client retry/failover timeout per request")
    serve.add_argument("--no-kill", action="store_true",
                       help="skip the kill-the-leader-mid-load point")
    serve.add_argument("--kill-rate", type=float, default=None, metavar="RPS",
                       help="offered rate for the kill point (default: "
                            "middle of the sweep)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--out", default="BENCH_serve.json", metavar="PATH",
                       help="bench record path (default BENCH_serve.json)")
    serve.add_argument("--trace-requests", action="store_true",
                       help="end-to-end request tracing: per-request "
                            "queue/replication/apply/respond breakdown, "
                            "cross-checked against measured latency")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="serve live /metrics + /healthz per node; 0 "
                            "picks ephemeral ports, otherwise node i "
                            "listens on PORT+i")
    serve.add_argument("--profile", default=None, metavar="DIR",
                       help="CPU-profile every node; flamegraph-collapsed "
                            "stacks land in DIR/node<i>.collapsed.txt")
    serve.add_argument("--log-level", default=None, metavar="LEVEL",
                       help="node process logging level (INFO, DEBUG, ...)")
    serve.add_argument("--timeline", default=None, metavar="PATH",
                       help="write the merged request/span timeline here "
                            "(needs --trace-requests); feed it to "
                            "'repro obs'")
    serve.add_argument("--prom", default=None, metavar="PATH",
                       help="save the mid-load Prometheus scrape here "
                            "(needs --metrics-port)")
    serve.set_defaults(func=_cmd_serve)

    serve_load = sub.add_parser(
        "serve-load",
        help="open-loop session load against an already-running serve "
             "cluster",
    )
    serve_load.add_argument("address", nargs="+", metavar="HOST:PORT",
                            help="serve addresses to fan sessions over")
    serve_load.add_argument("--rate", type=float, default=200.0,
                            help="total offered load, requests/second")
    serve_load.add_argument("--duration", type=float, default=5.0)
    serve_load.add_argument("--sessions", type=int, default=20)
    serve_load.add_argument("--read-fraction", type=float, default=0.5)
    serve_load.add_argument("--keys", type=int, default=100)
    serve_load.add_argument("--zipf", type=float, default=1.1)
    serve_load.add_argument("--value-bytes", type=int, default=64)
    serve_load.add_argument("--retry-timeout", type=float, default=1.0)
    serve_load.add_argument("--seed", type=int, default=0)
    serve_load.add_argument("--log-level", default=None, metavar="LEVEL",
                            help="client-side logging level (INFO, DEBUG, "
                                 "...); surfaces failover/retry decisions")
    serve_load.set_defaults(func=_cmd_serve_load)

    obs = sub.add_parser(
        "obs", help="analyze a merged span timeline (latency stages, links)"
    )
    obs.add_argument("timeline", metavar="TIMELINE",
                     help="timeline JSONL from 'repro live --timeline PATH'")
    obs.add_argument("--prom", default=None, metavar="PATH",
                     help="write a Prometheus text snapshot here")
    obs.add_argument("--json", default=None, metavar="PATH",
                     help="write the stage/link report as JSON here")
    obs.set_defaults(func=_cmd_obs)

    live_node = sub.add_parser(
        "live-node", help=argparse.SUPPRESS
    )
    live_node.add_argument("--config", required=True)
    live_node.add_argument("--out", required=True)
    live_node.set_defaults(func=_cmd_live_node)

    figures = sub.add_parser("figures", help="regenerate Table 1 + Figures 6-9")
    figures.set_defaults(func=_cmd_figures)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
