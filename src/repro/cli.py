"""Command-line interface: run paper experiments without writing code.

Usage (also via ``python -m repro``):

.. code-block:: console

    python -m repro run --protocol fsr --n 5 --senders 5 --messages 40
    python -m repro latency --max-n 10
    python -m repro compare --n 5
    python -m repro rounds --n 6 --k 2
    python -m repro figures

Every subcommand prints the same aligned tables the benchmark harnesses
produce, so CLI output can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.analysis import ThroughputPrediction
from repro.metrics import collect_metrics, format_table
from repro.net import NetworkParams
from repro.rounds.analysis import (
    ROUND_PROTOCOLS,
    measure_latency,
    measure_throughput,
    round_factory,
)
from repro.rounds.fsr_round import fsr_latency_formula
from repro.workloads import KToNPattern, run_workload


def _cmd_run(args: argparse.Namespace) -> int:
    protocol_config = FSRConfig(t=args.t) if args.protocol == "fsr" else None
    cluster = build_cluster(
        ClusterConfig(
            n=args.n, protocol=args.protocol, protocol_config=protocol_config,
            seed=args.seed,
        )
    )
    pattern = KToNPattern.k_to_n(
        args.senders, args.n, args.messages, message_bytes=args.size
    )
    outcome = run_workload(cluster, pattern, max_time_s=args.max_time)
    metrics = collect_metrics(outcome)
    print(format_table(
        ["metric", "value"],
        [
            ["protocol", args.protocol],
            ["processes", args.n],
            ["senders", args.senders],
            ["messages/sender", args.messages],
            ["message bytes", args.size],
            ["throughput (Mb/s)", f"{metrics.completion_throughput_mbps:.1f}"],
            ["mean latency (ms)", f"{metrics.mean_latency_s * 1e3:.1f}"],
            ["p99 latency (ms)", f"{metrics.p99_latency_s * 1e3:.1f}"],
            ["fairness (Jain)", f"{metrics.fairness:.3f}"],
            ["simulated time (s)", f"{outcome.result.duration_s:.2f}"],
        ],
        title="k-to-n experiment",
    ))
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    rows = []
    for n in range(2, args.max_n + 1):
        cluster = build_cluster(
            ClusterConfig(n=n, protocol="fsr", protocol_config=FSRConfig(t=args.t))
        )
        cluster.start()
        cluster.run(until=0.05)
        mid = cluster.broadcast(args.position % n, size_bytes=args.size)
        cluster.run_until(lambda: cluster.all_correct_delivered(1), max_time_s=60)
        latency = cluster.results().completion_time(mid) - 0.05
        rows.append([n, f"{latency * 1e3:.1f}"])
    print(format_table(
        ["n", "latency (ms)"], rows,
        title=f"Contention-free latency, {args.size} B messages (Figure 6)",
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    protocols = [
        "fsr", "fixed_sequencer", "moving_sequencer",
        "privilege", "communication_history", "destination_agreement",
    ]
    rows = []
    for protocol in protocols:
        cluster = build_cluster(ClusterConfig(n=args.n, protocol=protocol))
        pattern = KToNPattern.n_to_n(
            args.n, max(1, args.messages), message_bytes=args.size
        )
        outcome = run_workload(cluster, pattern, max_time_s=args.max_time)
        metrics = collect_metrics(outcome)
        rows.append([protocol, f"{metrics.completion_throughput_mbps:.1f}"])
    print(format_table(
        ["protocol", "Mb/s"], rows,
        title=f"{args.n}-to-{args.n} aggregate throughput, {args.size} B messages",
    ))
    return 0


def _cmd_rounds(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(ROUND_PROTOCOLS):
        factory = round_factory("fsr", t=args.t) if name == "fsr" else round_factory(name)
        result = measure_throughput(factory, args.n, args.k)
        latency = measure_latency(factory, args.n, 1 % args.n, max_rounds=5000)
        rows.append([name, f"{result.throughput:.3f}", latency])
    print(format_table(
        ["protocol", "msgs/round", "L(1) rounds"], rows,
        title=f"Round model: n={args.n}, k={args.k} saturating senders",
    ))
    formula = fsr_latency_formula(args.n, args.t, 1 % args.n)
    print(f"\nFSR formula check: L(1) = 2n + t - 2 = {formula}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    params = NetworkParams.fast_ethernet()
    prediction = ThroughputPrediction.for_paper_setup(
        params, n=args.n, message_bytes=args.size
    )
    print(format_table(
        ["quantity", "Mb/s"],
        [
            ["raw point-to-point goodput", f"{prediction.raw_mbps:.1f}"],
            ["FSR maximum throughput", f"{prediction.fsr_mbps:.1f}"],
            ["fixed sequencer maximum", f"{prediction.fixed_sequencer_mbps:.1f}"],
        ],
        title=f"Closed-form predictions (n={args.n}, {args.size} B messages)",
    ))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    # Delegate to the example script's sections to avoid duplication.
    import importlib.util
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "examples" / "paper_figures.py"
    if not script.exists():
        print("examples/paper_figures.py not found; run from a source checkout",
              file=sys.stderr)
        return 1
    spec = importlib.util.spec_from_file_location("paper_figures", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FSR total order broadcast (DSN 2006) experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one k-to-n experiment")
    run.add_argument("--protocol", default="fsr")
    run.add_argument("--n", type=int, default=5)
    run.add_argument("--t", type=int, default=1)
    run.add_argument("--senders", type=int, default=5)
    run.add_argument("--messages", type=int, default=20)
    run.add_argument("--size", type=int, default=100_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--max-time", type=float, default=600.0)
    run.set_defaults(func=_cmd_run)

    latency = sub.add_parser("latency", help="Figure 6 latency sweep")
    latency.add_argument("--max-n", type=int, default=10)
    latency.add_argument("--t", type=int, default=1)
    latency.add_argument("--position", type=int, default=1)
    latency.add_argument("--size", type=int, default=100_000)
    latency.set_defaults(func=_cmd_latency)

    compare = sub.add_parser("compare", help="all protocols, one table")
    compare.add_argument("--n", type=int, default=5)
    compare.add_argument("--messages", type=int, default=10)
    compare.add_argument("--size", type=int, default=100_000)
    compare.add_argument("--max-time", type=float, default=600.0)
    compare.set_defaults(func=_cmd_compare)

    rounds = sub.add_parser("rounds", help="round-model comparison (§2/§4.3)")
    rounds.add_argument("--n", type=int, default=5)
    rounds.add_argument("--k", type=int, default=2)
    rounds.add_argument("--t", type=int, default=1)
    rounds.set_defaults(func=_cmd_rounds)

    predict = sub.add_parser("predict", help="closed-form model predictions")
    predict.add_argument("--n", type=int, default=5)
    predict.add_argument("--size", type=int, default=100_000)
    predict.set_defaults(func=_cmd_predict)

    figures = sub.add_parser("figures", help="regenerate Table 1 + Figures 6-9")
    figures.set_defaults(func=_cmd_figures)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
