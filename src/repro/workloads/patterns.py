"""Workload pattern descriptions.

A pattern says who broadcasts, how much, how large, and at what rate.
Patterns are pure data; the driver interprets them.  The three classes
cover every traffic scenario the paper names in §4: a single sender,
several steady streams, simultaneous bursts, and all-senders steady
streams — plus the throttled-rate senders Figure 7 requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.types import ProcessId

#: The paper's benchmark message size (100 KB).
PAPER_MESSAGE_BYTES = 100_000


@dataclass(frozen=True)
class WorkloadPattern:
    """Base class: ``senders`` broadcast ``messages_per_sender`` each."""

    senders: Sequence[ProcessId] = (0,)
    messages_per_sender: int = 10
    message_bytes: int = PAPER_MESSAGE_BYTES

    def __post_init__(self) -> None:
        if not self.senders:
            raise ConfigurationError("a workload needs at least one sender")
        if self.messages_per_sender < 1:
            raise ConfigurationError("messages_per_sender must be positive")
        if self.message_bytes < 1:
            raise ConfigurationError("message_bytes must be positive")

    @property
    def total_messages(self) -> int:
        return len(self.senders) * self.messages_per_sender

    @property
    def total_bytes(self) -> int:
        return self.total_messages * self.message_bytes


@dataclass(frozen=True)
class KToNPattern(WorkloadPattern):
    """The paper's k-to-n benchmark: k senders blast m messages each.

    All messages are submitted at the start barrier; the transport's
    backpressure paces them (closed-loop, like the paper's benchmark
    which hands the middleware all messages up front).
    """

    @classmethod
    def n_to_n(cls, n: int, messages_per_sender: int,
               message_bytes: int = PAPER_MESSAGE_BYTES) -> "KToNPattern":
        """All ``n`` processes send (Figures 6 and 8)."""
        return cls(
            senders=tuple(range(n)),
            messages_per_sender=messages_per_sender,
            message_bytes=message_bytes,
        )

    @classmethod
    def k_to_n(cls, k: int, n: int, messages_per_sender: int,
               message_bytes: int = PAPER_MESSAGE_BYTES) -> "KToNPattern":
        """First ``k`` of ``n`` processes send (Figure 9)."""
        if not 1 <= k <= n:
            raise ConfigurationError(f"k={k} out of range for n={n}")
        return cls(
            senders=tuple(range(k)),
            messages_per_sender=messages_per_sender,
            message_bytes=message_bytes,
        )


@dataclass(frozen=True)
class BurstPattern(WorkloadPattern):
    """Senders emit bursts separated by idle gaps (paper §4 scenarios).

    Each sender sends ``burst_size`` messages, waits ``gap_s``, and
    repeats until its ``messages_per_sender`` budget is spent.
    """

    burst_size: int = 5
    gap_s: float = 50e-3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.burst_size < 1:
            raise ConfigurationError("burst_size must be positive")
        if self.gap_s < 0:
            raise ConfigurationError("gap_s cannot be negative")


@dataclass(frozen=True)
class ThrottledPattern(WorkloadPattern):
    """Senders submit at a fixed aggregate offered load (Figure 7).

    ``offered_load_bps`` is split evenly across senders; each sender
    submits one message every ``message_bytes * 8 * k / offered_load``
    seconds.
    """

    offered_load_bps: float = 50e6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.offered_load_bps <= 0:
            raise ConfigurationError("offered_load_bps must be positive")

    def per_sender_interval_s(self) -> float:
        per_sender_bps = self.offered_load_bps / len(self.senders)
        return self.message_bytes * 8.0 / per_sender_bps
