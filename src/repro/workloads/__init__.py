"""Workload generation and the paper's measurement protocol (§5.1).

:mod:`~repro.workloads.patterns` describes *what* to send (k-to-n
streams, bursts, throttled rates); :mod:`~repro.workloads.driver`
applies a pattern to a built cluster and runs it to completion using
the same measurement conventions as the paper: all senders start
together behind a barrier, each sender's clock stops when the last
process has delivered its last message.
"""

from repro.workloads.patterns import (
    BurstPattern,
    KToNPattern,
    ThrottledPattern,
    WorkloadPattern,
)
from repro.workloads.driver import WorkloadOutcome, run_workload

__all__ = [
    "BurstPattern",
    "KToNPattern",
    "ThrottledPattern",
    "WorkloadPattern",
    "WorkloadOutcome",
    "run_workload",
]
