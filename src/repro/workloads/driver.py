"""Applies a workload pattern to a cluster and runs it to completion.

Measurement protocol (paper §5.1):

* a barrier synchronises the start — realised here by letting the
  cluster finish view installation before the start timestamp is taken;
* every sender's clock stops when the *last* process delivers that
  sender's *last* message (the paper uses a small ack for this and
  verifies its latency is negligible; with a simulator we can read the
  exact delivery times instead);
* per-sender throughput = bytes sent / (stop - start); the aggregate is
  the sum over senders — exactly the quantity Figures 8 and 9 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.harness import Cluster
from repro.cluster.results import ExperimentResult
from repro.errors import ConfigurationError, SimulationError
from repro.types import MessageId, ProcessId, SimTime
from repro.workloads.patterns import (
    BurstPattern,
    KToNPattern,
    ThrottledPattern,
    WorkloadPattern,
)


@dataclass
class WorkloadOutcome:
    """A finished workload run plus its measurement anchors."""

    result: ExperimentResult
    start_time: SimTime
    #: Submission order per sender (for fairness and latency analysis).
    sent: Dict[ProcessId, List[MessageId]]
    pattern: WorkloadPattern

    def sender_stop_time(self, sender: ProcessId) -> Optional[SimTime]:
        """When the last process delivered this sender's last message."""
        last = self.sent[sender][-1]
        return self.result.completion_time(last)

    def sender_throughput_bps(self, sender: ProcessId) -> Optional[float]:
        stop = self.sender_stop_time(sender)
        if stop is None or stop <= self.start_time:
            return None
        sent_bytes = len(self.sent[sender]) * self.pattern.message_bytes
        return sent_bytes * 8.0 / (stop - self.start_time)

    def aggregate_throughput_bps(self) -> float:
        """Sum of per-sender throughputs (the paper's Figures 8/9 metric)."""
        total = 0.0
        for sender in self.sent:
            value = self.sender_throughput_bps(sender)
            if value is None:
                raise SimulationError(
                    f"sender {sender} never completed; cannot report throughput"
                )
            total += value
        return total


def run_workload(
    cluster: Cluster,
    pattern: WorkloadPattern,
    settle_s: float = 50e-3,
    max_time_s: float = 600.0,
) -> WorkloadOutcome:
    """Run ``pattern`` on ``cluster`` until every message completes.

    The cluster must be freshly built; the driver starts it, lets the
    initial view settle (the "barrier"), injects traffic per the
    pattern, and runs until all correct processes have delivered
    everything (``max_time_s`` of simulated time bounds liveness bugs).
    """
    cluster.start()
    cluster.run(until=settle_s)
    start_time = cluster.sim.now
    sent: Dict[ProcessId, List[MessageId]] = {pid: [] for pid in pattern.senders}

    if isinstance(pattern, ThrottledPattern):
        _inject_throttled(cluster, pattern, sent)
    elif isinstance(pattern, BurstPattern):
        _inject_bursts(cluster, pattern, sent)
    elif isinstance(pattern, (KToNPattern, WorkloadPattern)):
        _inject_blast(cluster, pattern, sent)
    else:  # pragma: no cover - defensive
        raise ConfigurationError(f"unknown pattern type {type(pattern).__name__}")

    expected = pattern.total_messages
    cluster.run_until(
        lambda: cluster.all_correct_delivered(expected),
        step_s=50e-3,
        max_time_s=max_time_s,
    )
    # Let stragglers (acks, stability traffic) settle so results are
    # complete; bounded in case a protocol keeps perpetual timers.
    cluster.run(until=cluster.sim.now + settle_s)
    return WorkloadOutcome(
        result=cluster.results(),
        start_time=start_time,
        sent=sent,
        pattern=pattern,
    )


def _inject_blast(
    cluster: Cluster,
    pattern: WorkloadPattern,
    sent: Dict[ProcessId, List[MessageId]],
) -> None:
    for index in range(pattern.messages_per_sender):
        for sender in pattern.senders:
            message_id = cluster.broadcast(sender, size_bytes=pattern.message_bytes)
            sent[sender].append(message_id)


def _inject_bursts(
    cluster: Cluster,
    pattern: BurstPattern,
    sent: Dict[ProcessId, List[MessageId]],
) -> None:
    remaining = {pid: pattern.messages_per_sender for pid in pattern.senders}

    def send_burst(sender: ProcessId) -> None:
        if cluster.injector.is_crashed(sender):
            return
        count = min(pattern.burst_size, remaining[sender])
        for _ in range(count):
            message_id = cluster.broadcast(sender, size_bytes=pattern.message_bytes)
            sent[sender].append(message_id)
        remaining[sender] -= count
        if remaining[sender] > 0:
            cluster.sim.schedule(pattern.gap_s, send_burst, sender)

    for sender in pattern.senders:
        send_burst(sender)


def _inject_throttled(
    cluster: Cluster,
    pattern: ThrottledPattern,
    sent: Dict[ProcessId, List[MessageId]],
) -> None:
    interval = pattern.per_sender_interval_s()
    remaining = {pid: pattern.messages_per_sender for pid in pattern.senders}

    def send_one(sender: ProcessId) -> None:
        if remaining[sender] <= 0 or cluster.injector.is_crashed(sender):
            return
        message_id = cluster.broadcast(sender, size_bytes=pattern.message_bytes)
        sent[sender].append(message_id)
        remaining[sender] -= 1
        if remaining[sender] > 0:
            cluster.sim.schedule(interval, send_one, sender)

    for offset, sender in enumerate(pattern.senders):
        # Stagger the senders so submissions do not synchronise.
        cluster.sim.schedule(offset * interval / len(pattern.senders), send_one, sender)
