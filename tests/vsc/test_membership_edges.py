"""Edge-case tests for the membership automaton's message handling."""

import pytest

from repro.errors import MembershipError
from repro.vsc.membership import (
    FlushState,
    GroupMembership,
    _FlushAck,
    _FlushReq,
    _JoinReq,
    _ViewInstall,
)
from tests.vsc.test_membership import RecordingClient, build


def test_stale_flush_req_ignored():
    sim, injector, memberships, clients = build(n=3)
    for membership in memberships.values():
        membership.start()
    sim.run()
    target = memberships[1]
    # Drive a genuine flush to raise the epoch.
    injector.schedule_crash(2, time=0.1)
    sim.run()
    blocks_before = clients[1].blocks
    # Now replay an old-epoch request: must not re-block.
    target._on_message(0, _FlushReq(epoch=0, coordinator=0, proposed=(0, 1)))
    sim.run()
    assert clients[1].blocks == blocks_before


def test_stale_view_install_ignored():
    sim, injector, memberships, clients = build(n=3)
    for membership in memberships.values():
        membership.start()
    sim.run()
    injector.schedule_crash(2, time=0.1)
    sim.run()
    views_before = len(clients[1].views)
    current = memberships[1].view.view_id
    memberships[1]._on_message(
        0, _ViewInstall(epoch=current, members=(0, 1, 2), state=None, coordinator=0)
    )
    sim.run()
    assert len(clients[1].views) == views_before


def test_flush_ack_for_unknown_attempt_ignored():
    sim, injector, memberships, clients = build(n=3)
    for membership in memberships.values():
        membership.start()
    sim.run()
    memberships[0]._on_message(
        1, _FlushAck(epoch=99, sender=1, state=FlushState(payload=None))
    )
    sim.run()  # must not raise or install anything
    assert len(clients[0].views) == 1


def test_duplicate_join_requests_coalesce():
    sim, injector, memberships, clients = build(n=3)
    # A silent node 7 exists on the network but never answers.
    injector.network.attach(7)
    for membership in memberships.values():
        membership.start()
    sim.run()
    memberships[0]._on_message(5, _JoinReq(joiner=7))
    memberships[0]._on_message(5, _JoinReq(joiner=7))
    sim.run()
    # The joiner never acks, so the flush stalls — but the join must be
    # pending exactly once.
    assert memberships[0]._pending_joins == [7]


def test_crashed_member_ignores_everything():
    sim, injector, memberships, clients = build(n=3)
    for membership in memberships.values():
        membership.start()
    sim.run()
    memberships[2].stop()
    views = len(clients[2].views)
    memberships[2]._on_message(
        0, _ViewInstall(epoch=5, members=(0, 1, 2), state=None, coordinator=0)
    )
    sim.run()
    assert len(clients[2].views) == views


def test_all_members_suspected_is_fatal():
    """Suspecting the entire membership is unrecoverable and loud."""
    sim, injector, memberships, clients = build(n=2)
    for membership in memberships.values():
        membership.start()
    sim.run()
    detector = memberships[0].detector
    detector._suspect(1)
    with pytest.raises(MembershipError):
        detector._suspect(0)  # nobody left to coordinate


def test_member_not_in_initial_membership_rejected():
    from repro.failure import OracleFailureDetector
    from repro.net import ChannelStack, Network, NetworkParams
    from repro.net.dispatch import LayerDemux
    from repro.sim import Simulator

    sim = Simulator()
    params = NetworkParams(cpu_per_message_s=0, cpu_per_byte_s=0)
    net = Network(sim, params)
    stack = ChannelStack(sim, net.attach(0), params)
    port = LayerDemux(stack).port("vsc")
    detector = OracleFailureDetector(sim, owner=0)
    with pytest.raises(MembershipError):
        GroupMembership(sim, port, detector, me=0, initial_members=(1, 2))


def test_start_is_idempotent():
    sim, injector, memberships, clients = build(n=2)
    memberships[0].start()
    memberships[0].start()
    sim.run()
    assert len(clients[0].views) == 1
