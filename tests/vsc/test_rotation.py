"""Tests for leader rotation (paper §4.3.1)."""

import pytest

from repro.checker import check_all, check_integrity, check_total_order
from repro.core.fsr import FSRConfig
from tests.conftest import small_cluster


def test_rotation_moves_leader_to_tail():
    cluster = small_cluster(n=4)
    cluster.start()
    cluster.run(until=5e-3)
    assert cluster.nodes[0].protocol.ring.leader == 0

    cluster.nodes[2].membership.request_leader_rotation()
    cluster.run_until(
        lambda: cluster.nodes[1].protocol.ring.leader == 1, max_time_s=10
    )
    ring = cluster.nodes[1].protocol.ring
    assert ring.members == (1, 2, 3, 0)
    # The old leader is still a member, now at the tail.
    assert cluster.nodes[0].protocol.ring.members == (1, 2, 3, 0)


def test_rotation_preserves_total_order_under_load():
    cluster = small_cluster(n=5, protocol_config=FSRConfig(t=1))
    cluster.start()
    cluster.run(until=5e-3)
    for pid in range(5):
        for _ in range(6):
            cluster.broadcast(pid, size_bytes=5_000)
    cluster.sim.schedule(0.02, cluster.nodes[0].membership.request_leader_rotation)
    cluster.run_until(lambda: cluster.all_correct_delivered(30), max_time_s=60)
    cluster.run(until=cluster.sim.now + 10e-3)
    result = cluster.results()
    check_all(result)
    assert cluster.nodes[1].protocol.ring.leader == 1


def test_repeated_rotation_cycles_every_leader():
    cluster = small_cluster(n=3)
    cluster.start()
    cluster.run(until=5e-3)
    leaders = [cluster.nodes[0].protocol.ring.leader]
    for _ in range(3):
        cluster.nodes[0].membership.request_leader_rotation()
        current = leaders[-1]
        cluster.run_until(
            lambda: cluster.nodes[1].protocol.ring.leader != current,
            max_time_s=10,
        )
        leaders.append(cluster.nodes[1].protocol.ring.leader)
    assert leaders == [0, 1, 2, 0]


def test_rotation_during_broadcast_keeps_all_messages():
    """Nothing is lost: in-flight traffic is recovered by the flush."""
    cluster = small_cluster(n=4, protocol_config=FSRConfig(t=1))
    cluster.start()
    cluster.run(until=5e-3)
    for pid in range(4):
        for _ in range(5):
            cluster.broadcast(pid, size_bytes=20_000)
    cluster.sim.schedule(0.01, cluster.nodes[3].membership.request_leader_rotation)
    cluster.run_until(lambda: cluster.all_correct_delivered(20), max_time_s=60)
    result = cluster.results()
    check_integrity(result)
    check_total_order(result)
    for deliveries in result.app_deliveries.values():
        assert len(deliveries) == 20
