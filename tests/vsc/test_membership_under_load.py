"""Membership behaviour while the data plane is saturated.

These tests pin the properties we had to engineer for explicitly (see
DESIGN.md §5 items 6-8): flushes complete promptly even when the ring
is full of 100 KB messages, and joins during load integrate cleanly.
"""

import pytest

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.checker import check_integrity, check_total_order, check_uniformity


def _loaded_cluster(n=5, per_sender=40):
    cluster = build_cluster(
        ClusterConfig(n=n, protocol="fsr", protocol_config=FSRConfig(t=1),
                      detection_delay_s=20e-3)
    )
    cluster.start()
    cluster.run(until=0.05)
    for pid in range(n):
        for _ in range(per_sender):
            cluster.broadcast(pid, size_bytes=100_000)
    return cluster


def test_flush_completes_promptly_under_full_load():
    """Crash-to-new-view time is detection + control RTTs + state
    transfer — not the length of the data backlog."""
    cluster = _loaded_cluster()
    cluster.schedule_crash(0, time=0.5)
    cluster.run_until(
        lambda: cluster.nodes[1].protocol.view.view_id > 0,
        step_s=5e-3,
        max_time_s=60,
    )
    view_time = cluster.sim.now
    assert view_time - 0.5 < 0.25, (
        f"view change took {view_time - 0.5:.3f}s under load"
    )


def test_every_survivor_installs_quickly():
    """Per-receiver pruned installs keep the install fan-out cheap."""
    cluster = _loaded_cluster()
    cluster.schedule_crash(0, time=0.5)
    cluster.run_until(
        lambda: all(
            cluster.nodes[p].protocol.view.view_id > 0 for p in range(1, 5)
        ),
        step_s=5e-3,
        max_time_s=60,
    )
    assert cluster.sim.now - 0.5 < 0.4


def test_join_during_load_integrates_and_delivers_suffix():
    from repro.core.fsr.process import FSRProcess
    from repro.failure.detector import OracleFailureDetector
    from repro.net.channel import ChannelStack
    from repro.net.dispatch import LayerDemux
    from repro.vsc.membership import GroupMembership

    cluster = _loaded_cluster(n=4, per_sender=15)

    # Hand-build a joiner node on the same network.
    joiner_id = 9
    endpoint = cluster.network.attach(joiner_id)
    stack = ChannelStack(cluster.sim, endpoint, cluster.config.network)
    demux = LayerDemux(stack)
    detector = OracleFailureDetector(cluster.sim, owner=joiner_id)
    cluster.injector.register_detector(detector)
    membership = GroupMembership(
        cluster.sim, demux.port("vsc"), detector, joiner_id, (joiner_id,)
    )
    joiner = FSRProcess(
        sim=cluster.sim,
        port=demux.port("proto"),
        membership=membership,
        config=FSRConfig(t=1),
        tx_gate=lambda: endpoint.tx_idle,
        cpu_submit=endpoint.cpu_submit,
    )
    endpoint.on_tx_idle(joiner.on_tx_ready)
    deliveries = []
    joiner.on_protocol_deliver(deliveries.append)

    def begin_join():
        # Joining mode first: no bootstrap view gets installed, so the
        # joiner's empty history is treated as fresh by recovery.
        membership.start(join_contact=0)
        joiner.start()  # inner membership.start() is an idempotent no-op

    cluster.sim.schedule(0.2, begin_join)
    cluster.run_until(
        lambda: (
            joiner.view is not None
            and joiner_id in joiner.view.members
            and joiner_id in cluster.nodes[0].protocol.ring.members
        ),
        step_s=10e-3,
        max_time_s=60,
    )
    assert cluster.nodes[0].protocol.ring.members[-1] == joiner_id

    # The joiner keeps up with post-join traffic.
    cluster.run_until(lambda: len(deliveries) > 10, step_s=10e-3, max_time_s=120)
    sequences = [d.sequence for d in deliveries]
    assert sequences == sorted(sequences)

    # And the group stays correct throughout.
    cluster.run_until(
        lambda: cluster.all_correct_delivered(60), step_s=50e-3, max_time_s=300
    )
    result = cluster.results()
    check_integrity(result)
    check_total_order(result)


def test_rotation_under_load_is_fast_and_safe():
    cluster = _loaded_cluster(n=4, per_sender=20)
    cluster.sim.schedule(0.3, cluster.nodes[0].membership.request_leader_rotation)
    cluster.run_until(
        lambda: cluster.nodes[1].protocol.ring.leader == 1,
        step_s=5e-3,
        max_time_s=60,
    )
    # Rotation under full load pays the state-exchange cost (unlike a
    # crash, every member is mid-stream); still well under a second.
    assert cluster.sim.now - 0.3 < 1.0
    cluster.run_until(lambda: cluster.all_correct_delivered(80), max_time_s=300)
    result = cluster.results()
    check_integrity(result)
    check_total_order(result)
    check_uniformity(result)
