"""Unit tests for the group membership / flush protocol."""

from typing import Dict, List

import pytest

from repro.failure import CrashInjector, OracleFailureDetector
from repro.net import ChannelStack, Network, NetworkParams
from repro.net.dispatch import LayerDemux
from repro.sim import Simulator
from repro.types import View
from repro.vsc import FlushState, GroupMembership


class RecordingClient:
    """VSCClient capturing every callback for assertions."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks = 0
        self.views: List[View] = []
        self.state_payload = f"state-of-{name}"

    def on_block(self) -> None:
        self.blocks += 1

    def collect_flush_state(self) -> FlushState:
        return FlushState(payload=self.state_payload, size_bytes=10)

    def on_view(self, view, state) -> None:
        self.views.append((view, state))


def build(n=4):
    sim = Simulator()
    params = NetworkParams(cpu_per_message_s=0.0, cpu_per_byte_s=0.0)
    net = Network(sim, params)
    injector = CrashInjector(sim, net)
    members = tuple(range(n))
    memberships: Dict[int, GroupMembership] = {}
    clients: Dict[int, RecordingClient] = {}
    for node in members:
        stack = ChannelStack(sim, net.attach(node), params)
        port = LayerDemux(stack).port("vsc")
        detector = OracleFailureDetector(sim, owner=node, detection_delay_s=1e-3)
        injector.register_detector(detector)
        membership = GroupMembership(sim, port, detector, node, members)
        client = RecordingClient(f"p{node}")
        membership.set_client(client)
        memberships[node] = membership
        clients[node] = client
    injector.on_crash(lambda pid: memberships[pid].stop())
    return sim, injector, memberships, clients


def test_initial_view_installed_locally():
    sim, injector, memberships, clients = build()
    for membership in memberships.values():
        membership.start()
    sim.run()
    for node, client in clients.items():
        assert len(client.views) == 1
        view, state = client.views[0]
        assert view.view_id == 0
        assert view.members == (0, 1, 2, 3)
        assert state is None  # bootstrap view carries no recovery state


def test_crash_installs_new_view_at_survivors():
    sim, injector, memberships, clients = build()
    for membership in memberships.values():
        membership.start()
    sim.run()
    injector.schedule_crash(2, time=0.1)
    sim.run()
    for node in (0, 1, 3):
        views = [v for v, _ in clients[node].views]
        assert views[-1].members == (0, 1, 3)
        assert views[-1].view_id > 0
    # Survivors saw a block before the new view.
    assert all(clients[node].blocks >= 1 for node in (0, 1, 3))


def test_states_collected_from_all_survivors():
    sim, injector, memberships, clients = build()
    for membership in memberships.values():
        membership.start()
    sim.run()
    injector.schedule_crash(3, time=0.1)
    sim.run()
    _view, state = clients[0].views[-1]
    # Without a client-side merge, the install aggregates all states.
    assert set(state.payload) == {0, 1, 2}
    assert state.payload[1].payload == "state-of-p1"


def test_coordinator_crash_mid_flush_recovers():
    """If the flush coordinator dies too, the next member takes over."""
    sim, injector, memberships, clients = build()
    for membership in memberships.values():
        membership.start()
    sim.run()
    injector.schedule_crash(1, time=0.1)
    # Process 0 coordinates the flush for 1's crash; kill it mid-flush.
    injector.schedule_crash(0, time=0.1005)
    sim.run()
    for node in (2, 3):
        views = [v for v, _ in clients[node].views]
        assert views[-1].members == (2, 3)


def test_leader_crash_promotes_first_backup():
    """Ring order is stable: after p0 dies, p1 leads the next view."""
    sim, injector, memberships, clients = build()
    for membership in memberships.values():
        membership.start()
    sim.run()
    injector.schedule_crash(0, time=0.1)
    sim.run()
    view, _ = clients[1].views[-1]
    assert view.leader() == 1
    assert view.members == (1, 2, 3)


def test_voluntary_leave():
    sim, injector, memberships, clients = build()
    for membership in memberships.values():
        membership.start()
    sim.run()
    memberships[2].request_leave()
    sim.run()
    for node in (0, 1, 3):
        view, _ = clients[node].views[-1]
        assert view.members == (0, 1, 3)


def test_join_appends_to_ring():
    sim, injector, memberships, clients = build(n=3)
    for membership in memberships.values():
        membership.start()
    sim.run()

    # Build the joiner on the same network.
    net = injector.network
    params = net.params
    stack = ChannelStack(sim, net.attach(7), params)
    port = LayerDemux(stack).port("vsc")
    detector = OracleFailureDetector(sim, owner=7, detection_delay_s=1e-3)
    injector.register_detector(detector)
    joiner = GroupMembership(sim, port, detector, 7, (7,))
    joiner_client = RecordingClient("p7")
    joiner.set_client(joiner_client)
    joiner.request_join(contact=0)
    sim.run()

    view, _ = clients[0].views[-1]
    assert view.members == (0, 1, 2, 7)
    assert joiner_client.views, "joiner installed the view too"
    assert joiner_client.views[-1][0].members == (0, 1, 2, 7)


def test_two_concurrent_crashes_converge():
    sim, injector, memberships, clients = build(n=5)
    for membership in memberships.values():
        membership.start()
    sim.run()
    injector.schedule_crash(2, time=0.1)
    injector.schedule_crash(4, time=0.1001)
    sim.run()
    final_views = set()
    for node in (0, 1, 3):
        view, _ = clients[node].views[-1]
        final_views.add(view.members)
    assert final_views == {(0, 1, 3)}
