"""Primary-partition quorum guard on the membership layer.

With ``require_quorum=True`` a coordinator refuses to start a flush for
a proposed view that would keep a minority of the current members:
during a symmetric partition only the majority side may install, so
a minority island stalls instead of forking the sequence.
"""

from typing import Dict, List

from repro.failure import CrashInjector, OracleFailureDetector
from repro.net import ChannelStack, Network, NetworkParams
from repro.net.dispatch import LayerDemux
from repro.sim import Simulator
from repro.types import View
from repro.vsc import FlushState, GroupMembership


class RecordingClient:
    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks = 0
        self.views: List[View] = []

    def on_block(self) -> None:
        self.blocks += 1

    def collect_flush_state(self) -> FlushState:
        return FlushState(payload=f"state-of-{self.name}", size_bytes=10)

    def on_view(self, view, state) -> None:
        self.views.append((view, state))


def build(n=5, require_quorum=True):
    sim = Simulator()
    params = NetworkParams(cpu_per_message_s=0.0, cpu_per_byte_s=0.0)
    net = Network(sim, params)
    injector = CrashInjector(sim, net)
    members = tuple(range(n))
    memberships: Dict[int, GroupMembership] = {}
    clients: Dict[int, RecordingClient] = {}
    for node in members:
        stack = ChannelStack(sim, net.attach(node), params)
        port = LayerDemux(stack).port("vsc")
        detector = OracleFailureDetector(sim, owner=node, detection_delay_s=1e-3)
        injector.register_detector(detector)
        membership = GroupMembership(
            sim, port, detector, node, members,
            require_quorum=require_quorum,
        )
        client = RecordingClient(f"p{node}")
        membership.set_client(client)
        memberships[node] = membership
        clients[node] = client
    injector.on_crash(lambda pid: memberships[pid].stop())
    return sim, injector, memberships, clients


def _start(sim, memberships):
    for membership in memberships.values():
        membership.start()
    sim.run()


def test_majority_loss_stalls_instead_of_installing():
    sim, injector, memberships, clients = build(n=5)
    _start(sim, memberships)
    # Kill 3 of 5: the 2 survivors are a minority of the old view.
    for victim in (2, 3, 4):
        injector.schedule_crash(victim, time=0.1)
    sim.run()
    for node in (0, 1):
        views = [v for v, _ in clients[node].views]
        # Only the bootstrap view: the guard refused the minority flush.
        assert [v.members for v in views] == [(0, 1, 2, 3, 4)]


def test_minority_loss_still_installs():
    sim, injector, memberships, clients = build(n=5)
    _start(sim, memberships)
    # Kill 2 of 5: the 3 survivors keep a strict majority.
    injector.schedule_crash(3, time=0.1)
    injector.schedule_crash(4, time=0.1)
    sim.run()
    for node in (0, 1, 2):
        views = [v for v, _ in clients[node].views]
        assert views[-1].members == (0, 1, 2)


def test_guard_off_allows_minority_views():
    sim, injector, memberships, clients = build(n=5, require_quorum=False)
    _start(sim, memberships)
    for victim in (2, 3, 4):
        injector.schedule_crash(victim, time=0.1)
    sim.run()
    for node in (0, 1):
        views = [v for v, _ in clients[node].views]
        assert views[-1].members == (0, 1)


def test_quorum_refusal_is_traced():
    from repro.sim.trace import TraceLog

    sim = Simulator()
    params = NetworkParams(cpu_per_message_s=0.0, cpu_per_byte_s=0.0)
    net = Network(sim, params)
    injector = CrashInjector(sim, net)
    members = (0, 1, 2)
    memberships = {}
    traces = {}
    for node in members:
        stack = ChannelStack(sim, net.attach(node), params)
        port = LayerDemux(stack).port("vsc")
        detector = OracleFailureDetector(sim, owner=node, detection_delay_s=1e-3)
        injector.register_detector(detector)
        trace = TraceLog(enabled=True)
        membership = GroupMembership(
            sim, port, detector, node, members,
            trace=trace, require_quorum=True,
        )
        membership.set_client(RecordingClient(f"p{node}"))
        memberships[node] = membership
        traces[node] = trace
    injector.on_crash(lambda pid: memberships[pid].stop())
    _start(sim, memberships)
    injector.schedule_crash(1, time=0.1)
    injector.schedule_crash(2, time=0.1)
    sim.run()
    assert traces[0].count(kind="quorum_lost") > 0
