"""Property-based tests: channel ARQ and round-model total order."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import ChannelStack, Network, NetworkParams
from repro.rounds.analysis import measure_throughput, round_factory
from repro.sim import Simulator


@given(
    loss=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_channel_arq_delivers_everything_in_order(loss, seed, count):
    params = NetworkParams(
        cpu_per_message_s=0.0,
        cpu_per_byte_s=0.0,
        loss_rate=loss,
        retransmit_timeout_s=2e-3,
    )
    sim = Simulator()
    net = Network(sim, params, loss_rng=random.Random(seed))
    sender = ChannelStack(sim, net.attach(0), params)
    receiver = ChannelStack(sim, net.attach(1), params)
    got = []
    receiver.on_receive(lambda src, msg: got.append(msg))
    expected = [f"m{i}".encode() for i in range(count)]
    for message in expected:
        sender.send(1, message)
    sim.run()
    assert got == expected


@given(
    n=st.integers(min_value=2, max_value=8),
    t=st.integers(min_value=0, max_value=3),
    k=st.integers(min_value=1, max_value=8),
    fairness=st.booleans(),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_round_model_fsr_total_order_any_configuration(n, t, k, fairness):
    t = min(t, n - 1)
    k = min(k, n)
    result = measure_throughput(
        round_factory("fsr", t=t, fairness=fairness),
        n, k, warmup_rounds=50, window_rounds=200,
    )
    logs = list(result.delivered.values())
    shortest = min(len(log) for log in logs)
    reference = logs[0][:shortest]
    for log in logs[1:]:
        assert log[:shortest] == reference


@given(
    n=st.integers(min_value=2, max_value=6),
    k=st.integers(min_value=1, max_value=6),
    name=st.sampled_from(
        ["fixed_sequencer", "moving_sequencer", "privilege",
         "communication_history", "destination_agreement"]
    ),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_round_model_baselines_total_order_any_configuration(n, k, name):
    k = min(k, n)
    result = measure_throughput(
        round_factory(name), n, k, warmup_rounds=100, window_rounds=300,
    )
    logs = list(result.delivered.values())
    shortest = min(len(log) for log in logs)
    reference = logs[0][:shortest]
    for log in logs[1:]:
        assert log[:shortest] == reference
