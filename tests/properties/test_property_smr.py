"""Property-based tests: replicated state machines never diverge.

Random command streams from random replicas — with and without a crash
— must leave every (surviving) replica with an identical snapshot.
This is the end-to-end consequence of uniform total order, checked at
the application level rather than the delivery-log level.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.smr import Command, KVStore, ReplicatedStateMachine
from tests.conftest import small_cluster


KEYS = ["a", "b", "c"]

command_strategy = st.one_of(
    st.tuples(st.just("put"), st.sampled_from(KEYS), st.integers(-5, 5)).map(
        lambda t: Command(t[0], (t[1], t[2]))
    ),
    st.tuples(st.just("incr"), st.sampled_from(KEYS), st.integers(1, 3)).map(
        lambda t: Command(t[0], (t[1], t[2]))
    ),
    st.tuples(st.just("delete"), st.sampled_from(KEYS)).map(
        lambda t: Command(t[0], (t[1],))
    ),
    st.tuples(st.just("cas"), st.sampled_from(KEYS), st.none(),
              st.integers(0, 9)).map(lambda t: Command(t[0], (t[1], t[2], t[3]))),
)


@given(
    commands=st.lists(
        st.tuples(st.integers(0, 3), command_strategy), min_size=1, max_size=15
    ),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_replicas_identical_under_random_commands(commands, seed):
    n = 4
    cluster = small_cluster(n=n, seed=seed)
    replicas = {
        pid: ReplicatedStateMachine(node.protocol, KVStore())
        for pid, node in cluster.nodes.items()
    }
    cluster.start()
    cluster.run(until=5e-3)
    for submitter, command in commands:
        replicas[submitter % n].submit(command)
    cluster.run_until(
        lambda: all(r.applied_count >= len(commands) for r in replicas.values()),
        max_time_s=60,
    )
    snapshots = [replicas[p].snapshot() for p in range(n)]
    assert all(s == snapshots[0] for s in snapshots)


@given(
    commands=st.lists(
        st.tuples(st.integers(0, 3), command_strategy), min_size=4, max_size=12
    ),
    victim=st.integers(0, 3),
    crash_at_ms=st.integers(6, 40),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_surviving_replicas_identical_after_crash(
    commands, victim, crash_at_ms, seed
):
    n = 4
    cluster = small_cluster(n=n, seed=seed)
    replicas = {
        pid: ReplicatedStateMachine(node.protocol, KVStore())
        for pid, node in cluster.nodes.items()
    }
    cluster.start()
    cluster.run(until=5e-3)
    survivors = [p for p in range(n) if p != victim]
    expected_from_correct = 0
    for submitter, command in commands:
        pid = submitter % n
        replicas[pid].submit(command)
        if pid != victim:
            expected_from_correct += 1
    cluster.schedule_crash(victim, time=crash_at_ms / 1000.0)

    applied_from_correct = {p: [0] for p in survivors}
    for p in survivors:
        replicas[p].on_apply(
            lambda i, origin, cmd, res, pp=p: (
                applied_from_correct[pp].__setitem__(
                    0,
                    applied_from_correct[pp][0] + (1 if origin != victim else 0),
                )
            )
        )
    cluster.run_until(
        lambda: all(
            applied_from_correct[p][0] >= expected_from_correct for p in survivors
        ),
        max_time_s=120,
    )
    cluster.run(until=cluster.sim.now + 10e-3)
    snapshots = [replicas[p].snapshot() for p in survivors]
    assert all(s == snapshots[0] for s in snapshots)
